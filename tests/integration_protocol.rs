//! Integration of the distributed protocol against the centralized solver
//! on a live, degrading network (the Figs. 11–13 machinery, plus replica
//! convergence).

use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use wsn_model::{EnergyModel, Prr};
use wsn_proto::{run_link_dynamics, DynamicsConfig, ProtocolState};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

#[test]
fn distributed_tracks_centralized_ira_under_dynamics() {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 11).unwrap();
    let model = EnergyModel::PAPER;
    let mst = wsn_baselines::mst(&net).unwrap();
    let lc = wsn_model::lifetime::network_lifetime(&net, &mst, &model) * 0.9;

    let initial =
        solve_ira(&MrlcInstance::new(net.clone(), model, lc).unwrap(), &IraConfig::default())
            .unwrap();

    let cfg = DynamicsConfig { rounds: 25, cost_step: 2e-2, seed: 3, lc };
    let records = run_link_dynamics(&net, &initial.tree, model, &cfg, |n| {
        MrlcInstance::new(n.clone(), model, lc)
            .ok()
            .and_then(|inst| solve_ira(&inst, &IraConfig::default()).ok())
            .map(|s| s.tree)
    });

    assert_eq!(records.len(), 26);
    for r in &records {
        // The centralized optimum lower-bounds the local repair.
        assert!(r.centralized_cost <= r.distributed_cost + 1e-6, "round {}", r.round);
        // Lemma 3 invariant holds on every recorded tree.
        let expect = (-(r.distributed_cost / 1000.0) * std::f64::consts::LN_2).exp();
        assert!((r.distributed_reliability - expect).abs() < 1e-9);
    }
    // With an aggressive degradation step the protocol must have acted.
    assert!(records.iter().any(|r| r.messages > 0));
}

#[test]
fn replicas_converge_after_many_mixed_updates() {
    let mut net = dfl_network(&DflConfig::default(), &LinkModel::default(), 12).unwrap();
    let model = EnergyModel::PAPER;
    let tree = wsn_baselines::mst(&net).unwrap();
    let lc = wsn_model::lifetime::network_lifetime(&net, &tree, &model) * 0.5;

    let mut a = ProtocolState::new(&tree, lc, model).unwrap();
    let mut b = a.clone();

    // Alternate link-worse and link-better triggers across many rounds.
    let n_edges = net.num_edges();
    for k in 0..30usize {
        let e = wsn_model::EdgeId(((k * 7) % n_edges) as u32);
        let link = *net.link(e);
        if k % 2 == 0 {
            net.set_prr(e, link.prr().degraded(0.7));
            let child = link.u(); // deterministic pick
            a.handle_link_worse(&net, child);
            b.handle_link_worse(&net, child);
        } else {
            net.set_prr(e, Prr::new(0.9995).unwrap());
            a.handle_link_better(&net, link.u(), link.v());
            b.handle_link_better(&net, link.u(), link.v());
        }
        assert_eq!(a.coded(), b.coded(), "replicas diverged at round {k}");
    }
    // The final state is still a valid spanning tree.
    let t = a.tree();
    assert_eq!(t.edges().count(), net.n() - 1);
    for (c, p) in t.edges() {
        assert!(net.find_edge(c, p).is_some());
    }
}

#[test]
fn frame_level_replay_matches_replicated_state() {
    // The ProtocolState model decides; the DistributedNetwork disseminates
    // the same decisions as real frames. Both views must converge to the
    // same tree.
    use wsn_proto::DistributedNetwork;

    let mut net = dfl_network(&DflConfig::default(), &LinkModel::default(), 13).unwrap();
    let model = EnergyModel::PAPER;
    let tree = wsn_baselines::mst(&net).unwrap();
    let lc = wsn_model::lifetime::network_lifetime(&net, &tree, &model) * 0.5;

    let mut state = ProtocolState::new(&tree, lc, model).unwrap();
    let mut wire = DistributedNetwork::new(net.n());
    wire.announce(&tree).unwrap();

    let n_edges = net.num_edges();
    let mut frames = 0usize;
    for k in 0..20usize {
        // Degrade a deterministic tree edge and let the state model decide.
        let e = wsn_model::EdgeId(((k * 11) % n_edges) as u32);
        let link = *net.link(e);
        net.set_prr(e, link.prr().degraded(0.6));
        let current = state.tree();
        let child = if current.contains_edge(link.u(), link.v()) {
            if current.parent(link.u()) == Some(link.v()) {
                link.u()
            } else {
                link.v()
            }
        } else {
            continue;
        };
        let before = state.coded().clone();
        state.handle_link_worse(&net, child);
        // Replay the decision (if any) over the wire.
        if state.coded() != &before {
            let new_parent = state.coded().parent(child).unwrap();
            frames += wire.parent_change(child, new_parent).unwrap();
        }
        // Byte-fed replicas agree with the decision model.
        let a = wire.tree();
        let b = state.tree();
        for i in 0..net.n() {
            let v = wsn_model::NodeId::new(i);
            assert_eq!(a.parent(v), b.parent(v), "divergence at node {v} round {k}");
        }
    }
    assert!(wire.is_consistent());
    assert!(frames > 0, "no updates fired during the replay");
}

//! Cross-crate integration: scenario generation → solvers → verification →
//! simulation, exercising the full public API the way a downstream user
//! would.

use mrlc_core::{solve_ira, verify_tree, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_baselines::{aaml_tree, mst, spt, AamlConfig};
use wsn_model::{lifetime, EnergyModel, NodeId};
use wsn_radio::LinkModel;
use wsn_sim::{estimate_reliability, simulate_lifetime};
use wsn_testbed::{
    dfl_network, random_graph, read_trace, write_trace, DflConfig, EnergyDistribution,
    RandomGraphConfig,
};

#[test]
fn dfl_pipeline_end_to_end() {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 1).unwrap();
    let model = EnergyModel::PAPER;

    // Baselines.
    let mst_tree = mst(&net).unwrap();
    let spt_tree = spt(&net).unwrap();
    let aaml = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
    assert!(aaml.lifetime >= lifetime::network_lifetime(&net, &mst_tree, &model));

    // A lifetime bound with genuine headroom for the L' tightening
    // (children bound 3 at LC leaves bound 1 at L' — a Hamiltonian path
    // exists on the DFL perimeter, so the strict solve is feasible).
    let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
    let inst = MrlcInstance::new(net.clone(), model, lc).unwrap();
    let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
    let v = verify_tree(&inst, &sol.tree);
    assert!(v.is_valid_spanning_tree);
    assert!(v.meets_lc, "lifetime {} < {lc}", v.lifetime);

    // IRA's tree must not cost more than the lifetime-only baseline, and
    // the MST lower bound must hold. (SPT is exercised for structure only —
    // under tight degree caps IRA may legitimately exceed its cost.)
    assert!(sol.cost <= inst.cost(&aaml.tree) + 1e-9);
    assert!(inst.cost(&mst_tree) <= sol.cost + 1e-9);
    assert_eq!(spt_tree.n(), net.n());

    // Monte-Carlo reliability agrees with the analytic Q(T).
    let mut rng = StdRng::seed_from_u64(9);
    let est = estimate_reliability(&net, &sol.tree, 30_000, &mut rng);
    assert!((est - sol.reliability).abs() < 0.01);
}

#[test]
fn trace_roundtrip_preserves_solver_output() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = random_graph(&RandomGraphConfig::default(), &mut rng).unwrap();
    let text = write_trace(&net);
    let back = read_trace(&text).unwrap();

    let model = EnergyModel::PAPER;
    let mst_a = mst(&net).unwrap();
    let mst_b = mst(&back).unwrap();
    assert_eq!(
        wsn_model::tree_cost(&net, &mst_a),
        wsn_model::tree_cost(&back, &mst_b),
        "identical traces must yield identical MSTs"
    );

    let lc = lifetime::network_lifetime(&net, &mst_a, &model) * 1.2;
    let sol_a = solve_ira(&MrlcInstance::new(net, model, lc).unwrap(), &IraConfig::default());
    let sol_b = solve_ira(&MrlcInstance::new(back, model, lc).unwrap(), &IraConfig::default());
    match (sol_a, sol_b) {
        (Ok(a), Ok(b)) => assert!((a.cost - b.cost).abs() < 1e-9),
        (Err(_), Err(_)) => {}
        _ => panic!("solver must behave identically on the roundtripped trace"),
    }
}

#[test]
fn analytic_lifetime_matches_battery_drain() {
    // Shrink the batteries so the drain simulation is quick.
    let cfg = RandomGraphConfig {
        n: 10,
        energy: EnergyDistribution::Uniform(0.5),
        ..RandomGraphConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(6);
    let net = random_graph(&cfg, &mut rng).unwrap();
    let model = EnergyModel::PAPER;
    let tree = mst(&net).unwrap();
    let analytic = lifetime::network_lifetime(&net, &tree, &model);
    let sim = simulate_lifetime(&net, &tree, &model, 1_000_000);
    // Exact up to the boundary round (I/e integral up to FP drift).
    assert!(
        (sim.rounds as f64 - analytic.floor()).abs() <= 1.0,
        "simulated {} vs analytic {}",
        sim.rounds,
        analytic
    );
}

#[test]
fn heterogeneous_instances_protect_the_weakest_node() {
    let cfg = RandomGraphConfig {
        energy: EnergyDistribution::Heterogeneous { lo: 1500.0, hi: 5000.0 },
        ..RandomGraphConfig::default()
    };
    let model = EnergyModel::PAPER;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3 {
        let net = random_graph(&cfg, &mut rng).unwrap();
        let weakest = (0..net.n())
            .map(NodeId::new)
            .min_by(|a, b| net.initial_energy(*a).partial_cmp(&net.initial_energy(*b)).unwrap())
            .unwrap();
        // Demand the weakest node survive LC as if it had one child.
        let lc = lifetime::node_lifetime(net.initial_energy(weakest), &model, 1) * 0.9;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        if let Ok(sol) = solve_ira(&inst, &IraConfig::default()) {
            if sol.meets_lc {
                let l = lifetime::node_lifetime(
                    inst.network().initial_energy(weakest),
                    &model,
                    sol.tree.num_children(weakest),
                );
                assert!(l >= lc * (1.0 - 1e-9), "weak node overloaded");
            } else {
                assert!(sol.stats.relaxed_to_lc || sol.stats.guard_removals > 0);
            }
        }
    }
}

//! Chaos suite for the supervised solve fleet.
//!
//! Acceptance bar: under seeded worker kills, slow-worker stalls, poison
//! pills, duplicate submissions and a request storm, every submission
//! resolves to a typed [`ServiceOutcome`], no worker thread leaks
//! (`workers_spawned == workers_joined` after drain), drain hands back
//! resumable checkpoints, and with injectors off the service returns
//! trees identical to direct `solve_resilient` calls.

use std::time::Duration;

use mrlc_core::{solve_resilient, MrlcInstance, ResilienceConfig, SolveTier};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_lp::SolveBudget;
use wsn_model::{lifetime, EnergyModel};
use wsn_obs::TimeSource;
use wsn_service::{
    instance_hash, ChaosConfig, ServiceConfig, ServiceOutcome, ShedReason, SolveRequest,
    SolveService,
};
use wsn_testbed::{random_graph, RandomGraphConfig};

fn instance(seed: u64, n: usize) -> MrlcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_graph(
        &RandomGraphConfig { n, link_probability: 0.5, ..RandomGraphConfig::default() },
        &mut rng,
    )
    .expect("connected instance");
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
    MrlcInstance::new(net, model, lc).unwrap()
}

/// Waits generously; a `None` here means the fleet hung, which is itself
/// a suite failure.
fn wait(ticket: &wsn_service::Ticket) -> wsn_service::Completion {
    ticket.wait_timeout(Duration::from_secs(120)).expect("fleet hung: ticket never resolved")
}

#[test]
fn injectors_off_matches_direct_solve_resilient() {
    let svc = SolveService::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let seeds = [31u64, 32, 33, 34];
    let tickets: Vec<_> =
        seeds.iter().map(|&s| svc.submit(SolveRequest::new(instance(s, 24)))).collect();
    for (&seed, ticket) in seeds.iter().zip(&tickets) {
        let inst = instance(seed, 24);
        let completion = wait(ticket);
        let out = match completion.outcome {
            ServiceOutcome::Solved(out) => out,
            other => panic!("seed {seed}: expected a solve, got {other:?}"),
        };
        let direct =
            solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited()).unwrap();
        assert_eq!(out.tier, direct.tier, "seed {seed}");
        let a: Vec<_> = out.tree.edges().collect();
        let b: Vec<_> = direct.tree.edges().collect();
        assert_eq!(a, b, "seed {seed}: service tree differs from direct solve");
    }
    let report = svc.drain();
    assert!(report.no_leaked_workers(), "{report:?}");
    assert!(report.parked.is_empty());
}

#[test]
fn duplicate_submissions_are_served_from_the_cache() {
    let obs = wsn_obs::Obs::detached();
    let _g = wsn_obs::install(obs.clone());
    let svc = SolveService::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let inst = instance(77, 24);
    let first = wait(&svc.submit(SolveRequest::new(inst.clone())));
    let first_tree: Vec<_> = match &first.outcome {
        ServiceOutcome::Solved(out) => out.tree.edges().collect(),
        other => panic!("expected a solve, got {other:?}"),
    };
    for _ in 0..10 {
        let dup = wait(&svc.submit(SolveRequest::new(inst.clone())));
        match dup.outcome {
            ServiceOutcome::Solved(out) => {
                let t: Vec<_> = out.tree.edges().collect();
                assert_eq!(t, first_tree, "cache must return the identical tree");
            }
            other => panic!("duplicate got {other:?}"),
        }
    }
    let reg = obs.registry();
    assert_eq!(reg.counter("svc.cache_hits").get(), 10);
    assert_eq!(reg.counter("svc.accepted").get(), 11);
    assert_eq!(reg.counter("svc.completed").get(), 1, "one real solve serves all duplicates");
    let report = svc.drain();
    assert!(report.no_leaked_workers());
}

#[test]
fn seeded_worker_kills_are_recovered_by_the_supervisor() {
    let obs = wsn_obs::Obs::detached();
    let _g = wsn_obs::install(obs.clone());
    let svc = SolveService::start(ServiceConfig {
        workers: 2,
        cache: false,
        chaos: ChaosConfig { kill_every: Some(3), ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..9).map(|i| svc.submit(SolveRequest::new(instance(100 + i, 24)))).collect();
    for ticket in &tickets {
        let completion = wait(ticket);
        match completion.outcome {
            ServiceOutcome::Solved(out) => {
                assert!(out.gap.is_finite() && out.gap >= 0.0);
            }
            // A job unlucky enough to be held by several killed workers
            // trips the breaker — typed, and exactly the design.
            ServiceOutcome::Quarantined { ref why } => {
                assert!(why.contains("worker crashed"), "{why}");
            }
            ref other => panic!("expected solved/quarantined, got {other:?}"),
        }
    }
    let restarts = obs.registry().counter("svc.worker_restarts").get();
    assert!(restarts >= 2, "kill_every=3 over 9+ dequeues must restart workers, saw {restarts}");
    let report = svc.drain();
    assert!(report.no_leaked_workers(), "{report:?}");
}

#[test]
fn poison_pill_quarantines_and_is_never_retried_hot() {
    let obs = wsn_obs::Obs::detached();
    let _g = wsn_obs::install(obs.clone());
    let inst = instance(55, 24);
    let hash = instance_hash(&inst);
    let svc = SolveService::start(ServiceConfig {
        workers: 2,
        quarantine_after: 3,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        chaos: ChaosConfig { panic_hashes: vec![hash], ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });
    let poisoned = wait(&svc.submit(SolveRequest::new(inst.clone())));
    match poisoned.outcome {
        ServiceOutcome::Quarantined { ref why } => assert!(why.contains("poisoned"), "{why}"),
        ref other => panic!("expected quarantine, got {other:?}"),
    }
    let reg = obs.registry();
    assert_eq!(reg.counter("svc.retries").get(), 2, "two retries before the third strike");
    assert_eq!(reg.counter("svc.quarantined").get(), 1);

    // Resubmission must resolve instantly from the breaker, not re-solve.
    let hot = wait(&svc.submit(SolveRequest::new(inst.clone())));
    assert!(matches!(hot.outcome, ServiceOutcome::Quarantined { .. }));
    assert_eq!(reg.counter("svc.quarantine_hits").get(), 1);
    assert_eq!(reg.counter("svc.panics").get(), 3, "no further solve attempts after the breaker");

    // A healthy tenant is unaffected by the poisoned one.
    let healthy = wait(&svc.submit(SolveRequest::new(instance(56, 24))));
    assert!(healthy.outcome.is_solved(), "{:?}", healthy.outcome);
    let report = svc.drain();
    assert!(report.no_leaked_workers());
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].0, hash);
    assert_eq!(report.quarantined[0].1.failures, 3);
}

#[test]
fn manual_clock_schedules_retries_without_real_sleeping() {
    let mc = wsn_obs::ManualClock::new();
    let inst = instance(60, 24);
    let hash = instance_hash(&inst);
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        quarantine_after: 2,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(200),
        clock: TimeSource::manual(mc.clone()),
        chaos: ChaosConfig { panic_hashes: vec![hash], ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });
    let ticket = svc.submit(SolveRequest::new(inst));
    // Attempt 1 panics immediately; the retry is scheduled at
    // manual-now + backoff, and manual time does not pass on its own —
    // the request must still be pending.
    assert!(
        ticket.wait_timeout(Duration::from_millis(200)).is_none(),
        "retry ran before its backoff elapsed on the manual clock"
    );
    // One virtual second covers the jittered backoff; the retry then
    // panics again and the breaker opens. No real time was slept.
    mc.advance(Duration::from_secs(1));
    let completion = wait(&ticket);
    assert!(matches!(completion.outcome, ServiceOutcome::Quarantined { .. }));
    assert_eq!(completion.attempts, 2);
    let report = svc.drain();
    assert!(report.no_leaked_workers());
}

#[test]
fn backpressure_sheds_with_typed_reasons() {
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        initial_ewma_ms: 0.0,
        chaos: ChaosConfig {
            stall: Some((1, Duration::from_millis(300))),
            ..ChaosConfig::default()
        },
        ..ServiceConfig::default()
    });
    // First request occupies the (stalled) worker...
    let t1 = svc.submit(SolveRequest::new(instance(70, 24)));
    std::thread::sleep(Duration::from_millis(50));
    // ...second fills the single queue slot, third finds it full.
    let t2 = svc.submit(SolveRequest {
        instance: instance(71, 24),
        budget: SolveBudget::unlimited(),
        deadline: Some(Duration::from_millis(10)),
    });
    let t3 = svc.submit(SolveRequest::new(instance(72, 24)));
    let c3 = wait(&t3);
    match c3.outcome {
        ServiceOutcome::Shed(ShedReason::QueueFull) => {}
        other => panic!("expected QueueFull shed, got {other:?}"),
    }
    // #2 sat behind a 300ms stall with a 10ms deadline: shed at dequeue.
    let c2 = wait(&t2);
    match c2.outcome {
        ServiceOutcome::Shed(ShedReason::ExpiredInQueue) => {}
        other => panic!("expected ExpiredInQueue shed, got {other:?}"),
    }
    assert!(wait(&t1).outcome.is_solved());
    let report = svc.drain();
    assert!(report.no_leaked_workers());
}

#[test]
fn projected_wait_shedding_consults_the_deadline() {
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        initial_ewma_ms: 10_000.0,
        chaos: ChaosConfig {
            stall: Some((1, Duration::from_millis(200))),
            ..ChaosConfig::default()
        },
        ..ServiceConfig::default()
    });
    // Depth 0: even a tight deadline is admitted.
    let t1 = svc.submit(SolveRequest {
        instance: instance(80, 24),
        budget: SolveBudget::unlimited(),
        deadline: Some(Duration::from_millis(1)),
    });
    // Let the worker pull #1 into its stall: it now counts as in-flight.
    std::thread::sleep(Duration::from_millis(50));
    // Depth ≥ 1 with a 10s EWMA prior: a 50ms deadline is hopeless and
    // must be rejected at admission, not queued to die.
    let t2 = svc.submit(SolveRequest {
        instance: instance(81, 24),
        budget: SolveBudget::unlimited(),
        deadline: Some(Duration::from_millis(50)),
    });
    let c2 = wait(&t2);
    match c2.outcome {
        ServiceOutcome::Shed(ShedReason::ProjectedWait { projected_ms, deadline_ms }) => {
            assert!(projected_ms > deadline_ms, "{projected_ms} vs {deadline_ms}");
        }
        other => panic!("expected ProjectedWait shed, got {other:?}"),
    }
    // An undeadlined request is still welcome at any depth.
    let t3 = svc.submit(SolveRequest::new(instance(82, 24)));
    let _ = wait(&t1);
    assert!(wait(&t3).outcome.is_solved());
    let report = svc.drain();
    assert!(report.no_leaked_workers());
}

#[test]
fn drain_parks_work_and_a_restarted_service_resumes_it() {
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        chaos: ChaosConfig {
            stall: Some((1, Duration::from_millis(200))),
            ..ChaosConfig::default()
        },
        ..ServiceConfig::default()
    });
    let seeds = [90u64, 91];
    let tickets: Vec<_> =
        seeds.iter().map(|&s| svc.submit(SolveRequest::new(instance(s, 24)))).collect();
    // Drain while #1 stalls pre-solve and #2 waits in the queue.
    std::thread::sleep(Duration::from_millis(50));
    let report = svc.drain();
    assert!(report.no_leaked_workers(), "{report:?}");
    assert_eq!(report.parked.len(), 2, "both requests must be parked, not dropped");
    for ticket in &tickets {
        assert!(matches!(wait(ticket).outcome, ServiceOutcome::Parked));
    }

    // A fresh service picks the parked work back up; checkpointed parks
    // continue via resume_ira and land on the resumed tier.
    let svc2 = SolveService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    for parked in report.parked {
        let seed = seeds
            .iter()
            .copied()
            .find(|&s| instance_hash(&instance(s, 24)) == parked.hash)
            .expect("parked hash matches a submitted seed");
        let had_checkpoint = parked.checkpoint.is_some();
        let completion = wait(&svc2.submit_parked(parked));
        let out = match completion.outcome {
            ServiceOutcome::Solved(out) => out,
            other => panic!("parked resubmission got {other:?}"),
        };
        if had_checkpoint {
            assert_eq!(out.tier, SolveTier::Resumed, "checkpointed park must resume, not re-solve");
        }
        let direct = solve_resilient(
            &instance(seed, 24),
            &ResilienceConfig::default(),
            SolveBudget::unlimited(),
        )
        .unwrap();
        let a: Vec<_> = out.tree.edges().collect();
        let b: Vec<_> = direct.tree.edges().collect();
        assert_eq!(a, b, "seed {seed}: resumed tree differs from the uninterrupted solve");
    }
    let report2 = svc2.drain();
    assert!(report2.no_leaked_workers());
}

#[test]
fn request_storm_resolves_every_submission_with_a_typed_outcome() {
    let obs = wsn_obs::Obs::detached();
    let _g = wsn_obs::install(obs.clone());
    let svc = SolveService::start(ServiceConfig {
        workers: 4,
        queue_capacity: 16,
        chaos: ChaosConfig { kill_every: Some(7), ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });
    let instances: Vec<MrlcInstance> = (0..6).map(|i| instance(200 + i, 24)).collect();
    let per_client = 15usize;
    let clients = 4usize;
    let all = std::sync::Mutex::new(Vec::new());
    crossbeam::scope(|s| {
        for c in 0..clients {
            let svc = &svc;
            let instances = &instances;
            let all = &all;
            s.spawn(move |_| {
                let mut local = Vec::new();
                for i in 0..per_client {
                    let inst = instances[(c * per_client + i) % instances.len()].clone();
                    let deadline = if i % 5 == 4 { Some(Duration::from_millis(1)) } else { None };
                    let ticket = svc.submit(SolveRequest {
                        instance: inst,
                        budget: SolveBudget::unlimited(),
                        deadline,
                    });
                    local.push(ticket);
                }
                all.lock().unwrap().extend(local);
            });
        }
    })
    .expect("client threads never panic");
    let tickets = all.into_inner().unwrap();
    assert_eq!(tickets.len(), clients * per_client);
    let mut kinds: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for ticket in &tickets {
        let completion = wait(ticket);
        *kinds.entry(completion.outcome.kind()).or_default() += 1;
    }
    let typed: usize = kinds.values().sum();
    assert_eq!(typed, clients * per_client, "every request must resolve typed: {kinds:?}");
    let report = svc.drain();
    assert!(report.no_leaked_workers(), "{report:?}");
}

#[test]
fn worker_traces_are_collected_and_reportable() {
    let svc = SolveService::start(ServiceConfig {
        workers: 2,
        trace_workers: true,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..4).map(|i| svc.submit(SolveRequest::new(instance(300 + i, 24)))).collect();
    for t in &tickets {
        assert!(wait(t).outcome.is_solved());
    }
    let report = svc.drain();
    assert!(report.no_leaked_workers());
    assert_eq!(report.worker_traces.len(), 2);
    for (wid, trace) in &report.worker_traces {
        let lenient = wsn_obs::validate_trace_lenient(trace)
            .unwrap_or_else(|e| panic!("worker {wid} trace invalid: {e}"));
        assert_eq!(lenient.skipped, 0, "worker {wid}");
    }
}

/// Acceptance: a seeded kill schedule cuts at least one worker-crash
/// black box, and two identically-seeded runs dump byte-identical boxes
/// (the worker ring runs on a per-incarnation virtual clock with seeded
/// ids, so the dump is part of the deterministic surface).
#[test]
fn seeded_worker_kills_cut_byte_identical_black_boxes() {
    // One worker and strictly serial submit-then-wait clients make the
    // dequeue order — and so the kill schedule and ring contents — a pure
    // function of the seeds.
    let run_once = || {
        let svc = SolveService::start(ServiceConfig {
            workers: 1,
            // A ring deep enough to retain whole jobs: at the 128-slot
            // default a single solve wraps the ring, so only the innermost
            // LP spans of the newest job would survive to the dump.
            flight_recorder: 4096,
            chaos: ChaosConfig { kill_every: Some(4), ..ChaosConfig::default() },
            ..ServiceConfig::default()
        });
        for s in 0..6u64 {
            let done = wait(&svc.submit(SolveRequest::new(instance(500 + s, 16))));
            assert!(matches!(done.outcome, ServiceOutcome::Solved(_)), "{done:?}");
        }
        let report = svc.drain();
        assert!(report.no_leaked_workers(), "{report:?}");
        report.black_boxes
    };
    let a = run_once();
    let b = run_once();
    assert!(!a.is_empty(), "the kill schedule must cut at least one black box");
    assert_eq!(a.len(), b.len(), "same schedule, same incident count");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.reason, "worker-crash");
        assert_eq!(x.worker, Some(0));
        assert!(x.jsonl.starts_with("{\"type\":\"blackbox_header\""), "{}", x.jsonl);
        assert!(x.jsonl.contains("svc.job"), "the ring must hold the jobs before the kill");
        assert_eq!(x.jsonl, y.jsonl, "identically-seeded runs must dump byte-identical boxes");
    }
}

/// A poison pill that exhausts its retries leaves a quarantine black box
/// holding the attempts that opened the breaker.
#[test]
fn quarantined_poison_pills_leave_a_black_box() {
    let inst = instance(91, 16);
    let hash = instance_hash(&inst);
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        quarantine_after: 2,
        chaos: ChaosConfig { panic_hashes: vec![hash], ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });
    let done = wait(&svc.submit(SolveRequest::new(inst)));
    assert!(matches!(done.outcome, ServiceOutcome::Quarantined { .. }), "{done:?}");
    let report = svc.drain();
    let reasons: Vec<&str> = report.black_boxes.iter().map(|b| b.reason.as_str()).collect();
    assert!(reasons.contains(&"quarantine"), "{reasons:?}");
}

//! Chaos suite for the deadline-bounded resilient solve pipeline.
//!
//! Acceptance bar: for every injected fault class and for budget expiry at
//! n ∈ {80, 160}, `solve_resilient` returns an `LC`-feasible tree with a
//! finite certified gap — zero panics, zero hangs. With injectors off and
//! no budget, the decoded tree and the deterministic solver counters are
//! identical to the plain engine's.

use std::time::{Duration, Instant};

use mrlc_core::{
    resume_ira, solve_ira, solve_ira_budgeted, solve_resilient, IraConfig, IraError, MrlcInstance,
    ResilienceConfig, SolveTier,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_lp::{FaultKind, SolveBudget, FAULT_KINDS};
use wsn_model::{lifetime, EnergyModel};
use wsn_testbed::{random_graph, RandomGraphConfig};

fn instance(seed: u64, n: usize, children: usize) -> MrlcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_graph(
        &RandomGraphConfig { n, link_probability: 0.5, ..RandomGraphConfig::default() },
        &mut rng,
    )
    .expect("connected instance");
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, children) * 0.999;
    MrlcInstance::new(net, model, lc).unwrap()
}

/// Every fault class, several seeds and arming points: the ladder must
/// land every one on a feasible tree with a finite gap.
#[test]
fn every_fault_class_lands_on_a_valid_degraded_outcome() {
    for kind in FAULT_KINDS {
        for seed in [11u64, 12, 13] {
            for after in [1u64, 3, 10] {
                let inst = instance(seed, 24, 3);
                let config =
                    ResilienceConfig { faults: vec![(kind, after)], ..ResilienceConfig::default() };
                let out =
                    solve_resilient(&inst, &config, SolveBudget::unlimited()).unwrap_or_else(|e| {
                        panic!("fault {kind} (after {after}, seed {seed}) errored: {e}")
                    });
                assert!(
                    inst.meets_lifetime(&out.tree),
                    "fault {kind} (after {after}, seed {seed}, tier {:?}) missed LC",
                    out.tier
                );
                assert!(
                    out.gap.is_finite() && out.gap >= 0.0,
                    "fault {kind}: gap {} not a finite certificate",
                    out.gap
                );
            }
        }
    }
}

/// Specific faults map to specific ladder rungs: an injected oracle
/// timeout cancels cooperatively (checkpoint → resumed), a poisoned cut
/// is unrecoverable numerics (→ approximate), and the two repairable
/// corruptions stay on the exact tier via sentinel-driven recovery.
#[test]
fn fault_classes_map_to_expected_tiers() {
    let run = |kind: FaultKind| {
        let inst = instance(21, 24, 3);
        let config = ResilienceConfig { faults: vec![(kind, 2)], ..ResilienceConfig::default() };
        solve_resilient(&inst, &config, SolveBudget::unlimited()).expect("feasible instance")
    };
    assert_eq!(run(FaultKind::CorruptPivot).tier, SolveTier::Exact);
    assert_eq!(run(FaultKind::PerturbRhs).tier, SolveTier::Exact);
    assert_eq!(run(FaultKind::OracleTimeout).tier, SolveTier::Resumed);
    assert_eq!(run(FaultKind::PoisonCut).tier, SolveTier::Approximate);
}

/// Budget expiry at the acceptance sizes: an (effectively) immediate
/// deadline still yields a feasible tree with a finite gap, promptly —
/// the degraded rung does bounded post-deadline work, never a hang.
#[test]
fn budget_expiry_at_acceptance_sizes_degrades_within_the_deadline() {
    for n in [80usize, 160] {
        let inst = instance(31, n, 3);
        let t0 = Instant::now();
        let out = solve_resilient(
            &inst,
            &ResilienceConfig::default(),
            SolveBudget::wall(Duration::from_millis(1)),
        )
        .unwrap_or_else(|e| panic!("n={n}: {e}"));
        let elapsed = t0.elapsed();
        assert!(inst.meets_lifetime(&out.tree), "n={n} tier {:?} missed LC", out.tier);
        assert!(out.gap.is_finite() && out.gap >= 0.0, "n={n} gap {}", out.gap);
        assert!(
            elapsed < Duration::from_secs(20),
            "n={n}: degraded answer took {elapsed:?} — that is a hang, not degradation"
        );
    }
}

/// Pivot and round caps are budgets too: starved values must degrade the
/// same way the wall clock does.
#[test]
fn starved_caps_degrade_gracefully() {
    let budgets = [
        SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() },
        SolveBudget { max_pivots: Some(5), ..SolveBudget::unlimited() },
    ];
    for (i, budget) in budgets.into_iter().enumerate() {
        let inst = instance(41, 32, 3);
        let out = solve_resilient(&inst, &ResilienceConfig::default(), budget)
            .unwrap_or_else(|e| panic!("budget #{i}: {e}"));
        assert!(inst.meets_lifetime(&out.tree), "budget #{i} tier {:?}", out.tier);
        assert!(out.gap.is_finite());
    }
}

/// A deterministic interruption (round cap) checkpoints; resuming with no
/// limits must land on exactly the tree the uninterrupted solve finds.
#[test]
fn checkpoint_resume_matches_the_uninterrupted_solve() {
    let inst = instance(51, 24, 3);
    let plain = solve_ira(&inst, &IraConfig::default()).expect("feasible");

    let ctx = SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() }.start();
    let cp = match solve_ira_budgeted(&inst, &IraConfig::default(), &ctx) {
        Err(IraError::Interrupted(cp)) => cp,
        other => panic!("round cap of 1 must interrupt, got {other:?}"),
    };
    let resumed = resume_ira(&inst, &IraConfig::default(), *cp, None).expect("resume closes");

    let a: Vec<_> = plain.tree.edges().collect();
    let b: Vec<_> = resumed.tree.edges().collect();
    assert_eq!(a, b, "resumed tree differs from the uninterrupted one");
    assert!((plain.cost - resumed.cost).abs() < 1e-12);
}

/// Interrupting over and over — one cut round per leg, resuming from each
/// checkpoint in turn — must still land on exactly the uninterrupted
/// solve's tree, even though the interruptions straddle IRA's shrink
/// boundaries (iterations that drop lifetime constraints from `W` and
/// edges from the LP support).
#[test]
fn repeated_interrupts_across_shrink_boundaries_match_the_uninterrupted_solve() {
    let inst = instance(51, 24, 3);
    let plain = solve_ira(&inst, &IraConfig::default()).expect("feasible");
    assert!(
        plain.stats.iterations >= 2,
        "need a multi-iteration instance to cross a shrink boundary (got {})",
        plain.stats.iterations
    );

    let one_round = || SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() }.start();
    let mut checkpoints = Vec::new();
    let mut outcome = solve_ira_budgeted(&inst, &IraConfig::default(), &one_round());
    let resumed = loop {
        match outcome {
            Ok(sol) => break sol,
            Err(IraError::Interrupted(cp)) => {
                checkpoints.push((cp.iterations(), cp.constrained_nodes(), cp.active_edges()));
                assert!(checkpoints.len() <= 10_000, "interrupt/resume loop failed to converge");
                outcome = resume_ira(&inst, &IraConfig::default(), *cp, Some(&one_round()));
            }
            Err(e) => panic!("unexpected error mid-resume: {e}"),
        }
    };

    assert!(checkpoints.len() >= 2, "round cap 1 must interrupt repeatedly");
    let first = checkpoints.first().unwrap();
    let last = checkpoints.last().unwrap();
    assert!(
        last.0 > first.0,
        "interrupts never crossed an IRA iteration boundary: {checkpoints:?}"
    );
    assert!(
        last.1 < first.1 || last.2 < first.2,
        "no shrink (constraint removal / edge deactivation) was straddled: {checkpoints:?}"
    );

    let a: Vec<_> = plain.tree.edges().collect();
    let b: Vec<_> = resumed.tree.edges().collect();
    assert_eq!(a, b, "repeatedly resumed tree differs from the uninterrupted one");
    assert_eq!(
        plain.cost.to_bits(),
        resumed.cost.to_bits(),
        "costs differ at the bit level after repeated resume"
    );
    assert_eq!(plain.reliability.to_bits(), resumed.reliability.to_bits());
}

/// With injectors off and no budget, the resilient pipeline is the plain
/// engine: identical decoded tree and identical deterministic `ira.*` /
/// `sep.*` counters.
#[test]
fn injectors_off_is_byte_identical_to_the_plain_engine() {
    let counters_for = |resilient: bool| {
        let obs = wsn_obs::Obs::detached();
        let guard = wsn_obs::install(obs.clone());
        let inst = instance(61, 24, 3);
        let (tree, cost) = if resilient {
            let out =
                solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited())
                    .expect("feasible");
            assert_eq!(out.tier, SolveTier::Exact);
            (out.tree, out.cost)
        } else {
            let sol = solve_ira(&inst, &IraConfig::default()).expect("feasible");
            (sol.tree, sol.cost)
        };
        drop(guard);
        let counters: Vec<(String, u64)> = obs
            .registry()
            .counter_snapshot()
            .into_iter()
            .filter(|(name, _)| {
                // Wall-clock timing counters (`*_ns`) are real time, not
                // solver state — everything else must match exactly.
                (name.starts_with("ira.") || name.starts_with("sep.") || name.starts_with("lp."))
                    && !name.ends_with("_ns")
            })
            .collect();
        (tree.edges().collect::<Vec<_>>(), cost, counters)
    };
    let (tree_a, cost_a, counters_a) = counters_for(false);
    let (tree_b, cost_b, counters_b) = counters_for(true);
    assert_eq!(tree_a, tree_b, "decoded trees differ");
    assert_eq!(cost_a.to_bits(), cost_b.to_bits(), "costs differ at the bit level");
    assert_eq!(counters_a, counters_b, "deterministic solver counters differ");
}

/// The one-shot injector fires exactly once: a second solve on the same
/// context sees a clean LP layer.
#[test]
fn faults_are_one_shot() {
    // Same instance and arming point as `fault_classes_map_to_expected_tiers`,
    // where PoisonCut provably derails the solve (at `after: 1` the very
    // first poll can land before any cut row exists — a harmless no-op).
    let inst = instance(21, 24, 3);
    let config =
        ResilienceConfig { faults: vec![(FaultKind::PoisonCut, 2)], ..ResilienceConfig::default() };
    let first = solve_resilient(&inst, &config, SolveBudget::unlimited()).expect("feasible");
    assert_eq!(first.tier, SolveTier::Approximate);
    // Same config object, fresh budget: the fault re-arms (it is part of
    // the config), so this degrades again — but a config with no faults
    // on the same instance is clean.
    let clean = solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited())
        .expect("feasible");
    assert_eq!(clean.tier, SolveTier::Exact);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Random instances (including degenerate sizes and near-infeasible
        /// bounds), random budget starvation, random fault injection: the
        /// pipeline never panics and never hangs past a 2 s budget. NaN
        /// perturbation of the solver state is exactly what PoisonCut and
        /// CorruptPivot inject — the builders reject NaN at the boundary,
        /// so in-flight corruption is the only NaN path there is.
        #[test]
        fn never_panics_under_a_two_second_budget(
            seed in 0u64..1000,
            n in 2usize..28,
            children in 1usize..4,
            fault_idx in 0usize..5,
            after in 1u64..6,
            rounds_raw in 0u64..4,
            pivots_raw in 0u64..50,
        ) {
            // 0 means "uncapped" so clean budgets stay in the mix.
            let rounds = (rounds_raw > 0).then_some(rounds_raw);
            let pivots = (pivots_raw > 0).then_some(pivots_raw);
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_graph(
                &RandomGraphConfig { n, link_probability: 0.6, ..RandomGraphConfig::default() },
                &mut rng,
            ).expect("connected instance");
            let model = EnergyModel::PAPER;
            let lc = lifetime::node_lifetime(3000.0, &model, children) * 0.999;
            let inst = MrlcInstance::new(net, model, lc).unwrap();
            // fault_idx 4 means "no fault" so clean runs stay in the mix.
            let faults = FAULT_KINDS.get(fault_idx).map(|&k| (k, after)).into_iter().collect();
            let config = ResilienceConfig { faults, ..ResilienceConfig::default() };
            let budget = SolveBudget {
                wall: Some(Duration::from_secs(2)),
                max_rounds: rounds,
                max_pivots: pivots,
            };
            let t0 = Instant::now();
            match solve_resilient(&inst, &config, budget) {
                Ok(out) => {
                    prop_assert!(inst.meets_lifetime(&out.tree),
                        "tier {:?} returned an LC-infeasible tree", out.tier);
                    prop_assert!(out.gap.is_finite() && out.gap >= 0.0);
                }
                // A starved budget on a barely-feasible instance may
                // genuinely fail to find a capped tree — typed, not a panic.
                Err(e) => { let _ = e.to_string(); }
            }
            prop_assert!(t0.elapsed() < Duration::from_secs(30),
                "solve ran far past its 2s budget");
        }
    }
}

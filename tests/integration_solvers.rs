//! Cross-solver integration: IRA, Lagrangian, exact B&B, the lifetime
//! bounds, and the Pareto sweep must tell one consistent story on shared
//! instances.

use mrlc_core::{
    dominant_points, lagrangian_dbmst, lifetime_bounds, pareto_frontier, solve_exact, solve_ira,
    ExactConfig, ExactOutcome, IraConfig, LagrangianConfig, MrlcInstance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{lifetime, EnergyModel, PaperCost};
use wsn_radio::LinkModel;
use wsn_testbed::{geometric_deployment, random_graph, GeometricConfig, RandomGraphConfig};

fn instance(seed: u64, n: usize, children: usize) -> MrlcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_graph(
        &RandomGraphConfig { n, link_probability: 0.5, ..RandomGraphConfig::default() },
        &mut rng,
    )
    .expect("connected instance");
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, children) * 0.999;
    MrlcInstance::new(net, model, lc).unwrap()
}

#[test]
fn every_solver_respects_the_same_ordering() {
    for seed in [1u64, 2, 3] {
        let inst = instance(seed, 12, 3);
        let ira = solve_ira(&inst, &IraConfig::default()).expect("feasible");
        let lag = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        let ExactOutcome::Optimal { cost: opt, tree: opt_tree, .. } =
            solve_exact(&inst, &ExactConfig::default())
        else {
            panic!("seed {seed}: exact must close")
        };
        // Ordering: dual bound ≤ OPT ≤ {IRA, Lagrangian incumbent}.
        assert!(lag.lower_bound <= opt + 1e-9, "seed {seed}");
        assert!(ira.cost >= opt - 1e-9, "seed {seed}");
        if lag.best_tree.is_some() {
            assert!(lag.best_cost >= opt - 1e-9, "seed {seed}");
        }
        // The exact tree verifies against the instance.
        assert!(inst.meets_lifetime(&opt_tree));
        // And the MST is a floor below everything.
        let mst = wsn_baselines::mst(inst.network()).unwrap();
        assert!(inst.cost(&mst) <= opt + 1e-9, "seed {seed}");
    }
}

#[test]
fn bounds_bracket_the_pareto_frontier() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = random_graph(&RandomGraphConfig::default(), &mut rng).unwrap();
    let model = EnergyModel::PAPER;
    let bounds = lifetime_bounds(&net, &model).expect("LP feasibility probe");
    assert!(bounds.heuristic_lower <= bounds.fractional_upper * (1.0 + 1e-9));

    let pts = pareto_frontier(&net, model, 12).expect("sweep");
    for p in &pts {
        // No achieved lifetime can exceed the fractional ceiling.
        assert!(
            p.lifetime <= bounds.fractional_upper * (1.0 + 1e-9),
            "point at LC {:.3e} broke the ceiling",
            p.lc
        );
        // Lemma 3 consistency on every reported pair.
        assert!((PaperCost(p.cost).reliability() - p.reliability).abs() < 1e-9);
    }
    let kept = dominant_points(&pts);
    assert!(!kept.is_empty());
}

#[test]
fn geometric_deployments_flow_through_the_whole_stack() {
    let dep = geometric_deployment(
        &GeometricConfig { n: 12, side_m: 7.0, ..GeometricConfig::default() },
        &LinkModel::default(),
        31,
    )
    .expect("connected deployment");
    let model = EnergyModel::PAPER;
    let inst = MrlcInstance::new(
        dep.network.clone(),
        model,
        lifetime::node_lifetime(3000.0, &model, 3) * 0.999,
    )
    .unwrap();
    let ira = solve_ira(&inst, &IraConfig::default()).expect("feasible");
    assert!(ira.meets_lc);
    match solve_exact(&inst, &ExactConfig::default()) {
        ExactOutcome::Optimal { cost, .. } => {
            assert!(ira.cost >= cost - 1e-9);
            assert!(
                ira.cost <= cost * 1.5 + 1e-9,
                "IRA {} far above OPT {} on a geometric instance",
                ira.cost,
                cost
            );
        }
        other => panic!("exact must close at n = 12: {other:?}"),
    }
}

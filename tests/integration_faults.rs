//! Integration of the fault-tolerant control plane on a real deployment:
//! announce and parent-change floods over a lossy channel converge every
//! replica byte-identically via ack/retry; a crashed router's orphans are
//! re-homed into a valid tree that still meets the `LC` lifetime bound;
//! and divergence is detected and repaired by anti-entropy, never an
//! assert.

use wsn_model::{lifetime, EnergyModel, NodeId};
use wsn_proto::{DistributedNetwork, FaultPlan, LossyChannel, RetryPolicy};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

fn setup() -> (wsn_model::Network, wsn_model::AggregationTree, f64, EnergyModel) {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).unwrap();
    let model = EnergyModel::PAPER;
    let aaml = wsn_experiments::workloads::aaml_paper_protocol(&net, &model).unwrap();
    let lc = aaml.lifetime * 0.7;
    let sol = wsn_experiments::workloads::ira_at(&net, model, lc).unwrap();
    (net, sol.tree, lc, model)
}

#[test]
fn replicas_converge_byte_identically_up_to_30_percent_loss() {
    let (net, tree, _lc, _model) = setup();
    let policy = RetryPolicy::default();
    let mut frames_at = Vec::new();
    for (i, loss) in [0.0, 0.10, 0.20, 0.30].into_iter().enumerate() {
        let mut wire = DistributedNetwork::new(net.n());
        let mut ch = LossyChannel::new(
            FaultPlan::uniform(loss)
                .with_seed(40 + i as u64)
                .with_duplication(0.03)
                .with_reordering(0.03),
        );
        let d = wire.announce_lossy(&tree, &mut ch, &policy).unwrap();
        let mut frames = d.total_frames();
        // A couple of legal re-homings read off the sink's view.
        let view = wire.tree();
        let mut moved = 0;
        for v in (1..net.n()).map(NodeId::new) {
            if moved == 2 {
                break;
            }
            if let Some(&(_, w)) = net
                .neighbors(v)
                .iter()
                .find(|&&(_, w)| Some(w) != view.parent(v) && !view.in_subtree(w, v))
            {
                let d = wire.parent_change_lossy(v, w, &mut ch, &policy).unwrap();
                frames += d.total_frames();
                moved += 1;
            }
        }
        assert_eq!(moved, 2, "deployment offers at least two legal moves");
        let r = wire.resync(&mut ch, &policy, 100);
        frames += r.delivery.total_frames();
        assert!(r.converged, "loss {loss} never converged");
        assert!(wire.is_consistent(), "loss {loss} left replicas diverged");
        assert!(wire.divergent().is_empty());
        frames_at.push(frames);
    }
    // Reliability is paid for in messages: 30% loss costs strictly more
    // control frames than the lossless run.
    assert!(frames_at[3] > frames_at[0], "expected overhead growth, got {frames_at:?}");
}

#[test]
fn crash_repair_rehomes_orphans_into_a_valid_lc_tree() {
    let (net, tree, lc, model) = setup();
    let policy = RetryPolicy::default();
    let mut wire = DistributedNetwork::new(net.n());
    let mut ch = LossyChannel::new(FaultPlan::uniform(0.15).with_seed(9));
    wire.announce_lossy(&tree, &mut ch, &policy).unwrap();
    assert!(wire.resync(&mut ch, &policy, 100).converged);

    // Crash the non-sink node with the most children.
    let view = wire.tree();
    let crashed = (1..net.n()).map(NodeId::new).max_by_key(|&v| view.children(v).len()).unwrap();
    let orphans = view.children(crashed).len();
    assert!(orphans > 0, "busiest router has children");

    ch.crash(crashed);
    let rep = wire.repair_crashed(&net, lc, &model, crashed, &mut ch, &policy).unwrap();
    assert_eq!(rep.rehomed.len(), orphans, "stranded: {:?}", rep.stranded);
    assert!(rep.stranded.is_empty());
    let r = wire.resync(&mut ch, &policy, 100);
    assert!(r.converged);
    assert!(wire.is_consistent_alive(&ch));

    let repaired = wire.tree();
    for (orphan, new_parent) in &rep.rehomed {
        assert_eq!(repaired.parent(*orphan), Some(*new_parent));
        assert!(*new_parent != crashed);
        // The new route to the sink avoids the dead node.
        let mut v = *orphan;
        while let Some(p) = repaired.parent(v) {
            assert!(p != crashed, "orphan {} still routes through the crash", orphan.index());
            v = p;
        }
        assert_eq!(v, NodeId::SINK);
    }
    // Every adopting parent still meets the LC lifetime bound (Eq. 23
    // child counts against the paper's energy model).
    for v in (0..net.n()).map(NodeId::new) {
        if v == crashed {
            continue;
        }
        let children = repaired.children(v).len();
        if children > 0 {
            let life = lifetime::node_lifetime(net.initial_energy(v), &model, children);
            assert!(
                life >= lc * (1.0 - 1e-9),
                "node {} has {} children, lifetime {} < LC {}",
                v.index(),
                children,
                life,
                lc
            );
        }
    }
}

#[test]
fn divergence_is_recovered_not_asserted() {
    let (net, tree, _lc, _model) = setup();
    // A starved retry budget under heavy loss: floods will fail hops and
    // replicas will diverge. Nothing may panic; the heartbeat sweep must
    // flag the divergence and anti-entropy must repair it once the
    // channel calms down.
    let starved = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
    let mut wire = DistributedNetwork::new(net.n());
    let mut ch = LossyChannel::new(FaultPlan::uniform(0.6).with_seed(5));
    let d = wire.announce_lossy(&tree, &mut ch, &starved).unwrap();
    assert!(d.failed_hops > 0, "60% loss with one attempt must fail hops");
    assert!(!wire.is_consistent(), "divergence expected under starvation");
    assert!(!wire.divergent().is_empty());

    // The channel improves; the default policy's retries plus resync
    // reconcile every replica.
    let mut calm = LossyChannel::new(FaultPlan::uniform(0.2).with_seed(6));
    let r = wire.resync(&mut calm, &RetryPolicy::default(), 100);
    assert!(r.converged);
    assert!(r.reannounces > 0, "recovery re-announced the epoch");
    assert!(wire.is_consistent());
}

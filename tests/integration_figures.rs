//! Integration check that every figure module runs end to end at reduced
//! scale and produces non-degenerate, paper-shaped output.

use wsn_experiments::*;

#[test]
fn all_figures_render_fast() {
    let f1 = fig1::render(&fig1::run(&fig1::Config::fast()));
    assert!(f1.contains("Fig. 1"));

    let f2 = fig2::render(&fig2::run(&fig2::Config::fast()));
    assert!(f2.contains("Fig. 2"));

    let f3 = fig3::render(&fig3::run(&fig3::Config::fast()));
    assert!(f3.contains("mW"));

    let f4 = fig4::render(&fig4::run());
    assert!(f4.contains("0.648"));

    let f5 = fig5::render(&fig5::run());
    assert!(f5.contains("[0, 2, 8, 4, 4, 0, 8]"));

    let f7 = fig7::render(&fig7::run(&fig7::Config::fast()));
    assert!(f7.contains("AAML") && f7.contains("MST"));

    let rows8 = fig8::run(&fig8::Config::fast());
    assert!(!rows8.is_empty());

    let rows9 = fig9::run(&fig9::fast_config());
    assert!(!rows9.is_empty());

    let pts10 = fig10::run(&fig10::Config::fast());
    assert_eq!(pts10.len(), fig10::Config::fast().probabilities.len());

    let recs = fig11_13::run(&fig11_13::Config::fast());
    assert!(fig11_13::render_fig11(&recs).contains("Fig. 11"));
    assert!(fig11_13::render_fig12(&recs).contains("Fig. 12"));
    assert!(fig11_13::render_fig13(&recs).contains("Fig. 13"));
}

#[test]
fn headline_result_ira_beats_aaml_reliability_by_a_wide_margin() {
    // The abstract's claim: IRA outperforms AAML in reliability (24% on the
    // DFL trace). Check the reproduction preserves a double-digit gap.
    let rows = fig7::run(&fig7::Config::default());
    let aaml = rows.iter().find(|r| r.scheme == "AAML").unwrap();
    let ira = rows.iter().find(|r| r.scheme.starts_with("IRA@1.0")).unwrap();
    let improvement = (ira.reliability - aaml.reliability) / aaml.reliability;
    assert!(improvement > 0.05, "reliability improvement collapsed: {:.1}%", improvement * 100.0);
    assert!(ira.lifetime >= aaml.lifetime * 0.75, "lifetime parity lost");
}

//! End-to-end observability checks: the registry agrees exactly with the
//! fault injector's own accounting, and `--trace`-style collection is
//! deterministic across identically-seeded runs.

use bytes::Bytes;
use wsn_experiments::fig8;
use wsn_model::NodeId;
use wsn_proto::{send_hop, FaultPlan, LossyChannel, Message, RetryPolicy};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn pc_frame(seq: u16) -> Bytes {
    Message::ParentChange { epoch: 1, seq, child: n(2), new_parent: n(3) }.encode()
}

/// The channel counters in the registry must match the `ChannelStats` the
/// fault plan maintains — attempt for attempt, under a fixed seed — and
/// the hop-level ARQ counters must sum exactly over the hop reports.
#[test]
fn retry_and_ack_counters_match_injected_losses_exactly() {
    let obs = wsn_obs::Obs::detached();
    let _ambient = wsn_obs::install(obs.clone());
    // The channel resolves its registry handles at construction, so it
    // must be built *after* the collector is installed.
    let mut ch = LossyChannel::new(FaultPlan::uniform(0.35).with_seed(97).with_duplication(0.1));
    let policy = RetryPolicy::default();
    let (mut attempts, mut acks, mut slots, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for s in 0..150u16 {
        let r = send_hop(&mut ch, &policy, n(0), n(1), &pc_frame(s));
        attempts += r.attempts as u64;
        acks += r.acks as u64;
        slots += r.slots;
        if !r.acked {
            failed += 1;
        }
    }
    let reg = obs.registry();
    let get = |name: &str| reg.counter(name).get();
    // Channel-level: registry mirrors ChannelStats field for field.
    assert_eq!(get("proto.frames_offered"), ch.stats.offered as u64);
    assert_eq!(get("proto.frames_delivered"), ch.stats.delivered as u64);
    assert_eq!(get("proto.frames_dropped"), ch.stats.dropped as u64);
    assert_eq!(get("proto.frames_duplicated"), ch.stats.duplicated as u64);
    assert_eq!(get("proto.frames_reordered"), ch.stats.reordered as u64);
    assert_eq!(get("proto.frames_to_crashed"), ch.stats.to_crashed as u64);
    assert!(ch.stats.dropped > 0, "the 35% loss plan must actually drop frames");
    // Hop-level: counters sum exactly over the per-hop reports.
    assert_eq!(get("proto.hop_attempts"), attempts);
    assert_eq!(get("proto.hop_acks"), acks);
    assert_eq!(get("proto.hop_slots"), slots);
    assert_eq!(get("proto.retransmissions"), attempts - 150);
    assert_eq!(get("proto.backoff_slots"), slots - attempts);
    // The attempts-per-hop histogram saw every hop once.
    let hist = reg.histogram("proto.attempts_per_hop", &[1, 2, 4, 8]);
    assert_eq!(hist.count(), 150);
    assert_eq!(hist.sum(), attempts);
    // Failed hops surface as warn events even without a trace buffer —
    // count them via the summary only when tracing; here just sanity-check
    // the loss plan produced some retries.
    assert!(attempts > 150, "35% loss must force retransmissions");
    let _ = failed;
}

/// Crashed endpoints are mirrored too.
#[test]
fn crashed_traffic_is_counted() {
    let obs = wsn_obs::Obs::detached();
    let _ambient = wsn_obs::install(obs.clone());
    let mut ch = LossyChannel::new(FaultPlan::lossless());
    ch.crash(n(1));
    let r = send_hop(&mut ch, &RetryPolicy::default(), n(0), n(1), &pc_frame(0));
    assert!(!r.acked);
    let reg = obs.registry();
    assert_eq!(reg.counter("proto.frames_to_crashed").get(), ch.stats.to_crashed as u64);
    assert_eq!(ch.stats.to_crashed, RetryPolicy::default().max_attempts);
}

fn traced_fig8_jsonl() -> String {
    let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
    {
        let _ambient = wsn_obs::install(obs.clone());
        let cfg = fig8::Config { instances: 2, ..fig8::Config::default() };
        let rows = fig8::run(&cfg);
        assert_eq!(rows.len(), 2);
    }
    obs.trace_jsonl()
}

/// Two identically-seeded traced runs produce byte-identical JSONL (the
/// virtual clock ticks once per record, never reading wall time), and the
/// trace passes strict schema validation with the whole pipeline visible.
#[test]
fn traced_fig8_is_deterministic_and_covers_the_pipeline() {
    let a = traced_fig8_jsonl();
    let b = traced_fig8_jsonl();
    assert_eq!(a, b, "virtual-clock traces must be byte-identical");
    let summary = wsn_obs::validate_trace(&a).expect("trace validates");
    for span in
        ["fig8-instance", "ira-attempt", "lp-solve", "separation", "decode", "protocol-round"]
    {
        assert!(summary.span(span).is_some(), "span `{span}` missing from trace");
    }
    // The fig8 replay announces over a lossless channel: one round per
    // instance.
    assert_eq!(summary.span("protocol-round").unwrap().count, 2);
}

/// The cut-pool engine's registry counters are exactly reproducible under
/// a fixed seed: two identical fig8 runs publish identical `sep.*` totals,
/// and the pool counters are consistent with the solver's cut accounting
/// (every pool hit is a cut that was activated without a maxflow run).
#[test]
fn engine_counters_are_deterministic_under_fixed_seed() {
    let run_counters = || {
        let obs = wsn_obs::Obs::detached();
        let mut totals: Vec<(String, u64)>;
        {
            let _ambient = wsn_obs::install(obs.clone());
            let cfg = fig8::Config { instances: 2, ..fig8::Config::default() };
            let _rows = fig8::run(&cfg);
            totals = obs.registry().counter_snapshot();
        }
        // The `*_ns` counters are wall time — real and noisy by design;
        // everything else is algorithmic and must reproduce exactly.
        totals.retain(|(name, _)| !name.ends_with("_ns"));
        totals
    };
    let a = run_counters();
    let b = run_counters();
    assert_eq!(a, b, "identically-seeded runs must publish identical counters");
    let get = |name: &str| a.iter().find(|(k, _)| k == name).map(|&(_, v)| v).unwrap_or(0);
    assert!(get("ira.cuts_added") > 0, "fig8 instances need subtour cuts");
    assert!(
        get("sep.pool_hits") <= get("ira.cuts_added"),
        "a pool hit is one kind of cut activation"
    );
    let batch_cap = mrlc_core::SeparationConfig::default().max_cuts_per_round as u64;
    assert!(
        get("sep.pool_hits") <= get("sep.pool_scans") * batch_cap,
        "hits are bounded by scans times the batch cap"
    );
}

/// The exported JSONL round-trips through the parser: every record the
/// collector wrote is seen by the validator, and span nesting survives.
#[test]
fn trace_jsonl_round_trips_through_the_validator() {
    let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
    {
        let _ambient = wsn_obs::install(obs.clone());
        let _outer = wsn_obs::span_with(
            "outer",
            vec![
                wsn_obs::field("int", 7u64),
                wsn_obs::field("float", 0.5f64),
                wsn_obs::field("flag", true),
                wsn_obs::field("label", "x\"y\\z"),
            ],
        );
        {
            let _inner = wsn_obs::span("inner");
            wsn_obs::warn("trouble", vec![wsn_obs::field("code", 3u64)]);
        }
        wsn_obs::event("after", Vec::new());
    }
    let text = obs.trace_jsonl();
    let summary = wsn_obs::validate_trace(&text).expect("round-trip validates");
    // Header + 2 starts + 2 ends + 2 events.
    assert_eq!(summary.records, 6);
    assert_eq!(summary.span("outer").unwrap().count, 1);
    assert_eq!(summary.span("inner").unwrap().count, 1);
    assert_eq!(summary.event("trouble").unwrap().warns, 1);
    assert_eq!(summary.event("after").unwrap().warns, 0);
    // The inner span's time is attributed to inner, not outer's self time.
    let outer = summary.span("outer").unwrap();
    let inner = summary.span("inner").unwrap();
    assert!(outer.total > inner.total);
    assert!(outer.self_time < outer.total);
}

/// Acceptance: on a full-size (n = 80) warm solve under a wall-clock
/// trace, the hotspot profiler attributes at least 90% of `lp-solve` time
/// to named sub-stage spans (`lp-dual-repair`, `lp-primal`, `lp-extract`,
/// `lp-verify`, `lp-cold-build`, `lp-phase1`) — the flamegraph never
/// shows an opaque LP blob.
#[test]
fn hotspots_attribute_lp_time_to_named_substages() {
    use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::{lifetime, EnergyModel};
    use wsn_testbed::{random_graph, RandomGraphConfig};

    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    let gcfg = RandomGraphConfig { n: 80, link_probability: 0.3, ..RandomGraphConfig::default() };
    let mut rng = StdRng::seed_from_u64(4242 + 80);
    let net = random_graph(&gcfg, &mut rng).expect("connected");
    let inst = MrlcInstance::new(net, model, lc).expect("valid");
    // Attribution is a wall-time claim, so this trace uses the wall clock
    // (on the virtual clock every record is one tick and span durations
    // measure record counts, not time).
    let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::wall());
    {
        let _ambient = wsn_obs::install(obs.clone());
        let _ = solve_ira(&inst, &IraConfig::default()).expect("n=80 solves");
    }
    let profile = wsn_obs::profile_trace(&obs.trace_jsonl()).expect("trace profiles");
    let attributed = profile.attributed_fraction("lp-solve").expect("lp-solve spans present");
    assert!(
        attributed >= 0.90,
        "only {:.1}% of lp-solve time is attributed to named sub-stages",
        attributed * 100.0
    );
    // The folded stacks expose the nested LP path for flamegraph tooling.
    let folded = profile.folded();
    assert!(
        folded.lines().any(|l| l.contains("lp-solve;lp-")),
        "folded stacks must nest the LP sub-stages:\n{folded}"
    );
}

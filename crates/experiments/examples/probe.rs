//! Tuning probe for the cut-pool separation engine: runs IRA on one
//! bench-ladder rung and sweeps the batch cap / strengthening margin.
//!
//! ```text
//! cargo run --release -p wsn-experiments --example probe -- <n> [K,K,...] [margin,...]
//! ```
//!
//! An empty K list (`probe 160 ""`) runs the single-cut baseline instead.
use mrlc_core::{solve_ira, IraConfig, MrlcInstance, SeparationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_model::lifetime;
use wsn_model::EnergyModel;
use wsn_testbed::{random_graph, RandomGraphConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    let p = match n {
        _ if n <= 40 => 0.7,
        _ if n <= 80 => 0.3,
        _ if n <= 160 => 0.15,
        _ => 0.06,
    };
    let gcfg = RandomGraphConfig { n, link_probability: p, ..RandomGraphConfig::default() };
    let mut rng = StdRng::seed_from_u64(4242 + n as u64);
    let net = random_graph(&gcfg, &mut rng).expect("connected");
    let inst = MrlcInstance::new(net, model, lc).expect("valid");

    let run = |label: &str, sep: SeparationConfig| {
        let obs = wsn_obs::Obs::detached();
        let _g = wsn_obs::install(obs.clone());
        let cfg = IraConfig { warm_lp: true, separation: sep, ..IraConfig::default() };
        let t = Instant::now();
        let sol = solve_ira(&inst, &cfg).expect("solves");
        let wall = t.elapsed().as_secs_f64() * 1e3;
        let reg = obs.registry();
        let lp_ms = reg.counter("ira.lp_ns").get() as f64 / 1e6;
        println!(
            "{label:>10}: iters {:3}  solves {:3}  rounds {:3}  cuts {:4}  pivots {:6}  pool_hits {:4}  scans {:3}  batched {:4}  pruned {:5}  wall {wall:9.1}ms  lp {lp_ms:9.1}ms  sep {:8.1}ms  cost {:.3}",
            sol.stats.iterations,
            sol.stats.lp_solves,
            sol.stats.cut_rounds,
            sol.stats.cuts_added,
            sol.stats.pivots,
            sol.stats.pool_hits,
            sol.stats.pool_scans,
            sol.stats.cuts_batched,
            sol.stats.seeds_pruned,
            sol.stats.sep_ms,
            sol.cost,
        );
    };

    let ks: Vec<usize> = std::env::args()
        .nth(2)
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![4, 8, 16, 32]);
    if ks.is_empty() {
        run("single", SeparationConfig::single_cut());
    }
    let margins: Vec<f64> = std::env::args()
        .nth(3)
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![SeparationConfig::default().strengthen_margin]);
    for &k in &ks {
        for &mg in &margins {
            let sep = SeparationConfig {
                max_cuts_per_round: k,
                strengthen_margin: mg,
                ..SeparationConfig::default()
            };
            run(&format!("K={k} m={mg}"), sep);
        }
    }
}

//! Fig. 3 — per-state power draw of a TelosB node (send / receive / idle),
//! from synthesized PowerMonitor traces.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_radio::{PowerState, PowerTrace};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Samples per trace.
    pub samples: usize,
    /// Sampling interval, seconds.
    pub dt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { samples: 20_000, dt: 1e-3, seed: 3 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { samples: 2000, ..Config::default() }
    }
}

/// One synthesized trace summary.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// The radio state.
    pub state: PowerState,
    /// Average power, watts.
    pub mean_power_w: f64,
    /// Trace energy, joules.
    pub energy_j: f64,
}

/// Synthesizes one trace per state and summarizes it.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    [PowerState::Sending, PowerState::Receiving, PowerState::Idle]
        .into_iter()
        .map(|state| {
            let trace = PowerTrace::synthesize(state, config.samples, config.dt, &mut rng);
            Row { state, mean_power_w: trace.mean_power_w(), energy_j: trace.energy_j() }
        })
        .collect()
}

/// Renders the Fig. 3 summary (means in the paper's units).
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["state", "mean power", "trace energy (J)"]);
    for r in rows {
        let power = match r.state {
            PowerState::Idle => format!("{} uW", f(r.mean_power_w * 1e6, 1)),
            _ => format!("{} mW", f(r.mean_power_w * 1e3, 1)),
        };
        t.push([format!("{:?}", r.state), power, f(r.energy_j, 4)]);
    }
    format!("Fig. 3 — TelosB per-state power (synthesized PowerMonitor traces)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_match_paper_constants() {
        let rows = run(&Config::default());
        let send = rows.iter().find(|r| r.state == PowerState::Sending).unwrap();
        let recv = rows.iter().find(|r| r.state == PowerState::Receiving).unwrap();
        let idle = rows.iter().find(|r| r.state == PowerState::Idle).unwrap();
        assert!((send.mean_power_w - 0.080).abs() < 0.005, "{}", send.mean_power_w);
        assert!((recv.mean_power_w - 0.060).abs() < 0.003, "{}", recv.mean_power_w);
        assert!((idle.mean_power_w - 80e-6).abs() < 5e-6, "{}", idle.mean_power_w);
    }

    #[test]
    fn render_uses_paper_units() {
        let text = render(&run(&Config::fast()));
        assert!(text.contains("mW"));
        assert!(text.contains("uW"));
    }
}

//! Fig. 2 — average PRR vs. distance at TelosB TX power levels 11/15/19.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_radio::{estimate_prr, LinkModel, TxPowerLevel, FT};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Distances in feet (paper: 4–16 ft).
    pub distances_ft: Vec<f64>,
    /// TX power register levels (paper: 11, 15, 19).
    pub levels: Vec<u8>,
    /// Independent link placements averaged per point (shadowing draws).
    pub placements: usize,
    /// Beacon rounds per placement (Eq. 2).
    pub beacon_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Shadowing sigma for the measurement, dB. The paper's Fig. 2 is a
    /// controlled line-of-sight sweep, so the spread is smaller than a
    /// deployed link's (default 1.0 dB vs. the deployment's 3 dB).
    pub shadowing_sigma_db: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            distances_ft: (1..=8).map(|i| 2.0 * i as f64).collect(),
            levels: vec![11, 15, 19],
            placements: 40,
            beacon_rounds: 1000,
            seed: 2,
            shadowing_sigma_db: 1.0,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config {
            distances_ft: vec![4.0, 10.0, 16.0],
            placements: 10,
            beacon_rounds: 200,
            ..Config::default()
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Distance in feet.
    pub distance_ft: f64,
    /// TX power level.
    pub level: u8,
    /// Average estimated PRR over placements.
    pub avg_prr: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Point> {
    let mut model = LinkModel::default();
    model.pathloss.shadowing_sigma_db = config.shadowing_sigma_db;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for &level in &config.levels {
        let tx = TxPowerLevel::from_level(level)
            .unwrap_or_else(|| panic!("unknown power level {level}"));
        for &ft in &config.distances_ft {
            let mut total = 0.0;
            for _ in 0..config.placements {
                let actual = model.sample_prr(ft * FT, tx, &mut rng);
                total += estimate_prr(actual, config.beacon_rounds, &mut rng).value();
            }
            out.push(Point { distance_ft: ft, level, avg_prr: total / config.placements as f64 });
        }
    }
    out
}

/// Renders the paper-style series.
pub fn render(points: &[Point]) -> String {
    let mut t = Table::new(["distance (ft)", "Tx level", "avg PRR"]);
    for p in points {
        t.push([f(p.distance_ft, 0), p.level.to_string(), f(p.avg_prr, 3)]);
    }
    format!("Fig. 2 — distance vs. average link quality\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(points: &[Point], level: u8, ft: f64) -> f64 {
        points
            .iter()
            .find(|p| p.level == level && (p.distance_ft - ft).abs() < 1e-9)
            .unwrap()
            .avg_prr
    }

    #[test]
    fn paper_shape_holds() {
        let pts = run(&Config::default());
        // Near-perfect at 4 ft for every level.
        for level in [11, 15, 19] {
            assert!(at(&pts, level, 4.0) > 0.9, "level {level} near");
        }
        // Levels 11 and 15 collapse below 10% by 16 ft.
        assert!(at(&pts, 11, 16.0) < 0.10);
        assert!(at(&pts, 15, 16.0) < 0.15);
        // Level 19 stays clearly above them.
        assert!(at(&pts, 19, 16.0) > 2.0 * at(&pts, 15, 16.0));
    }

    #[test]
    fn prr_decreases_with_distance_on_average() {
        let pts = run(&Config::default());
        for level in [11, 15, 19] {
            let series: Vec<f64> =
                pts.iter().filter(|p| p.level == level).map(|p| p.avg_prr).collect();
            assert!(
                series.first().unwrap() >= series.last().unwrap(),
                "level {level} should decay"
            );
        }
    }

    #[test]
    fn render_mentions_levels() {
        let text = render(&run(&Config::fast()));
        assert!(text.contains("19"));
        assert!(text.contains("distance"));
    }
}

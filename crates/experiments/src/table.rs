//! Minimal aligned plain-text tables for experiment output.

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; the cell count must match the headers.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (tables helper).
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header", "b"]);
        t.push(["1", "2", "3"]);
        t.push(["100", "2000", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(std::f64::consts::E, 2), "2.72");
        assert_eq!(f(1.0, 0), "1");
    }
}

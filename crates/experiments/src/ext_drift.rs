//! Extension: the protocol under *realistic* link dynamics.
//!
//! The paper's Figs. 11–13 degrade one link by a fixed cost step per round.
//! Here every link evolves by a mean-reverting logit drift
//! ([`wsn_radio::QualityDrift`]) — links worsen *and* recover — and the
//! protocol runs both triggers: the child of the most-degraded tree link
//! fires link-worse, and recovered non-tree links fire ILU.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{reliability, EnergyModel, PaperCost};
use wsn_proto::ProtocolState;
use wsn_radio::{LinkModel, QualityDrift};
use wsn_testbed::{dfl_network, DflConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Drift rounds.
    pub rounds: usize,
    /// Drift noise (logit units per round).
    pub sigma: f64,
    /// Mean-reversion strength.
    pub reversion: f64,
    /// Trace/drift seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { rounds: 100, sigma: 0.35, reversion: 0.05, seed: 2015 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { rounds: 20, ..Config::default() }
    }
}

/// One round's record.
#[derive(Clone, Copy, Debug)]
pub struct Record {
    /// Round index.
    pub round: usize,
    /// Distributed tree cost (paper units) on the drifted network.
    pub protocol_cost: f64,
    /// Cost of a freshly re-solved IRA tree.
    pub ira_cost: f64,
    /// Protocol reliability.
    pub protocol_reliability: f64,
    /// Updates (worse + better) performed this round.
    pub updates: usize,
}

/// Runs the drift experiment.
pub fn run(config: &Config) -> Vec<Record> {
    let mut net = dfl_network(&DflConfig::default(), &LinkModel::default(), config.seed)
        .expect("DFL deployment");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    let lc = aaml.lifetime * 0.7; // child headroom, as in the ablations
    let initial = ira_at(&net, model, lc).expect("initial tree");
    let mut state = ProtocolState::new(&initial.tree, lc, model).expect("codable");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD21F7);

    // One drift process per link, anchored at its deployed quality.
    let mut drifts: Vec<QualityDrift> = net
        .links()
        .iter()
        .map(|l| QualityDrift::new(l.prr(), config.reversion, config.sigma))
        .collect();

    let mut out = Vec::with_capacity(config.rounds);
    for round in 1..=config.rounds {
        // All links drift.
        for (i, d) in drifts.iter_mut().enumerate() {
            net.set_prr(wsn_model::EdgeId(i as u32), d.step(&mut rng));
        }
        let mut updates = 0usize;

        // Trigger 1: the tree link that lost the most quality this round
        // (each child monitors its own uplink).
        let tree = state.tree();
        if let Some((child, _)) = tree
            .edges()
            .filter_map(|(c, p)| net.find_edge(c, p).map(|e| (c, net.link(e).prr().value())))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        {
            updates += state.handle_link_worse(&net, child).changes;
        }

        // Trigger 2: the best recovered non-tree link.
        let tree = state.tree();
        if let Some((u, v)) = net
            .edges()
            .filter(|(_, l)| !tree.contains_edge(l.u(), l.v()))
            .max_by(|a, b| a.1.prr().value().partial_cmp(&b.1.prr().value()).unwrap())
            .map(|(_, l)| (l.u(), l.v()))
        {
            updates += state.handle_link_better(&net, u, v).changes;
        }

        let protocol_tree = state.tree();
        let ira_cost = ira_at(&net, model, lc)
            .map(|s| PaperCost::of_tree(&net, &s.tree).0)
            .unwrap_or(f64::NAN);
        out.push(Record {
            round,
            protocol_cost: PaperCost::of_tree(&net, &protocol_tree).0,
            ira_cost,
            protocol_reliability: reliability::tree_reliability(&net, &protocol_tree),
            updates,
        });
    }
    out
}

/// Renders the drift-tracking table.
pub fn render(records: &[Record]) -> String {
    let mut t = Table::new(["round", "protocol cost", "IRA cost", "protocol rel.", "updates"]);
    for r in records {
        t.push([
            r.round.to_string(),
            f(r.protocol_cost, 1),
            f(r.ira_cost, 1),
            f(r.protocol_reliability, 4),
            r.updates.to_string(),
        ]);
    }
    format!(
        "Extension — protocol under mean-reverting link drift (both triggers live)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_adapts_and_tracks() {
        let records = run(&Config { rounds: 40, ..Config::default() });
        assert_eq!(records.len(), 40);
        // Under continuous drift the protocol must act repeatedly.
        let total_updates: usize = records.iter().map(|r| r.updates).sum();
        assert!(total_updates >= 5, "only {total_updates} updates over 40 rounds");
        // It never beats, and roughly tracks, the centralized re-solve.
        for r in records.iter().filter(|r| r.ira_cost.is_finite()) {
            assert!(r.protocol_cost >= r.ira_cost - 1e-6, "round {}", r.round);
            assert!(
                r.protocol_cost <= r.ira_cost + 700.0,
                "round {}: protocol {} vs IRA {} — lost the plot",
                r.round,
                r.protocol_cost,
                r.ira_cost
            );
        }
    }

    #[test]
    fn render_has_one_row_per_round() {
        let records = run(&Config::fast());
        assert_eq!(render(&records).lines().count(), records.len() + 3);
    }
}

//! Fig. 4 — the toy reliability example: two aggregation trees over the
//! same 6-node network with reliabilities 0.36 and 0.648.

use crate::table::{f, Table};
use wsn_model::{reliability, AggregationTree, Network, NetworkBuilder, NodeId, PaperCost};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// The Fig. 4 network (sink 0, sensors 1–5).
pub fn network() -> Network {
    let mut b = NetworkBuilder::new(6);
    b.add_edge(4, 0, 1.0).unwrap();
    b.add_edge(5, 0, 1.0).unwrap();
    b.add_edge(2, 4, 0.5).unwrap();
    b.add_edge(3, 4, 0.9).unwrap();
    b.add_edge(1, 5, 0.8).unwrap();
    b.add_edge(2, 5, 0.9).unwrap();
    b.build().expect("the toy network is connected")
}

/// Tree (a): node 2 under node 4 via the 0.5 link → Q = 0.36.
pub fn tree_a() -> AggregationTree {
    AggregationTree::from_edges(
        n(0),
        6,
        &[(n(4), n(0)), (n(5), n(0)), (n(2), n(4)), (n(3), n(4)), (n(1), n(5))],
    )
    .unwrap()
}

/// Tree (b): node 2 under node 5 via the 0.9 link → Q = 0.648.
pub fn tree_b() -> AggregationTree {
    AggregationTree::from_edges(
        n(0),
        6,
        &[(n(4), n(0)), (n(5), n(0)), (n(2), n(5)), (n(3), n(4)), (n(1), n(5))],
    )
    .unwrap()
}

/// One row of the comparison.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// 'a' or 'b'.
    pub label: char,
    /// Reliability `Q(T)`.
    pub reliability: f64,
    /// Cost in paper units.
    pub paper_cost: f64,
}

/// Computes both trees' metrics.
pub fn run() -> Vec<Row> {
    let net = network();
    [('a', tree_a()), ('b', tree_b())]
        .into_iter()
        .map(|(label, t)| Row {
            label,
            reliability: reliability::tree_reliability(&net, &t),
            paper_cost: PaperCost::of_tree(&net, &t).0,
        })
        .collect()
}

/// Renders the toy comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["tree", "reliability Q(T)", "cost (paper units)"]);
    for r in rows {
        t.push([r.label.to_string(), f(r.reliability, 3), f(r.paper_cost, 1)]);
    }
    format!("Fig. 4 — toy reliability example\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exact_values() {
        let rows = run();
        assert!((rows[0].reliability - 0.36).abs() < 1e-12);
        assert!((rows[1].reliability - 0.648).abs() < 1e-12);
        assert!(rows[1].paper_cost < rows[0].paper_cost);
    }

    #[test]
    fn render_shows_both() {
        let text = render(&run());
        assert!(text.contains("0.360"));
        assert!(text.contains("0.648"));
    }
}

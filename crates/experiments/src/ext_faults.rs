//! Extension: control-plane fault tolerance — convergence and overhead
//! under a lossy channel, plus node-crash repair.
//!
//! The paper's distributed protocol (§VI-B) assumes every announce and
//! parent-change broadcast arrives. This experiment drops that assumption:
//! control frames traverse the same unreliable links as data, so each hop
//! runs ack/retry/backoff ([`wsn_proto::RetryPolicy`]) and the network
//! reconciles stragglers with heartbeat-digest anti-entropy
//! ([`wsn_proto::DistributedNetwork::resync`]). The sweep raises per-link
//! frame loss from 0% to 30% and reports what reliability costs: control
//! frames sent (relative to the lossless baseline), virtual-time slots,
//! resync rounds, and epoch re-announces. A final phase crashes the
//! busiest non-sink router mid-epoch and measures sink-driven orphan
//! re-homing under the `LC` lifetime bound.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wsn_model::{EnergyModel, Network, NodeId};
use wsn_proto::{DistributedNetwork, FaultPlan, LossyChannel, RetryPolicy};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-link control-frame loss probabilities to sweep.
    pub losses: Vec<f64>,
    /// Independent channel seeds per loss rate.
    pub trials: usize,
    /// Parent-change updates issued per trial.
    pub changes: usize,
    /// Deployment / protocol seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            losses: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
            trials: 10,
            changes: 6,
            seed: 2015,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { losses: vec![0.0, 0.15, 0.30], trials: 3, changes: 3, ..Config::default() }
    }
}

/// Aggregate outcome per loss rate (means over trials).
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Per-link frame loss probability.
    pub loss: f64,
    /// Mean control frames sent (data + ack) per trial.
    pub frames: f64,
    /// Mean virtual-time slots spent (transmissions + backoff).
    pub slots: f64,
    /// Mean heartbeat/resync rounds until convergence.
    pub resync_rounds: f64,
    /// Mean epoch re-announces triggered by divergence.
    pub reannounces: f64,
    /// Fraction of trials where every replica converged byte-identically.
    pub converged: f64,
    /// Mean orphans re-homed after the crash (out of `crash_orphans`).
    pub rehomed: f64,
    /// Mean orphans left stranded (no eligible live neighbour).
    pub stranded: f64,
    /// Mean orphans the crashed node had *at crash time* — the updates
    /// issued before the crash can move children away from the victim,
    /// so this varies by trial (always `rehomed + stranded`).
    pub crash_orphans: f64,
}

/// Picks a legal random re-homing in `tree`: a non-sink node and a
/// physical neighbour outside its own subtree.
fn random_move(
    net: &Network,
    tree: &wsn_model::AggregationTree,
    sink: NodeId,
    rng: &mut StdRng,
) -> Option<(NodeId, NodeId)> {
    for _ in 0..32 {
        let child = NodeId::new(rng.random_range(0..net.n()));
        if child == sink {
            continue;
        }
        let candidates: Vec<NodeId> = net
            .neighbors(child)
            .iter()
            .map(|&(_, w)| w)
            .filter(|&w| !tree.in_subtree(w, child))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let parent = candidates[rng.random_range(0..candidates.len())];
        return Some((child, parent));
    }
    None
}

/// The non-sink node with the most children in `tree` — crashing it
/// orphans the largest subtree head-count.
fn busiest_router(tree: &wsn_model::AggregationTree, n: usize, sink: NodeId) -> NodeId {
    (0..n)
        .map(NodeId::new)
        .filter(|&v| v != sink)
        .max_by_key(|&v| tree.children(v).len())
        .expect("network has more than one node")
}

/// Runs the sweep. Every loss rate replays the same deployment, initial
/// tree, update schedule, and crash victim; only the channel differs.
pub fn run(config: &Config) -> Vec<Row> {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), config.seed)
        .expect("DFL deployment");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    let lc = aaml.lifetime * 0.7;
    let initial = ira_at(&net, model, lc).expect("initial tree").tree;
    let sink = NodeId::SINK;
    let crashed = busiest_router(&initial, net.n(), sink);

    let mut rows = Vec::with_capacity(config.losses.len());
    for &loss in &config.losses {
        let mut acc = Row {
            loss,
            frames: 0.0,
            slots: 0.0,
            resync_rounds: 0.0,
            reannounces: 0.0,
            converged: 0.0,
            rehomed: 0.0,
            stranded: 0.0,
            crash_orphans: 0.0,
        };
        for trial in 0..config.trials {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (trial as u64) << 8);
            let mut wire = DistributedNetwork::new(net.n()).with_sink(sink);
            let mut ch = LossyChannel::new(
                FaultPlan::uniform(loss)
                    .with_seed(config.seed ^ 0xFA17 ^ trial as u64)
                    .with_duplication(0.02)
                    .with_reordering(0.02),
            );
            let policy = RetryPolicy::default();
            let mut frames = 0usize;
            let mut slots = 0u64;

            let d = wire.announce_lossy(&initial, &mut ch, &policy).expect("announce encodes");
            frames += d.total_frames();
            slots += d.slots;

            for _ in 0..config.changes {
                let view = wire.tree();
                if let Some((child, parent)) = random_move(&net, &view, sink, &mut rng) {
                    // A diverged origin may reject its own splice; the
                    // resync below repairs whatever state results.
                    if let Ok(d) = wire.parent_change_lossy(child, parent, &mut ch, &policy) {
                        frames += d.total_frames();
                        slots += d.slots;
                    }
                }
            }

            let r = wire.resync(&mut ch, &policy, 100);
            frames += r.delivery.total_frames();
            slots += r.delivery.slots;
            acc.resync_rounds += r.rounds as f64;
            acc.reannounces += r.reannounces as f64;

            // Crash the busiest router and let the sink re-home orphans.
            ch.crash(crashed);
            let rep = wire
                .repair_crashed(&net, lc, &model, crashed, &mut ch, &policy)
                .expect("sink holds a tree");
            frames += rep.delivery.total_frames();
            slots += rep.delivery.slots;
            acc.rehomed += rep.rehomed.len() as f64;
            acc.stranded += rep.stranded.len() as f64;
            acc.crash_orphans += (rep.rehomed.len() + rep.stranded.len()) as f64;
            let r2 = wire.resync(&mut ch, &policy, 100);
            frames += r2.delivery.total_frames();
            slots += r2.delivery.slots;

            if r.converged && r2.converged && wire.is_consistent_alive(&ch) {
                acc.converged += 1.0;
            }
            acc.frames += frames as f64;
            acc.slots += slots as f64;
        }
        let t = config.trials as f64;
        acc.frames /= t;
        acc.slots /= t;
        acc.resync_rounds /= t;
        acc.reannounces /= t;
        acc.converged /= t;
        acc.rehomed /= t;
        acc.stranded /= t;
        acc.crash_orphans /= t;
        rows.push(acc);
    }
    rows
}

/// Renders the sweep; the overhead column is relative to the first
/// (lossless) row's frame count.
pub fn render(rows: &[Row]) -> String {
    let baseline = rows.first().map(|r| r.frames).unwrap_or(1.0).max(1.0);
    let mut t = Table::new(vec![
        "loss",
        "frames",
        "overhead",
        "slots",
        "resync",
        "reannounce",
        "rehomed",
        "stranded",
        "converged",
    ]);
    for r in rows {
        t.push([
            format!("{:.0}%", r.loss * 100.0),
            f(r.frames, 1),
            format!("{:.2}x", r.frames / baseline),
            f(r.slots, 1),
            f(r.resync_rounds, 2),
            f(r.reannounces, 2),
            format!("{:.1}/{:.1}", r.rehomed, r.crash_orphans),
            f(r.stranded, 2),
            format!("{:.0}%", r.converged * 100.0),
        ]);
    }
    format!(
        "Ext. — control-plane fault tolerance (loss sweep, ack/retry + anti-entropy)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_and_repairs_up_to_30_percent_loss() {
        let rows = run(&Config::fast());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Acceptance bar: every trial converges to byte-identical
            // replicas and every crash orphan finds a new parent.
            assert!((r.converged - 1.0).abs() < 1e-9, "loss {} converged {}", r.loss, r.converged);
            assert!(r.stranded < 1e-9, "loss {} stranded {}", r.loss, r.stranded);
            assert!((r.rehomed - r.crash_orphans).abs() < 1e-9);
        }
        // Reliability costs messages: overhead grows with loss.
        assert!(rows[2].frames > rows[0].frames, "30% loss must cost more frames than 0%");
        assert!(rows[2].slots > rows[0].slots);
    }

    #[test]
    fn lossless_baseline_needs_no_reannounce() {
        let rows = run(&Config { losses: vec![0.0], trials: 2, changes: 3, seed: 7 });
        assert_eq!(rows[0].reannounces, 0.0);
        assert_eq!(rows[0].resync_rounds, 1.0, "one clean heartbeat sweep per resync");
    }

    #[test]
    fn render_has_one_row_per_loss() {
        let rows = run(&Config::fast());
        assert_eq!(render(&rows).lines().count(), rows.len() + 3);
    }
}

//! Fig. 5 — the Prüfer code worked example: encoding the 9-node tree,
//! decoding, and the parent-change splice.

use wsn_model::{AggregationTree, NodeId};
use wsn_prufer::{CodedTree, PruferCode};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// The Fig. 5(a) tree.
pub fn fig5_tree() -> AggregationTree {
    AggregationTree::from_edges(
        n(0),
        9,
        &[
            (n(0), n(7)),
            (n(0), n(4)),
            (n(0), n(8)),
            (n(4), n(3)),
            (n(4), n(2)),
            (n(2), n(6)),
            (n(8), n(5)),
            (n(8), n(1)),
        ],
    )
    .unwrap()
}

/// The three artifacts of the worked example.
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// `P = (0, 2, 8, 4, 4, 0, 8)`.
    pub code: Vec<u32>,
    /// `D = (7, 6, 5, 3, 2, 4, 1, 8, 0)`.
    pub sequence: Vec<u32>,
    /// After node 4 re-parents to 7: `P' = (2, 4, 4, 7, 0, 8, 8)`.
    pub updated_code: Vec<u32>,
    /// `D' = (6, 3, 2, 4, 7, 5, 1, 8, 0)`.
    pub updated_sequence: Vec<u32>,
}

/// Reproduces the example end to end.
pub fn run() -> Artifacts {
    let tree = fig5_tree();
    let code = PruferCode::encode(&tree).expect("9-node tree encodes");
    let decoded = code.decode().expect("round trip");
    let mut coded = CodedTree::from_tree(&tree).expect("codable");
    coded.change_parent(n(4), n(7)).expect("Fig. 5(b) move is valid");
    Artifacts {
        code: code.labels().iter().map(|v| v.label()).collect(),
        sequence: decoded.sequence.iter().map(|v| v.label()).collect(),
        updated_code: coded.prufer_labels().iter().map(|v| v.label()).collect(),
        updated_sequence: coded.sequence().iter().map(|v| v.label()).collect(),
    }
}

/// Renders the worked example.
pub fn render(a: &Artifacts) -> String {
    format!(
        "Fig. 5 — Prüfer code worked example\n\
         P  = {:?}\n\
         D  = {:?}\n\
         after 4 re-parents from 0 to 7 (Fig. 5b):\n\
         P' = {:?}\n\
         D' = {:?}\n",
        a.code, a.sequence, a.updated_code, a.updated_sequence
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_exactly() {
        let a = run();
        assert_eq!(a.code, vec![0, 2, 8, 4, 4, 0, 8]);
        assert_eq!(a.sequence, vec![7, 6, 5, 3, 2, 4, 1, 8, 0]);
        assert_eq!(a.updated_code, vec![2, 4, 4, 7, 0, 8, 8]);
        assert_eq!(a.updated_sequence, vec![6, 3, 2, 4, 7, 5, 1, 8, 0]);
    }

    #[test]
    fn render_shows_all_four_sequences() {
        let text = render(&run());
        assert!(text.contains("P  = [0, 2, 8, 4, 4, 0, 8]"));
        assert!(text.contains("D' = [6, 3, 2, 4, 7, 5, 1, 8, 0]"));
    }
}

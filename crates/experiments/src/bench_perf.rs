//! `bench-perf` — the perf-trajectory suite behind `BENCH_ira.json`.
//!
//! Runs IRA on a fixed, seeded scaling ladder (the DFL-16 testbed topology
//! plus random graphs at n ∈ {20, 40, 80, 120}) and records wall time,
//! LP solves, simplex pivots, cutting-plane rounds and separation time per
//! case — for the warm-started solver and, where tractable, the cold
//! rebuild-every-round path. The JSON file is the machine-readable perf
//! trajectory CI and humans diff across commits; the rendered table is the
//! human-readable snapshot.
//!
//! The vendored `serde` stub has no real serialization, so the JSON is
//! hand-rolled — the schema is documented in DESIGN.md §8.

use crate::table::{f, Table};
use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_model::{lifetime, EnergyModel};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, random_graph, DflConfig, RandomGraphConfig};

/// Suite parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Smoke mode: DFL-16 plus the n = 20 rung only (CI-speed).
    pub smoke: bool,
    /// Run the cold comparison up to this node count (the cold path's
    /// dense rebuilds grow fast; beyond this only warm numbers are
    /// recorded and `cold` is `null` in the JSON).
    pub cold_up_to: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { smoke: false, cold_up_to: 80 }
    }
}

impl Config {
    /// The CI preset.
    pub fn smoke() -> Self {
        Config { smoke: true, ..Config::default() }
    }
}

/// Counters for one solver path on one case.
#[derive(Clone, Copy, Debug)]
pub struct PathStats {
    /// End-to-end IRA wall time, milliseconds.
    pub wall_ms: f64,
    /// Inner LP solves.
    pub lp_solves: usize,
    /// Simplex pivots across all solves.
    pub pivots: usize,
    /// Cutting-plane rounds.
    pub cut_rounds: usize,
    /// Separation-oracle wall time, milliseconds.
    pub sep_ms: f64,
    /// LP-solve wall time, milliseconds (registry `ira.lp_ns`).
    pub lp_ms: f64,
    /// Prüfer-decode wall time, milliseconds (registry `ira.decode_ns`).
    pub decode_ms: f64,
    /// Warm solves that fell back to a cold rebuild (registry
    /// `lp.cold_fallbacks`).
    pub cold_fallbacks: usize,
}

/// One rung of the ladder.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Case label (`dfl-16`, `rand-80`, …).
    pub name: String,
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Warm-started solver counters.
    pub warm: PathStats,
    /// Cold rebuild-every-round counters (skipped above `cold_up_to`).
    pub cold: Option<PathStats>,
}

impl CaseResult {
    /// Cold/warm wall-time ratio, when both ran.
    pub fn speedup(&self) -> Option<f64> {
        self.cold.map(|c| c.wall_ms / self.warm.wall_ms.max(1e-9))
    }
}

fn run_path(inst: &MrlcInstance, warm: bool) -> PathStats {
    // A private metrics-only registry per path run: the per-stage
    // breakdown comes from the same counters the whole pipeline publishes,
    // with no figure-style hand-threading of timings.
    let obs = wsn_obs::Obs::detached();
    let _ambient = wsn_obs::install(obs.clone());
    let cfg = IraConfig { warm_lp: warm, ..IraConfig::default() };
    let start = Instant::now();
    let sol = solve_ira(inst, &cfg).expect("bench instance solves");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let reg = obs.registry();
    let ns_to_ms = |name: &str| reg.counter(name).get() as f64 / 1e6;
    PathStats {
        wall_ms,
        lp_solves: sol.stats.lp_solves,
        pivots: sol.stats.pivots,
        cut_rounds: sol.stats.cut_rounds,
        sep_ms: sol.stats.sep_ms,
        lp_ms: ns_to_ms("ira.lp_ns"),
        decode_ms: ns_to_ms("ira.decode_ns"),
        cold_fallbacks: reg.counter("lp.cold_fallbacks").get() as usize,
    }
}

fn run_case(name: &str, net: wsn_model::Network, lc: f64, with_cold: bool) -> CaseResult {
    let n = net.n();
    let m = net.num_edges();
    let inst = MrlcInstance::new(net, EnergyModel::PAPER, lc).expect("valid instance");
    let warm = run_path(&inst, true);
    let cold = with_cold.then(|| run_path(&inst, false));
    CaseResult { name: name.to_string(), n, m, warm, cold }
}

/// Runs the ladder.
pub fn run(config: &Config) -> Vec<CaseResult> {
    let model = EnergyModel::PAPER;
    // The scaling.rs pattern: a mild bound, at most 4 children anywhere.
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;

    let mut cases = Vec::new();
    let dfl =
        dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).expect("DFL is connected");
    cases.push(run_case("dfl-16", dfl, lc, true));

    let rungs: &[usize] = if config.smoke { &[20] } else { &[20, 40, 80, 120] };
    for &n in rungs {
        // Thin out dense rungs so edge counts (and LP columns) stay sane.
        let p = if n <= 40 { 0.7 } else { 0.3 };
        let gcfg = RandomGraphConfig { n, link_probability: p, ..RandomGraphConfig::default() };
        let mut rng = StdRng::seed_from_u64(4242 + n as u64);
        let net = random_graph(&gcfg, &mut rng).expect("connected bench instance");
        cases.push(run_case(&format!("rand-{n}"), net, lc, n <= config.cold_up_to));
    }
    cases
}

fn json_path(p: &PathStats) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"lp_solves\": {}, \"pivots\": {}, \"cut_rounds\": {}, \
         \"sep_ms\": {:.3}, \"lp_ms\": {:.3}, \"decode_ms\": {:.3}, \"cold_fallbacks\": {}}}",
        p.wall_ms,
        p.lp_solves,
        p.pivots,
        p.cut_rounds,
        p.sep_ms,
        p.lp_ms,
        p.decode_ms,
        p.cold_fallbacks
    )
}

/// Serializes the results to the `BENCH_ira.json` schema (DESIGN.md §8).
///
/// Schema version 2 adds the per-stage breakdown (`lp_ms`, `decode_ms`,
/// `cold_fallbacks` — `sep_ms` was already there) per path; every version-1
/// field is kept so existing diff tooling keeps working.
pub fn to_json(cases: &[CaseResult], smoke: bool) -> String {
    let mut out = String::from("{\n  \"suite\": \"bench-perf\",\n  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"cases\": [\n"));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"warm\": {}, \"cold\": {}, \"speedup\": {}}}{}\n",
            c.name,
            c.n,
            c.m,
            json_path(&c.warm),
            c.cold.as_ref().map_or("null".to_string(), json_path),
            c.speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table.
pub fn render(cases: &[CaseResult]) -> String {
    let mut t = Table::new([
        "case",
        "n",
        "m",
        "warm ms",
        "cold ms",
        "speedup",
        "lp solves",
        "pivots",
        "cut rounds",
        "sep ms",
    ]);
    for c in cases {
        t.push([
            c.name.clone(),
            c.n.to_string(),
            c.m.to_string(),
            f(c.warm.wall_ms, 1),
            c.cold.map_or("-".into(), |p| f(p.wall_ms, 1)),
            c.speedup().map_or("-".into(), |s| format!("{s:.2}x")),
            c.warm.lp_solves.to_string(),
            c.warm.pivots.to_string(),
            c.warm.cut_rounds.to_string(),
            f(c.warm.sep_ms, 1),
        ]);
    }
    format!("bench-perf — IRA solver trajectory (warm-started LP)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_serializes() {
        let cases = run(&Config::smoke());
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "dfl-16");
        assert_eq!(cases[1].name, "rand-20");
        for c in &cases {
            assert!(c.warm.wall_ms > 0.0);
            assert!(c.warm.lp_solves >= 1);
            assert!(c.warm.pivots > 0);
            assert!(c.warm.lp_ms > 0.0, "registry-backed LP stage timing is populated");
            assert!(c.warm.lp_ms <= c.warm.wall_ms, "a stage cannot exceed the whole");
            assert!(c.cold.is_some(), "smoke rungs are all below cold_up_to");
        }
        let json = to_json(&cases, true);
        assert!(json.contains("\"suite\": \"bench-perf\""));
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"name\": \"dfl-16\""));
        assert!(json.contains("\"pivots\""));
        assert!(json.contains("\"lp_ms\""));
        assert!(json.contains("\"decode_ms\""));
        assert!(json.contains("\"cold_fallbacks\""));
        // Exactly one trailing comma structure: valid-ish JSON shape.
        assert!(!json.contains(",]") && !json.contains(",}"));
        let table = render(&cases);
        assert!(table.contains("speedup"));
    }

    #[test]
    fn counters_are_deterministic() {
        let a = run(&Config::smoke());
        let b = run(&Config::smoke());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.m, y.m);
            assert_eq!(x.warm.lp_solves, y.warm.lp_solves);
            assert_eq!(x.warm.pivots, y.warm.pivots);
            assert_eq!(x.warm.cut_rounds, y.warm.cut_rounds);
        }
    }
}

//! `bench-perf` — the perf-trajectory suite behind `BENCH_ira.json`.
//!
//! Runs IRA on a fixed, seeded scaling ladder (the DFL-16 testbed topology
//! plus random graphs at n ∈ {20, 40, 80, 160, 320}) and records wall
//! time, LP solves, simplex pivots, cutting-plane rounds, separation time
//! and the cut-pool engine's counters per case — for the warm-started
//! batched engine and, where tractable, two comparison paths: the cold
//! rebuild-every-round solver and the single-cut-per-round separation
//! baseline (`SeparationConfig::single_cut`). The JSON file is the
//! machine-readable perf trajectory CI and humans diff across commits
//! (see `bench-check`); the rendered table is the human-readable snapshot.
//!
//! Every comparison path must decode the **same tree** as the engine path
//! (distinct seeded costs ⇒ unique LP optimum); `same_tree` records that
//! check per case so a perf win can never silently change answers.
//!
//! The vendored `serde` stub has no real serialization, so the JSON is
//! hand-rolled — the schema is documented in DESIGN.md §8.

use crate::table::{f, Table};
use mrlc_core::{solve_ira, IraConfig, MrlcInstance, SeparationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_model::{lifetime, EnergyModel, NodeId};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, random_graph, DflConfig, RandomGraphConfig};

/// Suite parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Smoke mode: DFL-16 plus the n = 20 rung only (CI-speed).
    pub smoke: bool,
    /// Run the cold comparison up to this node count (the cold path's
    /// dense rebuilds grow fast; beyond this only warm numbers are
    /// recorded and `cold` is `null` in the JSON).
    pub cold_up_to: usize,
    /// Run the single-cut separation baseline up to this node count (one
    /// cut round per violated set makes it the slowest path at scale).
    pub single_up_to: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { smoke: false, cold_up_to: 80, single_up_to: 160 }
    }
}

impl Config {
    /// The CI preset.
    pub fn smoke() -> Self {
        Config { smoke: true, ..Config::default() }
    }
}

/// Counters for one solver path on one case.
#[derive(Clone, Copy, Debug)]
pub struct PathStats {
    /// End-to-end IRA wall time, milliseconds.
    pub wall_ms: f64,
    /// Inner LP solves.
    pub lp_solves: usize,
    /// Simplex pivots across all solves.
    pub pivots: usize,
    /// Cutting-plane rounds.
    pub cut_rounds: usize,
    /// Separation wall time (pool screening + oracle), milliseconds.
    pub sep_ms: f64,
    /// LP-solve wall time, milliseconds (registry `ira.lp_ns`).
    pub lp_ms: f64,
    /// Prüfer-decode wall time, milliseconds (registry `ira.decode_ns`).
    pub decode_ms: f64,
    /// Warm solves that fell back to a cold rebuild (registry
    /// `lp.cold_fallbacks`).
    pub cold_fallbacks: usize,
    /// Cuts re-activated from the pool instead of re-derived by maxflow.
    pub pool_hits: usize,
    /// Pool screening passes.
    pub pool_scans: usize,
    /// Cuts added beyond the first of their round.
    pub cuts_batched: usize,
    /// Min-cut seeds skipped by the pruning short-circuits.
    pub seeds_pruned: usize,
}

/// The solution fingerprint used to prove paths agree: parent vector plus
/// the paper's two tree metrics.
#[derive(Clone, Debug, PartialEq)]
struct TreeSig {
    parents: Vec<Option<usize>>,
    reliability: f64,
    lifetime: f64,
}

impl TreeSig {
    fn matches(&self, other: &TreeSig) -> bool {
        self.parents == other.parents && self.metrics_match(other)
    }

    fn metrics_match(&self, other: &TreeSig) -> bool {
        (self.reliability - other.reliability).abs() < 1e-9
            && (self.lifetime - other.lifetime).abs() < 1e-9
    }
}

/// One rung of the ladder.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Case label (`dfl-16`, `rand-80`, …).
    pub name: String,
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Warm-started batched-engine counters (the production path).
    pub warm: PathStats,
    /// Cold rebuild-every-round counters (skipped above `cold_up_to`).
    pub cold: Option<PathStats>,
    /// Single-cut separation baseline (skipped above `single_up_to`).
    pub single: Option<PathStats>,
    /// True when every comparison path that ran agreed with the engine
    /// path: identical Q(T)/L(T) everywhere, and identical parent vectors
    /// for the single-cut baseline (which shares the warm tableau).
    pub same_tree: bool,
}

impl CaseResult {
    /// Cold/warm wall-time ratio, when both ran.
    pub fn speedup(&self) -> Option<f64> {
        self.cold.map(|c| c.wall_ms / self.warm.wall_ms.max(1e-9))
    }

    /// Single-cut/engine wall-time ratio, when the baseline ran.
    pub fn single_speedup(&self) -> Option<f64> {
        self.single.map(|s| s.wall_ms / self.warm.wall_ms.max(1e-9))
    }

    /// Single-cut/engine cut-round ratio — the batching win, when the
    /// baseline ran.
    pub fn round_ratio(&self) -> Option<f64> {
        self.single.map(|s| s.cut_rounds as f64 / self.warm.cut_rounds.max(1) as f64)
    }
}

fn run_path(inst: &MrlcInstance, warm: bool, sep: SeparationConfig) -> (PathStats, TreeSig) {
    // A private metrics-only registry per path run: the per-stage
    // breakdown comes from the same counters the whole pipeline publishes,
    // with no figure-style hand-threading of timings.
    let obs = wsn_obs::Obs::detached();
    let _ambient = wsn_obs::install(obs.clone());
    let cfg = IraConfig { warm_lp: warm, separation: sep, ..IraConfig::default() };
    let start = Instant::now();
    let sol = solve_ira(inst, &cfg).expect("bench instance solves");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let reg = obs.registry();
    let ns_to_ms = |name: &str| reg.counter(name).get() as f64 / 1e6;
    let stats = PathStats {
        wall_ms,
        lp_solves: sol.stats.lp_solves,
        pivots: sol.stats.pivots,
        cut_rounds: sol.stats.cut_rounds,
        sep_ms: sol.stats.sep_ms,
        lp_ms: ns_to_ms("ira.lp_ns"),
        decode_ms: ns_to_ms("ira.decode_ns"),
        cold_fallbacks: reg.counter("lp.cold_fallbacks").get() as usize,
        pool_hits: sol.stats.pool_hits,
        pool_scans: sol.stats.pool_scans,
        cuts_batched: sol.stats.cuts_batched,
        seeds_pruned: sol.stats.seeds_pruned,
    };
    let n = inst.network().n();
    let sig = TreeSig {
        parents: (0..n).map(|v| sol.tree.parent(NodeId::new(v)).map(|p| p.index())).collect(),
        reliability: sol.reliability,
        lifetime: sol.lifetime,
    };
    (stats, sig)
}

fn run_case(
    name: &str,
    net: wsn_model::Network,
    lc: f64,
    with_cold: bool,
    with_single: bool,
) -> CaseResult {
    let n = net.n();
    let m = net.num_edges();
    let inst = MrlcInstance::new(net, EnergyModel::PAPER, lc).expect("valid instance");
    let (warm, warm_sig) = run_path(&inst, true, SeparationConfig::default());
    let mut same_tree = true;
    let cold = with_cold.then(|| {
        let (stats, sig) = run_path(&inst, false, SeparationConfig::default());
        // Warm and cold tableaus may break exact cost ties differently on
        // quantized instances (DFL-16 has duplicate PRRs), so the cold
        // comparison is held to metric equality; the single-cut baseline
        // below shares the warm tableau and must reproduce the tree
        // exactly.
        same_tree &= sig.metrics_match(&warm_sig);
        stats
    });
    let single = with_single.then(|| {
        let (stats, sig) = run_path(&inst, true, SeparationConfig::single_cut());
        same_tree &= sig.matches(&warm_sig);
        stats
    });
    CaseResult { name: name.to_string(), n, m, warm, cold, single, same_tree }
}

/// Everything one bench-perf invocation measures: the solver ladder plus
/// the service-fleet storm rung.
#[derive(Clone, Debug)]
pub struct BenchResults {
    /// The IRA scaling ladder.
    pub cases: Vec<CaseResult>,
    /// The solve-service request storm (throughput / latency tail).
    pub storm: crate::serve_storm::StormStats,
}

/// Runs the ladder and the storm rung.
pub fn run(config: &Config) -> BenchResults {
    let cases = run_cases(config);
    let storm_cfg = if config.smoke {
        crate::serve_storm::Config::fast()
    } else {
        crate::serve_storm::Config::default()
    };
    BenchResults { cases, storm: crate::serve_storm::run(&storm_cfg) }
}

/// Runs the IRA scaling ladder alone.
pub fn run_cases(config: &Config) -> Vec<CaseResult> {
    let model = EnergyModel::PAPER;
    // The scaling.rs pattern: a mild bound, at most 4 children anywhere.
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;

    let mut cases = Vec::new();
    let dfl =
        dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).expect("DFL is connected");
    cases.push(run_case("dfl-16", dfl, lc, true, true));

    let rungs: &[usize] = if config.smoke { &[20] } else { &[20, 40, 80, 160, 320] };
    for &n in rungs {
        // Thin out dense rungs so edge counts (and LP columns) stay sane.
        let p = match n {
            _ if n <= 40 => 0.7,
            _ if n <= 80 => 0.3,
            _ if n <= 160 => 0.15,
            _ => 0.06,
        };
        let gcfg = RandomGraphConfig { n, link_probability: p, ..RandomGraphConfig::default() };
        let mut rng = StdRng::seed_from_u64(4242 + n as u64);
        let net = random_graph(&gcfg, &mut rng).expect("connected bench instance");
        cases.push(run_case(
            &format!("rand-{n}"),
            net,
            lc,
            n <= config.cold_up_to,
            n <= config.single_up_to,
        ));
    }
    cases
}

fn json_path(p: &PathStats) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"lp_solves\": {}, \"pivots\": {}, \"cut_rounds\": {}, \
         \"sep_ms\": {:.3}, \"lp_ms\": {:.3}, \"decode_ms\": {:.3}, \"cold_fallbacks\": {}, \
         \"pool_hits\": {}, \"pool_scans\": {}, \"cuts_batched\": {}, \"seeds_pruned\": {}}}",
        p.wall_ms,
        p.lp_solves,
        p.pivots,
        p.cut_rounds,
        p.sep_ms,
        p.lp_ms,
        p.decode_ms,
        p.cold_fallbacks,
        p.pool_hits,
        p.pool_scans,
        p.cuts_batched,
        p.seeds_pruned
    )
}

fn json_ratio(r: Option<f64>) -> String {
    r.map_or("null".to_string(), |s| format!("{s:.2}"))
}

/// Serializes the results to the `BENCH_ira.json` schema (DESIGN.md §8).
///
/// Schema version 4 adds the `storm` block — the solve-service fleet's
/// throughput/p99 rung (see `serve_storm`) with its `all_typed` /
/// `no_leaked_workers` invariants. Version 3 added the cut-pool engine
/// counters (`pool_hits`, `pool_scans`, `cuts_batched`, `seeds_pruned`)
/// per path, the `single` baseline block with its `single_speedup` /
/// `round_ratio` comparisons, and the `same_tree` answer-identity check;
/// every older field is kept so existing diff tooling keeps working.
pub fn to_json(results: &BenchResults, smoke: bool) -> String {
    let cases = &results.cases;
    let mut out = String::from("{\n  \"suite\": \"bench-perf\",\n  \"schema_version\": 4,\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"cases\": [\n"));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"warm\": {}, \"cold\": {}, \
             \"single\": {}, \"speedup\": {}, \"single_speedup\": {}, \"round_ratio\": {}, \
             \"same_tree\": {}}}{}\n",
            c.name,
            c.n,
            c.m,
            json_path(&c.warm),
            c.cold.as_ref().map_or("null".to_string(), json_path),
            c.single.as_ref().map_or("null".to_string(), json_path),
            json_ratio(c.speedup()),
            json_ratio(c.single_speedup()),
            json_ratio(c.round_ratio()),
            c.same_tree,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"storm\": {}\n}}\n", crate::serve_storm::to_json(&results.storm)));
    out
}

/// Renders the human-readable tables: the solver ladder, then the storm.
pub fn render(results: &BenchResults) -> String {
    format!("{}\n{}", render_cases(&results.cases), crate::serve_storm::render(&results.storm))
}

/// Renders the solver-ladder table alone.
pub fn render_cases(cases: &[CaseResult]) -> String {
    let mut t = Table::new([
        "case",
        "n",
        "m",
        "warm ms",
        "cold ms",
        "1-cut ms",
        "vs 1-cut",
        "rounds",
        "1-cut rnds",
        "pool hits",
        "batched",
        "pruned",
        "same tree",
    ]);
    for c in cases {
        t.push([
            c.name.clone(),
            c.n.to_string(),
            c.m.to_string(),
            f(c.warm.wall_ms, 1),
            c.cold.map_or("-".into(), |p| f(p.wall_ms, 1)),
            c.single.map_or("-".into(), |p| f(p.wall_ms, 1)),
            c.single_speedup().map_or("-".into(), |s| format!("{s:.2}x")),
            c.warm.cut_rounds.to_string(),
            c.single.map_or("-".into(), |p| p.cut_rounds.to_string()),
            c.warm.pool_hits.to_string(),
            c.warm.cuts_batched.to_string(),
            c.warm.seeds_pruned.to_string(),
            if c.same_tree { "yes".into() } else { "NO".into() },
        ]);
    }
    format!("bench-perf — IRA solver trajectory (warm LP + cut-pool engine)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_serializes() {
        // The ladder alone: the storm rung has its own tests in
        // `serve_storm` and a small dedicated check below.
        let cases = run_cases(&Config::smoke());
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "dfl-16");
        assert_eq!(cases[1].name, "rand-20");
        for c in &cases {
            assert!(c.warm.wall_ms > 0.0);
            assert!(c.warm.lp_solves >= 1);
            assert!(c.warm.pivots > 0);
            assert!(c.warm.lp_ms > 0.0, "registry-backed LP stage timing is populated");
            assert!(c.warm.lp_ms <= c.warm.wall_ms, "a stage cannot exceed the whole");
            assert!(c.cold.is_some(), "smoke rungs are all below cold_up_to");
            assert!(c.single.is_some(), "smoke rungs are all below single_up_to");
            assert!(c.same_tree, "{}: all paths must decode the same tree", c.name);
            let single = c.single.unwrap();
            assert!(single.cut_rounds >= c.warm.cut_rounds, "batching cannot add rounds");
            assert_eq!(single.pool_hits, 0, "the baseline never consults the pool");
        }
        let storm = crate::serve_storm::run(&crate::serve_storm::Config {
            requests: 20,
            distinct: 2,
            n: 16,
            ..crate::serve_storm::Config::fast()
        });
        let results = BenchResults { cases, storm };
        let json = to_json(&results, true);
        assert!(json.contains("\"suite\": \"bench-perf\""));
        assert!(json.contains("\"schema_version\": 4"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"storm\": {\"requests\": 20"));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"no_leaked_workers\": true"));
        assert!(json.contains("\"name\": \"dfl-16\""));
        assert!(json.contains("\"pivots\""));
        assert!(json.contains("\"lp_ms\""));
        assert!(json.contains("\"decode_ms\""));
        assert!(json.contains("\"cold_fallbacks\""));
        assert!(json.contains("\"pool_hits\""));
        assert!(json.contains("\"cuts_batched\""));
        assert!(json.contains("\"seeds_pruned\""));
        assert!(json.contains("\"single_speedup\""));
        assert!(json.contains("\"round_ratio\""));
        assert!(json.contains("\"same_tree\": true"));
        // Valid JSON shape, end to end (the hand-rolled writer has no
        // serializer to lean on).
        assert!(wsn_obs::json::parse(&json).is_ok(), "BENCH json must parse:\n{json}");
        let table = render(&results);
        assert!(table.contains("1-cut"));
        assert!(table.contains("pool hits"));
        assert!(table.contains("p99 fresh-solve latency"));
    }

    #[test]
    fn counters_are_deterministic() {
        let a = run_cases(&Config::smoke());
        let b = run_cases(&Config::smoke());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.m, y.m);
            assert_eq!(x.warm.lp_solves, y.warm.lp_solves);
            assert_eq!(x.warm.pivots, y.warm.pivots);
            assert_eq!(x.warm.cut_rounds, y.warm.cut_rounds);
            assert_eq!(x.warm.pool_hits, y.warm.pool_hits);
            assert_eq!(x.warm.pool_scans, y.warm.pool_scans);
            assert_eq!(x.warm.cuts_batched, y.warm.cuts_batched);
            assert_eq!(x.warm.seeds_pruned, y.warm.seeds_pruned);
        }
    }
}

//! Fig. 7 — the DFL system comparison: cost and reliability of AAML, MST,
//! and IRA at `LC ∈ {1, 1.5, 2, 2.5}·L_AAML`.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at, paper_cost};
use wsn_model::{lifetime, reliability, EnergyModel};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Trace seed (the deployment's beacon phase).
    pub seed: u64,
    /// Lifetime multipliers relative to `L_AAML`.
    pub lc_multipliers: [f64; 4],
}

impl Default for Config {
    fn default() -> Self {
        Config { seed: 2015, lc_multipliers: [1.0, 1.5, 2.0, 2.5] }
    }
}

impl Config {
    /// Same workload — the DFL instance is already small.
    pub fn fast() -> Self {
        Config::default()
    }
}

/// One bar pair of the figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scheme label ("AAML", "MST", "IRA@1.0", …).
    pub scheme: String,
    /// Cost in paper units.
    pub cost: f64,
    /// Reliability `Q(T)`.
    pub reliability: f64,
    /// Lifetime in rounds.
    pub lifetime: f64,
}

/// Runs the DFL comparison.
pub fn run(config: &Config) -> Vec<Row> {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), config.seed)
        .expect("the DFL deployment is connected");
    let model = EnergyModel::PAPER;
    let mut rows = Vec::new();

    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs on the DFL trace");
    rows.push(Row {
        scheme: "AAML".into(),
        cost: paper_cost(&net, &aaml.tree),
        reliability: reliability::tree_reliability(&net, &aaml.tree),
        lifetime: aaml.lifetime,
    });

    let mst = wsn_baselines::mst(&net).expect("connected");
    rows.push(Row {
        scheme: "MST".into(),
        cost: paper_cost(&net, &mst),
        reliability: reliability::tree_reliability(&net, &mst),
        lifetime: lifetime::network_lifetime(&net, &mst, &model),
    });

    for &m in &config.lc_multipliers {
        let lc = aaml.lifetime * m;
        match ira_at(&net, model, lc) {
            Ok(sol) => rows.push(Row {
                scheme: format!("IRA@{m:.1}xL_AAML"),
                cost: paper_cost(&net, &sol.tree),
                reliability: sol.reliability,
                lifetime: sol.lifetime,
            }),
            Err(_) => {
                // The paper's behaviour past the feasibility frontier:
                // "achieve the optimal reliability by a little violation of
                // lifetime" — the returned tree collapses to the MST
                // optimum (its Fig. 7 shows IRA@2·L_AAML == MST).
                rows.push(Row {
                    scheme: format!("IRA@{m:.1}xL_AAML (LC unachievable -> MST)"),
                    cost: paper_cost(&net, &mst),
                    reliability: reliability::tree_reliability(&net, &mst),
                    lifetime: lifetime::network_lifetime(&net, &mst, &model),
                });
            }
        }
    }
    rows
}

/// Renders the figure's bars.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["scheme", "cost", "reliability", "lifetime (rounds)"]);
    for r in rows {
        t.push([r.scheme.clone(), f(r.cost, 1), f(r.reliability, 3), f(r.lifetime, 0)]);
    }
    format!("Fig. 7 — performance in the DFL system\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(rows: &'a [Row], prefix: &str) -> &'a Row {
        rows.iter().find(|r| r.scheme.starts_with(prefix)).unwrap()
    }

    #[test]
    fn paper_relationships_hold() {
        let rows = run(&Config::default());
        let aaml = by(&rows, "AAML");
        let mst = by(&rows, "MST");
        let ira1 = by(&rows, "IRA@1.0");

        // MST is the cost floor; AAML pays heavily for ignoring quality.
        assert!(mst.cost <= ira1.cost + 1e-6);
        assert!(aaml.cost > 2.0 * ira1.cost, "AAML {} vs IRA {}", aaml.cost, ira1.cost);
        // IRA at LC1 matches (or nearly matches) AAML's lifetime with far
        // better reliability.
        assert!(ira1.reliability > aaml.reliability);
        assert!(ira1.lifetime >= aaml.lifetime * 0.75);
        // Relaxing the lifetime bound moves IRA's cost toward MST, and at
        // the loosest bound IRA essentially reaches the MST optimum.
        let costs: Vec<f64> = rows
            .iter()
            .filter(|r| r.scheme.starts_with("IRA") && r.cost.is_finite())
            .map(|r| r.cost)
            .collect();
        assert!(costs.len() >= 2, "at least two feasible IRA points");
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "IRA cost must be non-increasing in LC relaxation");
        }
        // MST lifetime is worse than AAML's (it ignores load balance).
        assert!(mst.lifetime < aaml.lifetime);
    }

    #[test]
    fn render_contains_all_schemes() {
        let text = render(&run(&Config::default()));
        for s in ["AAML", "MST", "IRA@1.0", "IRA@2.5"] {
            assert!(text.contains(s), "missing {s} in output");
        }
    }
}

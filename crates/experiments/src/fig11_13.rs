//! Figs. 11–13 — the distributed protocol under link dynamics on the DFL
//! system: cost (11), reliability (12), and message complexity (13) of the
//! distributed updates vs. re-running centralized IRA each round.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use wsn_model::EnergyModel;
use wsn_proto::{run_link_dynamics, DynamicsConfig, DynamicsRecord};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Degradation rounds (paper: 100).
    pub rounds: usize,
    /// Per-event raw `−log₂ q` cost increase (paper: `10⁻³`).
    pub cost_step: f64,
    /// DFL trace seed.
    pub trace_seed: u64,
    /// Degradation sequence seed.
    pub dynamics_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { rounds: 100, cost_step: 1e-3, trace_seed: 2015, dynamics_seed: 7 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { rounds: 15, ..Config::default() }
    }
}

/// Runs the experiment: IRA builds the initial tree, the distributed
/// protocol repairs locally, centralized IRA re-solves each round on the
/// degraded network.
pub fn run(config: &Config) -> Vec<DynamicsRecord> {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), config.trace_seed)
        .expect("DFL deployment is connected");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    // The paper's dynamics start from its LC2 tree (initial cost 58), i.e.
    // a bound with child headroom. On the DFL perimeter AAML attains the
    // absolute lifetime optimum (a Hamiltonian path), where *no* node may
    // accept another child and the protocol would be frozen; 70% of it
    // allows up to two children per node, matching the paper's regime.
    let lc = aaml.lifetime * 0.7;
    let initial = ira_at(&net, model, lc).expect("initial IRA tree");
    let dyn_cfg = DynamicsConfig {
        rounds: config.rounds,
        cost_step: config.cost_step,
        seed: config.dynamics_seed,
        lc,
    };
    run_link_dynamics(&net, &initial.tree, model, &dyn_cfg, move |n| {
        ira_at(n, model, lc).ok().map(|s| s.tree)
    })
}

/// Renders Fig. 11 (cost over rounds).
pub fn render_fig11(records: &[DynamicsRecord]) -> String {
    let mut t = Table::new(["round", "distributed cost", "centralized (IRA) cost"]);
    for r in records {
        t.push([r.round.to_string(), f(r.distributed_cost, 1), f(r.centralized_cost, 1)]);
    }
    format!("Fig. 11 — cost of the distributed protocol vs. centralized IRA\n{}", t.render())
}

/// Renders Fig. 12 (reliability over rounds).
pub fn render_fig12(records: &[DynamicsRecord]) -> String {
    let mut t = Table::new(["round", "distributed reliability", "centralized reliability"]);
    for r in records {
        t.push([
            r.round.to_string(),
            f(r.distributed_reliability, 4),
            f(r.centralized_reliability, 4),
        ]);
    }
    format!("Fig. 12 — reliability, distributed vs. centralized\n{}", t.render())
}

/// Renders Fig. 13 (message complexity).
pub fn render_fig13(records: &[DynamicsRecord]) -> String {
    let mut t = Table::new(["round", "messages", "total messages", "avg per update"]);
    let mut updates = 0usize;
    for r in records {
        if r.messages > 0 {
            updates += 1;
        }
        let avg = if updates > 0 { r.total_messages as f64 / updates as f64 } else { 0.0 };
        t.push([
            r.round.to_string(),
            r.messages.to_string(),
            r.total_messages.to_string(),
            f(avg, 2),
        ]);
    }
    format!("Fig. 13 — message complexity of the distributed protocol\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relationships_hold() {
        let records = run(&Config { rounds: 40, ..Config::default() });
        assert_eq!(records.len(), 41);
        let first = &records[0];
        let last = &records[40];
        // Both start from the same (IRA) tree.
        assert!((first.distributed_cost - first.centralized_cost).abs() < 1e-9);
        // Centralized never loses to the local repair (Fig. 11's gap).
        for r in &records {
            assert!(r.centralized_cost <= r.distributed_cost + 1e-6, "round {}", r.round);
        }
        // Reliability decays as links degrade (Fig. 12).
        assert!(last.distributed_reliability <= first.distributed_reliability);
        assert!(last.centralized_reliability <= first.centralized_reliability);
        // The distributed tree stays close to centralized: the paper reports
        // a cost gap around 25 units and a reliability gap ≤ 0.02.
        let max_rel_gap = records
            .iter()
            .map(|r| r.centralized_reliability - r.distributed_reliability)
            .fold(0.0, f64::max);
        assert!(max_rel_gap <= 0.05, "reliability gap {max_rel_gap}");
        // Message budget per update stays bounded by n = 16 (Fig. 13 reports
        // ~10 on average; the exact walk length depends on the RNG stream).
        for r in &records {
            assert!(r.messages <= 16, "round {} spent {} messages", r.round, r.messages);
        }
    }

    #[test]
    fn renders_have_one_row_per_round() {
        let records = run(&Config::fast());
        for text in [render_fig11(&records), render_fig12(&records), render_fig13(&records)] {
            assert_eq!(text.lines().count(), records.len() + 3);
        }
    }
}

//! Fig. 8 — random graphs with equal initial energy: per-instance cost of
//! AAML, IRA (at `LC = L_AAML`), and MST.

use crate::parallel::parallel_map;
use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at, paper_cost};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::EnergyModel;
use wsn_proto::{DistributedNetwork, FaultPlan, LossyChannel, RetryPolicy};
use wsn_testbed::{random_graph, EnergyDistribution, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Instances (paper: 100).
    pub instances: usize,
    /// Nodes per instance (paper: 16).
    pub n: usize,
    /// Link probability (paper: 0.7).
    pub link_probability: f64,
    /// Energy assignment.
    pub energy: EnergyDistribution,
    /// Base seed; instance `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            instances: 100,
            n: 16,
            link_probability: 0.7,
            energy: EnergyDistribution::Uniform(3000.0),
            base_seed: 800,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { instances: 8, ..Config::default() }
    }
}

/// Per-instance costs (paper units).
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Instance index.
    pub instance: usize,
    /// AAML tree cost.
    pub aaml_cost: f64,
    /// IRA tree cost at `LC = L_AAML`.
    pub ira_cost: f64,
    /// MST cost (the lower bound).
    pub mst_cost: f64,
    /// Whether IRA met `L_AAML` without the LC fallback.
    pub ira_strict: bool,
    /// Simplex pivots spent by IRA's final cutting-plane solve.
    pub pivots: usize,
    /// Cutting-plane rounds of that solve.
    pub cut_rounds: usize,
    /// Separation-oracle time of that solve, milliseconds.
    pub sep_ms: f64,
}

/// Runs the sweep. Instances run in parallel — unless an observability
/// collector is installed on this thread ([`wsn_obs::install`]), in which
/// case they run serially so spans nest deterministically in one trace,
/// and each instance additionally replays its IRA tree through the
/// distributed protocol (a lossless announce) so the trace covers the
/// whole pipeline: LP, separation, decode, and protocol rounds.
pub fn run(config: &Config) -> Vec<Row> {
    let cfg = *config;
    if wsn_obs::current().is_some() {
        return (0..cfg.instances).map(|i| run_instance(&cfg, i, true)).collect();
    }
    parallel_map(cfg.instances, move |i| run_instance(&cfg, i, false))
}

fn run_instance(cfg: &Config, i: usize, replay_protocol: bool) -> Row {
    let _span = wsn_obs::span_with("fig8-instance", vec![wsn_obs::field("instance", i)]);
    let mut rng = StdRng::seed_from_u64(cfg.base_seed + i as u64);
    let gcfg = RandomGraphConfig {
        n: cfg.n,
        link_probability: cfg.link_probability,
        energy: cfg.energy,
        ..RandomGraphConfig::default()
    };
    let net = random_graph(&gcfg, &mut rng).expect("connected instance");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    let mst = wsn_baselines::mst(&net).expect("connected");
    let ira = ira_at(&net, model, aaml.lifetime).expect("LC = L_AAML is feasible at LC");
    if replay_protocol {
        // Disseminate the tree the solver just built: one reliable announce
        // over a lossless channel. Deterministic (seeded, loss-free), and
        // it exercises the protocol counters/spans under `--trace`.
        let mut dn = DistributedNetwork::new(cfg.n);
        let mut ch = LossyChannel::new(FaultPlan::lossless());
        dn.announce_lossy(&ira.tree, &mut ch, &RetryPolicy::default())
            .expect("lossless announce succeeds");
    }
    Row {
        instance: i,
        aaml_cost: paper_cost(&net, &aaml.tree),
        ira_cost: paper_cost(&net, &ira.tree),
        mst_cost: paper_cost(&net, &mst),
        ira_strict: !ira.stats.relaxed_to_lc,
        pivots: ira.stats.pivots,
        cut_rounds: ira.stats.cut_rounds,
        sep_ms: ira.stats.sep_ms,
    }
}

/// Renders the per-instance series plus a summary block.
pub fn render(rows: &[Row], title: &str) -> String {
    let mut t = Table::new(["instance", "AAML", "IRA", "MST"]);
    for r in rows {
        t.push([r.instance.to_string(), f(r.aaml_cost, 1), f(r.ira_cost, 1), f(r.mst_cost, 1)]);
    }
    let mean = |sel: fn(&Row) -> f64| -> f64 {
        rows.iter().map(sel).sum::<f64>() / rows.len().max(1) as f64
    };
    // Only deterministic counters are rendered (`sep_ms` stays a
    // programmatic field): figure output must be byte-identical across runs.
    format!(
        "{title}\n{}\nmeans: AAML {:.1}  IRA {:.1}  MST {:.1}  (IRA/AAML = {:.2})\n\
         solver: mean pivots {:.0}  cut rounds {:.1} per instance\n",
        t.render(),
        mean(|r| r.aaml_cost),
        mean(|r| r.ira_cost),
        mean(|r| r.mst_cost),
        mean(|r| r.ira_cost) / mean(|r| r.aaml_cost),
        mean(|r| r.pivots as f64),
        mean(|r| r.cut_rounds as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relationships_hold_on_sample() {
        let rows = run(&Config { instances: 12, ..Config::default() });
        assert_eq!(rows.len(), 12);
        let mean_aaml: f64 = rows.iter().map(|r| r.aaml_cost).sum::<f64>() / 12.0;
        let mean_ira: f64 = rows.iter().map(|r| r.ira_cost).sum::<f64>() / 12.0;
        let mean_mst: f64 = rows.iter().map(|r| r.mst_cost).sum::<f64>() / 12.0;
        // Per instance: MST ≤ IRA (cost floor).
        for r in &rows {
            assert!(r.mst_cost <= r.ira_cost + 1e-6, "instance {}", r.instance);
        }
        // On average: IRA well below AAML (paper: ≈30%), and close to MST.
        assert!(mean_ira < 0.6 * mean_aaml, "IRA mean {mean_ira} vs AAML mean {mean_aaml}");
        assert!(mean_ira < mean_mst * 2.0 + 20.0, "IRA should hug the MST bound");
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = Config { instances: 4, ..Config::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.aaml_cost, y.aaml_cost);
            assert_eq!(x.ira_cost, y.ira_cost);
        }
    }

    #[test]
    fn render_summarizes() {
        let rows = run(&Config::fast());
        let text = render(&rows, "Fig. 8");
        assert!(text.contains("means:"));
        assert!(text.contains("IRA/AAML"));
        assert!(text.contains("solver: mean pivots"));
    }
}

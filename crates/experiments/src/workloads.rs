//! Shared workload builders for the §VII experiments.

use mrlc_core::{solve_ira, IraConfig, IraSolution, MrlcInstance};
use wsn_baselines::{aaml_tree, AamlConfig, AamlResult};
use wsn_model::{EnergyModel, ModelError, Network, PaperCost};

/// The paper's AAML evaluation protocol: filter out links with `q < 0.95`
/// ("As AAML does not take link quality under consideration, we ignore
/// unreliable links with the packet reception ratio lower than 0.95"),
/// then run AAML from the BFS tree. Falls back to the unfiltered network if
/// the filter disconnects it.
pub fn aaml_paper_protocol(net: &Network, model: &EnergyModel) -> Result<AamlResult, ModelError> {
    let working = net.restrict_edges(|l| l.prr().value() >= 0.95).unwrap_or_else(|_| net.clone());
    aaml_tree(&working, model, None, &AamlConfig::default())
}

/// IRA at a given lifetime bound with default configuration.
pub fn ira_at(net: &Network, model: EnergyModel, lc: f64) -> Result<IraSolution, String> {
    let inst = MrlcInstance::new(net.clone(), model, lc).map_err(|e| e.to_string())?;
    solve_ira(&inst, &IraConfig::default()).map_err(|e| e.to_string())
}

/// Paper-unit cost of a tree in `net`.
pub fn paper_cost(net: &Network, tree: &wsn_model::AggregationTree) -> f64 {
    PaperCost::of_tree(net, tree).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    #[test]
    fn aaml_protocol_filters_weak_links() {
        // A network where a weak shortcut would tempt AAML's tree shapes.
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(1, 2, 0.99).unwrap();
        b.add_edge(2, 3, 0.99).unwrap();
        b.add_edge(0, 3, 0.50).unwrap(); // filtered out
        let net = b.build().unwrap();
        let res = aaml_paper_protocol(&net, &EnergyModel::PAPER).unwrap();
        // The weak link cannot appear in the tree.
        assert!(!res.tree.contains_edge(wsn_model::NodeId::new(0), wsn_model::NodeId::new(3)));
    }

    #[test]
    fn aaml_protocol_survives_disconnecting_filter() {
        // Filtering q ≥ 0.95 would cut node 3 off entirely; the fallback
        // must keep the run alive.
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(1, 2, 0.99).unwrap();
        b.add_edge(2, 3, 0.80).unwrap();
        let net = b.build().unwrap();
        let res = aaml_paper_protocol(&net, &EnergyModel::PAPER).unwrap();
        assert_eq!(res.tree.n(), 4);
    }

    #[test]
    fn ira_at_reports_errors_as_strings() {
        let mut b = NetworkBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        let net = b.build().unwrap();
        let err = ira_at(&net, EnergyModel::PAPER, f64::INFINITY).unwrap_err();
        assert!(!err.is_empty());
    }
}

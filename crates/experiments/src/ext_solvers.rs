//! Extension: three ways to solve MRLC, head to head.
//!
//! * **IRA** — the paper's LP-based iterative relaxation;
//! * **Lagrangian** — subgradient dual ascent with MST oracles and greedy
//!   cap repair (the classical OR approach to degree-bounded trees);
//! * **Exact** — branch-and-bound ground truth.
//!
//! Beyond solution quality, the Lagrangian dual and the exact optimum
//! bracket IRA from below, exposing how much of the LP machinery the
//! problem actually needs.

use crate::parallel::parallel_map;
use crate::table::{f, Table};
use mrlc_core::{
    lagrangian_dbmst, solve_exact, solve_ira, ExactConfig, ExactOutcome, IraConfig,
    LagrangianConfig, MrlcInstance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{lifetime, EnergyModel, PaperCost};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Instances.
    pub instances: usize,
    /// Nodes per instance.
    pub n: usize,
    /// Children bound defining LC.
    pub children_at_lc: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { instances: 25, n: 12, children_at_lc: 3, base_seed: 7300 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { instances: 6, n: 10, ..Config::default() }
    }
}

/// Per-instance costs in paper units (NaN where a solver produced nothing).
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Instance index.
    pub instance: usize,
    /// IRA cost.
    pub ira: f64,
    /// Lagrangian incumbent cost.
    pub lagrangian: f64,
    /// Lagrangian dual lower bound.
    pub dual_bound: f64,
    /// Exact optimum.
    pub exact: f64,
}

/// Runs the comparison.
pub fn run(config: &Config) -> Vec<Row> {
    let cfg = *config;
    parallel_map(cfg.instances, move |i| {
        let mut rng = StdRng::seed_from_u64(cfg.base_seed + i as u64);
        let gcfg =
            RandomGraphConfig { n: cfg.n, link_probability: 0.5, ..RandomGraphConfig::default() };
        let net = random_graph(&gcfg, &mut rng).expect("connected instance");
        let model = EnergyModel::PAPER;
        let lc =
            lifetime::node_lifetime(net.min_initial_energy(), &model, cfg.children_at_lc) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();

        let ira = solve_ira(&inst, &IraConfig::default())
            .map(|s| PaperCost::from_nat(s.cost).0)
            .unwrap_or(f64::NAN);
        let lag = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        let exact = match solve_exact(&inst, &ExactConfig::default()) {
            ExactOutcome::Optimal { cost, .. } => PaperCost::from_nat(cost).0,
            _ => f64::NAN,
        };
        Row {
            instance: i,
            ira,
            lagrangian: if lag.best_tree.is_some() {
                PaperCost::from_nat(lag.best_cost).0
            } else {
                f64::NAN
            },
            dual_bound: PaperCost::from_nat(lag.lower_bound).0,
            exact,
        }
    })
}

/// Renders the comparison with aggregate quality figures.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["instance", "IRA", "Lagrangian", "dual bound", "exact OPT"]);
    for r in rows {
        t.push([
            r.instance.to_string(),
            f(r.ira, 2),
            f(r.lagrangian, 2),
            f(r.dual_bound, 2),
            f(r.exact, 2),
        ]);
    }
    let closed: Vec<&Row> = rows
        .iter()
        .filter(|r| r.exact.is_finite() && r.ira.is_finite() && r.lagrangian.is_finite())
        .collect();
    let mean =
        |sel: fn(&&Row) -> f64| closed.iter().map(sel).sum::<f64>() / closed.len().max(1) as f64;
    format!(
        "Extension — solver comparison (IRA vs. Lagrangian vs. exact)\n{}\n\
         over {} fully-solved instances: IRA/OPT = {:.4}, Lagrangian/OPT = {:.4}, dual/OPT = {:.4}\n",
        t.render(),
        closed.len(),
        mean(|r| r.ira) / mean(|r| r.exact),
        mean(|r| r.lagrangian) / mean(|r| r.exact),
        mean(|r| r.dual_bound) / mean(|r| r.exact),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_holds_on_every_instance() {
        let rows = run(&Config::fast());
        for r in &rows {
            if r.exact.is_finite() {
                if r.dual_bound.is_finite() {
                    assert!(
                        r.dual_bound <= r.exact + 1e-6,
                        "instance {}: dual {} above OPT {}",
                        r.instance,
                        r.dual_bound,
                        r.exact
                    );
                }
                for (name, v) in [("IRA", r.ira), ("Lagrangian", r.lagrangian)] {
                    if v.is_finite() {
                        assert!(
                            v >= r.exact - 1e-6,
                            "instance {}: {name} {} beat OPT {}",
                            r.instance,
                            v,
                            r.exact
                        );
                    }
                }
            }
        }
        // Both heuristics should solve most instances.
        let ira_ok = rows.iter().filter(|r| r.ira.is_finite()).count();
        let lag_ok = rows.iter().filter(|r| r.lagrangian.is_finite()).count();
        assert!(ira_ok >= 5, "IRA solved only {ira_ok}/6");
        assert!(lag_ok >= 4, "Lagrangian solved only {lag_ok}/6");
    }

    #[test]
    fn render_reports_ratios() {
        let text = render(&run(&Config { instances: 3, ..Config::fast() }));
        assert!(text.contains("IRA/OPT"));
        assert!(text.contains("dual/OPT"));
    }
}

//! Extension: the full lifetime–reliability Pareto frontier (the paper
//! samples only four LC values in Fig. 7).

use crate::table::{f, Table};
use mrlc_core::{dominant_points, pareto_frontier, ParetoPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{EnergyModel, Network};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, random_graph, DflConfig, RandomGraphConfig};

/// Which scenario to sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The 16-node DFL deployment.
    Dfl,
    /// A random `G(16, 0.7)` instance.
    Random,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Scenario.
    pub scenario: Scenario,
    /// RNG/trace seed.
    pub seed: u64,
    /// Points budget for the sweep.
    pub max_points: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { scenario: Scenario::Dfl, seed: 2015, max_points: 16 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { max_points: 6, ..Config::default() }
    }
}

fn build_network(config: &Config) -> Network {
    match config.scenario {
        Scenario::Dfl => dfl_network(&DflConfig::default(), &LinkModel::default(), config.seed)
            .expect("DFL deployment"),
        Scenario::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            random_graph(&RandomGraphConfig::default(), &mut rng).expect("connected sample")
        }
    }
}

/// Sweeps the frontier and returns `(all points, dominant subset)`.
pub fn run(config: &Config) -> (Vec<ParetoPoint>, Vec<ParetoPoint>) {
    let net = build_network(config);
    let pts = pareto_frontier(&net, EnergyModel::PAPER, config.max_points)
        .expect("sweep must not hit solver failures");
    let kept = dominant_points(&pts);
    (pts, kept)
}

/// Renders both the raw sweep and the dominant staircase.
pub fn render(all: &[ParetoPoint], dominant: &[ParetoPoint]) -> String {
    let mut t =
        Table::new(["LC (rounds)", "lifetime", "cost", "reliability", "strict", "dominant"]);
    for p in all {
        let is_dominant =
            dominant.iter().any(|q| (q.lc - p.lc).abs() < 1e-6 && (q.cost - p.cost).abs() < 1e-9);
        t.push([
            format!("{:.3e}", p.lc),
            format!("{:.3e}", p.lifetime),
            f(p.cost, 1),
            f(p.reliability, 4),
            p.strict.to_string(),
            if is_dominant { "*".to_string() } else { String::new() },
        ]);
    }
    format!(
        "Extension — lifetime/reliability Pareto frontier ({} points, {} dominant)\n{}",
        all.len(),
        dominant.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfl_frontier_has_a_real_tradeoff() {
        let (all, dominant) = run(&Config::default());
        assert!(all.len() >= 3, "{} points", all.len());
        assert!(dominant.len() >= 2);
        let cheapest = &dominant[0];
        let longest = dominant.last().unwrap();
        assert!(longest.lifetime > cheapest.lifetime);
        assert!(longest.cost >= cheapest.cost);
    }

    #[test]
    fn random_scenario_also_works() {
        let (all, dominant) = run(&Config { scenario: Scenario::Random, seed: 4, max_points: 8 });
        assert!(!all.is_empty());
        assert!(!dominant.is_empty());
        let text = render(&all, &dominant);
        assert!(text.contains("Pareto"));
        assert!(text.contains('*'));
    }
}

//! Extension: the deadline-bounded resilient solve pipeline.
//!
//! The paper's solver assumes unlimited time and clean arithmetic. This
//! table drives [`mrlc_core::solve_resilient`] through everything the
//! budget layer and the solver-fault injector can throw at it — wall-clock
//! expiry, a starved round cap, and all four injected fault classes — and
//! reports which rung of the degradation ladder answered, the certified
//! gap, and whether the returned tree still meets `LC` (it always must).

use crate::table::{f, Table};
use mrlc_core::{solve_resilient, MrlcInstance, ResilienceConfig, SolveTier};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use wsn_lp::{FaultKind, SolveBudget, FAULT_KINDS};
use wsn_model::{lifetime, EnergyModel};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Wall deadline for the budget-expiry scenario.
    pub deadline: Duration,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { sizes: vec![40, 80], deadline: Duration::from_millis(2), base_seed: 6100 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { sizes: vec![16, 24], ..Config::default() }
    }
}

/// One scenario run on one instance.
#[derive(Clone, Debug)]
pub struct Row {
    /// Network size.
    pub n: usize,
    /// Scenario label (budget shape or injected fault).
    pub scenario: &'static str,
    /// Ladder rung that answered.
    pub tier: SolveTier,
    /// Certified relative gap.
    pub gap: f64,
    /// Natural-log cost of the returned tree.
    pub cost: f64,
    /// Whether the tree meets `LC` (must always hold).
    pub feasible: bool,
    /// Wall time spent.
    pub ms: f64,
}

/// One chaos scenario: a label, the budget to solve under, and the
/// faults to arm.
type Scenario = (&'static str, SolveBudget, Vec<(FaultKind, u64)>);

/// Budget/fault scenarios, in display order.
fn scenarios(config: &Config) -> Vec<Scenario> {
    let mut out = vec![
        ("unlimited", SolveBudget::unlimited(), vec![]),
        ("deadline", SolveBudget::wall(config.deadline), vec![]),
        ("rounds=1", SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() }, vec![]),
    ];
    for kind in FAULT_KINDS {
        let label = match kind {
            FaultKind::CorruptPivot => "corrupt_pivot",
            FaultKind::PerturbRhs => "perturb_rhs",
            FaultKind::OracleTimeout => "oracle_timeout",
            FaultKind::PoisonCut => "poison_cut",
        };
        out.push((label, SolveBudget::unlimited(), vec![(kind, 2)]));
    }
    out
}

/// Runs the sweep: one instance per size, every scenario against it.
pub fn run(config: &Config) -> Vec<Row> {
    let model = EnergyModel::PAPER;
    let mut rows = Vec::new();
    for &n in &config.sizes {
        let mut rng = StdRng::seed_from_u64(config.base_seed + n as u64);
        let net = random_graph(&RandomGraphConfig { n, ..RandomGraphConfig::default() }, &mut rng)
            .expect("connected instance");
        let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).expect("valid instance");
        for (scenario, budget, faults) in scenarios(config) {
            let rc = ResilienceConfig { faults, ..ResilienceConfig::default() };
            let t0 = Instant::now();
            let out = solve_resilient(&inst, &rc, budget)
                .unwrap_or_else(|e| panic!("{scenario} on n={n} must stay feasible: {e}"));
            rows.push(Row {
                n,
                scenario,
                tier: out.tier,
                gap: out.gap,
                cost: out.cost,
                feasible: inst.meets_lifetime(&out.tree),
                ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    rows
}

/// Renders the scenario table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["n", "scenario", "tier", "gap", "cost", "feasible", "ms"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            r.scenario.to_string(),
            r.tier.to_string(),
            f(r.gap, 4),
            f(r.cost, 4),
            if r.feasible { "yes" } else { "NO" }.to_string(),
            f(r.ms, 1),
        ]);
    }
    format!(
        "Ext. — resilient solve pipeline (degradation ladder under budgets and injected faults)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_stays_feasible_with_finite_gap() {
        let rows = run(&Config::fast());
        // 2 sizes × (3 budget shapes + 4 fault kinds).
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(r.feasible, "{} on n={} returned an infeasible tree", r.scenario, r.n);
            assert!(r.gap.is_finite() && r.gap >= 0.0, "{} gap {}", r.scenario, r.gap);
        }
    }

    #[test]
    fn unlimited_budget_closes_on_the_exact_tier() {
        let rows = run(&Config { sizes: vec![16], ..Config::fast() });
        let unlimited = rows.iter().find(|r| r.scenario == "unlimited").unwrap();
        assert_eq!(unlimited.tier, SolveTier::Exact);
        assert_eq!(unlimited.gap, 0.0);
    }

    #[test]
    fn render_has_one_line_per_row() {
        let rows = run(&Config { sizes: vec![16], ..Config::fast() });
        assert_eq!(render(&rows).lines().count(), rows.len() + 3);
    }
}

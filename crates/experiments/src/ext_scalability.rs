//! Extension: wall-clock scalability of the solvers.
//!
//! The paper never reports runtimes. This table shows how the
//! implementations scale with network size on `G(n, 0.7)` instances —
//! the criterion benches measure the same thing with statistical rigor;
//! this is the quick human-readable view.

use crate::table::{f, Table};
use mrlc_core::{
    lagrangian_dbmst, solve_exact, solve_ira, ExactConfig, ExactOutcome, IraConfig,
    LagrangianConfig, MrlcInstance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_baselines::{aaml_tree, AamlConfig};
use wsn_model::{lifetime, EnergyModel};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Instances averaged per size.
    pub repeats: usize,
    /// Largest size the exact solver attempts.
    pub exact_limit: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { sizes: vec![8, 12, 16, 24, 32], repeats: 3, exact_limit: 14, base_seed: 8400 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { sizes: vec![8, 12], repeats: 1, ..Config::default() }
    }
}

/// Mean runtimes (milliseconds) per size.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Network size.
    pub n: usize,
    /// AAML mean ms.
    pub aaml_ms: f64,
    /// IRA mean ms.
    pub ira_ms: f64,
    /// Lagrangian mean ms.
    pub lagrangian_ms: f64,
    /// Exact mean ms (NaN beyond `exact_limit`).
    pub exact_ms: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    config
        .sizes
        .iter()
        .map(|&n| {
            let mut acc = [0.0f64; 4];
            let mut exact_runs = 0usize;
            for r in 0..config.repeats {
                let mut rng = StdRng::seed_from_u64(config.base_seed + (n * 1000 + r) as u64);
                let net = random_graph(
                    &RandomGraphConfig { n, ..RandomGraphConfig::default() },
                    &mut rng,
                )
                .expect("connected instance");
                let model = EnergyModel::PAPER;
                let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
                let inst = MrlcInstance::new(net.clone(), model, lc).unwrap();

                let t0 = Instant::now();
                let _ = aaml_tree(&net, &model, None, &AamlConfig::default());
                acc[0] += t0.elapsed().as_secs_f64() * 1e3;

                let t0 = Instant::now();
                let _ = solve_ira(&inst, &IraConfig::default());
                acc[1] += t0.elapsed().as_secs_f64() * 1e3;

                let t0 = Instant::now();
                let _ = lagrangian_dbmst(&inst, &LagrangianConfig::default());
                acc[2] += t0.elapsed().as_secs_f64() * 1e3;

                if n <= config.exact_limit {
                    let t0 = Instant::now();
                    if let ExactOutcome::Optimal { .. } | ExactOutcome::Infeasible { .. } =
                        solve_exact(&inst, &ExactConfig::default())
                    {
                        acc[3] += t0.elapsed().as_secs_f64() * 1e3;
                        exact_runs += 1;
                    }
                }
            }
            let k = config.repeats as f64;
            Row {
                n,
                aaml_ms: acc[0] / k,
                ira_ms: acc[1] / k,
                lagrangian_ms: acc[2] / k,
                exact_ms: if exact_runs > 0 { acc[3] / exact_runs as f64 } else { f64::NAN },
            }
        })
        .collect()
}

/// Renders the runtime table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["n", "AAML (ms)", "IRA (ms)", "Lagrangian (ms)", "exact (ms)"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            f(r.aaml_ms, 2),
            f(r.ira_ms, 2),
            f(r.lagrangian_ms, 2),
            f(r.exact_ms, 2),
        ]);
    }
    format!("Extension — wall-clock scalability (means over repeats)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_solvers_complete_at_each_size() {
        let rows = run(&Config::fast());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.aaml_ms >= 0.0 && r.aaml_ms.is_finite());
            assert!(r.ira_ms > 0.0 && r.ira_ms.is_finite());
            assert!(r.lagrangian_ms > 0.0 && r.lagrangian_ms.is_finite());
            assert!(r.exact_ms.is_finite(), "exact within the limit at n = {}", r.n);
        }
    }

    #[test]
    fn render_is_one_row_per_size() {
        let cfg = Config::fast();
        assert_eq!(render(&run(&cfg)).lines().count(), cfg.sizes.len() + 3);
    }
}

//! `serve-storm` — throughput/latency benchmark of the solve-service
//! fleet under a concurrent request storm.
//!
//! Several client threads fire a seeded mix of requests at a
//! [`wsn_service::SolveService`]: a handful of distinct MRLC instances
//! submitted over and over (exercising the duplicate cache), a fraction
//! carrying tight deadlines (exercising admission shedding), and an
//! optional seeded worker-kill schedule (exercising supervisor recovery).
//! Every ticket must resolve to a typed outcome; the storm reports
//! end-to-end throughput and the latency distribution of the solved
//! requests (p50/p99/max), which `bench-perf` embeds as the `storm` block
//! of `BENCH_ira.json` and `bench-check` gates on.
//!
//! Wall-clock figures vary with the host; the hard invariants are
//! `all_typed` (no request ever hangs or vanishes) and
//! `no_leaked_workers` (the fleet joins every thread it spawned).

use crate::table::{f, Table};
use mrlc_core::MrlcInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use wsn_model::{lifetime, EnergyModel};
use wsn_service::{BlackBox, ChaosConfig, ServiceConfig, SolveRequest, SolveService};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Storm parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Total submissions across all clients.
    pub requests: usize,
    /// Distinct instances the mix cycles over (the rest are duplicates).
    pub distinct: usize,
    /// Node count per instance.
    pub n: usize,
    /// Random-graph link probability (denser for small `n`).
    pub link_probability: f64,
    /// Fleet worker threads.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Submitting client threads.
    pub clients: usize,
    /// Seed for instance generation and the service's backoff jitter.
    pub seed: u64,
    /// Every k-th request carries this deadline (`None` disables the mix).
    pub deadline_every: usize,
    /// The deadline those requests carry.
    pub deadline: Duration,
    /// Seeded chaos: panic every k-th dequeue fleet-wide.
    pub kill_every: Option<u64>,
}

impl Default for Config {
    /// The full rung: a 1000-request storm at n = 80.
    fn default() -> Self {
        Config {
            requests: 1000,
            distinct: 20,
            n: 80,
            link_probability: 0.3,
            workers: 4,
            queue_capacity: 1024,
            clients: 4,
            seed: 0x5702,
            deadline_every: 5,
            deadline: Duration::from_millis(2000),
            kill_every: None,
        }
    }
}

impl Config {
    /// CI-speed preset: fewer, smaller instances, same request shape.
    pub fn fast() -> Self {
        Config { requests: 150, distinct: 8, n: 40, link_probability: 0.5, ..Config::default() }
    }

    /// The chaos preset the CI `service-chaos-smoke` job drives: a
    /// seeded worker-kill schedule over full-size (n = 80) instances,
    /// with the request count trimmed to CI speed.
    pub fn chaos() -> Self {
        Config { kill_every: Some(11), requests: 150, distinct: 8, ..Config::default() }
    }
}

/// What the storm measured.
#[derive(Clone, Debug)]
pub struct StormStats {
    /// Requests submitted.
    pub requests: usize,
    /// Outcome tallies (these five partition `requests` when `all_typed`).
    pub solved: usize,
    pub shed: usize,
    pub quarantined: usize,
    pub parked: usize,
    pub infeasible: usize,
    /// Solved requests resolved at admission from the duplicate cache
    /// (`attempts == 0`); the remainder of `solved` ran on a worker.
    pub cached: usize,
    /// Fleet counters after the drain.
    pub cache_hits: u64,
    pub worker_restarts: u64,
    /// End-to-end storm wall time (first submit to last completion).
    pub wall_ms: f64,
    /// Completed requests per second of storm wall time.
    pub throughput_rps: f64,
    /// Latency distribution over the *fresh-solved* requests only — cache
    /// hits resolve in ~0 ms and would otherwise flatten p50 to zero.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Median latency of the cache-hit completions (≈0; kept separate so
    /// the fresh-solve quantiles above stay meaningful).
    pub cached_p50_ms: f64,
    /// Every submission resolved to a typed outcome (nothing hung).
    pub all_typed: bool,
    /// The drained fleet joined every worker it ever spawned.
    pub no_leaked_workers: bool,
    /// Black-box dumps the fleet cut at incidents (worker crashes under
    /// the chaos kill schedule, shed storms, ...).
    pub black_boxes: Vec<BlackBox>,
}

/// Builds the `distinct` seeded instances the mix cycles over.
fn instances(cfg: &Config) -> Vec<MrlcInstance> {
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    (0..cfg.distinct)
        .map(|i| {
            let gcfg = RandomGraphConfig {
                n: cfg.n,
                link_probability: cfg.link_probability,
                ..RandomGraphConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
            let net = random_graph(&gcfg, &mut rng).expect("connected storm instance");
            MrlcInstance::new(net, model, lc).expect("valid storm instance")
        })
        .collect()
}

/// Runs the storm and drains the fleet.
pub fn run(cfg: &Config) -> StormStats {
    let insts = instances(cfg);
    // The fleet publishes its counters to the collector installed on the
    // thread that starts it; a private one keeps the storm's tallies
    // (cache hits, restarts) separate from any ambient figure metrics.
    let obs = wsn_obs::Obs::detached();
    let _ambient = wsn_obs::install(obs.clone());
    let service = SolveService::start(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        seed: cfg.seed,
        chaos: ChaosConfig { kill_every: cfg.kill_every, ..ChaosConfig::default() },
        ..ServiceConfig::default()
    });

    let start = Instant::now();
    let per_client = cfg.requests.div_ceil(cfg.clients.max(1));
    let completions = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|c| {
                let service = &service;
                let insts = &insts;
                s.spawn(move |_| {
                    let mut done = Vec::new();
                    let first = c * per_client;
                    for j in first..(first + per_client).min(cfg.requests) {
                        let mut req = SolveRequest::new(insts[j % insts.len()].clone());
                        if cfg.deadline_every > 0 && j % cfg.deadline_every == 0 {
                            req.deadline = Some(cfg.deadline);
                        }
                        let ticket = service.submit(req);
                        // Generous bound: a hang here is the bug the storm
                        // exists to catch, not a tolerable slow solve.
                        done.push(ticket.wait_timeout(Duration::from_secs(300)));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
    })
    .expect("storm clients never panic");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let report = service.drain();
    let reg = obs.registry();
    let all_typed = completions.iter().all(Option::is_some);
    // A cache hit resolves at admission with `attempts == 0`; a fresh
    // solve ran on a worker (attempts >= 1). Quantiles over the combined
    // population flatten p50 to ~0 the moment hits dominate, so the two
    // latency populations are kept apart.
    let mut fresh_latencies: Vec<f64> = Vec::new();
    let mut cached_latencies: Vec<f64> = Vec::new();
    let (mut solved, mut shed, mut quarantined, mut parked, mut infeasible) = (0, 0, 0, 0, 0);
    for c in completions.iter().flatten() {
        match &c.outcome {
            wsn_service::ServiceOutcome::Solved(_) => {
                solved += 1;
                if c.attempts == 0 {
                    cached_latencies.push(c.latency_ms);
                } else {
                    fresh_latencies.push(c.latency_ms);
                }
            }
            wsn_service::ServiceOutcome::Shed(_) => shed += 1,
            wsn_service::ServiceOutcome::Quarantined { .. } => quarantined += 1,
            wsn_service::ServiceOutcome::Parked => parked += 1,
            wsn_service::ServiceOutcome::Infeasible { .. } => infeasible += 1,
        }
    }
    fresh_latencies.sort_by(|a, b| a.total_cmp(b));
    cached_latencies.sort_by(|a, b| a.total_cmp(b));
    let quantile = |lat: &[f64], q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    };

    StormStats {
        requests: cfg.requests,
        solved,
        shed,
        quarantined,
        parked,
        infeasible,
        cached: cached_latencies.len(),
        cache_hits: reg.counter("svc.cache_hits").get(),
        worker_restarts: reg.counter("svc.worker_restarts").get(),
        wall_ms,
        throughput_rps: cfg.requests as f64 / (wall_ms / 1e3).max(1e-9),
        p50_ms: quantile(&fresh_latencies, 0.50),
        p99_ms: quantile(&fresh_latencies, 0.99),
        max_ms: fresh_latencies.last().copied().unwrap_or(0.0),
        cached_p50_ms: quantile(&cached_latencies, 0.50),
        all_typed,
        no_leaked_workers: report.no_leaked_workers(),
        black_boxes: report.black_boxes,
    }
}

/// Serializes the stats as the `storm` block of `BENCH_ira.json`.
pub fn to_json(s: &StormStats) -> String {
    format!(
        "{{\"requests\": {}, \"solved\": {}, \"shed\": {}, \"quarantined\": {}, \
         \"parked\": {}, \"infeasible\": {}, \"cached\": {}, \"cache_hits\": {}, \
         \"worker_restarts\": {}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.2}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \"cached_p50_ms\": {:.3}, \
         \"black_boxes\": {}, \"all_typed\": {}, \"no_leaked_workers\": {}}}",
        s.requests,
        s.solved,
        s.shed,
        s.quarantined,
        s.parked,
        s.infeasible,
        s.cached,
        s.cache_hits,
        s.worker_restarts,
        s.wall_ms,
        s.throughput_rps,
        s.p50_ms,
        s.p99_ms,
        s.max_ms,
        s.cached_p50_ms,
        s.black_boxes.len(),
        s.all_typed,
        s.no_leaked_workers
    )
}

/// Renders the human-readable storm report.
pub fn render(s: &StormStats) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.push(["requests".into(), s.requests.to_string()]);
    t.push(["solved".into(), s.solved.to_string()]);
    t.push(["shed".into(), s.shed.to_string()]);
    t.push(["quarantined".into(), s.quarantined.to_string()]);
    t.push(["parked".into(), s.parked.to_string()]);
    t.push(["infeasible".into(), s.infeasible.to_string()]);
    t.push(["cached (admission)".into(), s.cached.to_string()]);
    t.push(["cache hits".into(), s.cache_hits.to_string()]);
    t.push(["worker restarts".into(), s.worker_restarts.to_string()]);
    t.push(["black boxes".into(), s.black_boxes.len().to_string()]);
    t.push(["wall (ms)".into(), f(s.wall_ms, 1)]);
    t.push(["throughput (req/s)".into(), f(s.throughput_rps, 1)]);
    t.push(["p50 fresh-solve latency (ms)".into(), f(s.p50_ms, 1)]);
    t.push(["p99 fresh-solve latency (ms)".into(), f(s.p99_ms, 1)]);
    t.push(["max fresh-solve latency (ms)".into(), f(s.max_ms, 1)]);
    t.push(["p50 cached latency (ms)".into(), f(s.cached_p50_ms, 1)]);
    let yesno = |b: bool| if b { "yes".to_string() } else { "NO".to_string() };
    t.push(["all typed".into(), yesno(s.all_typed)]);
    t.push(["no leaked workers".into(), yesno(s.no_leaked_workers)]);
    format!("serve-storm — solve-service fleet under concurrent load\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_storm_resolves_every_request() {
        let cfg = Config { requests: 40, distinct: 4, n: 16, ..Config::fast() };
        let stats = run(&cfg);
        assert!(stats.all_typed, "every submission must resolve to a typed outcome");
        assert!(stats.no_leaked_workers);
        assert_eq!(
            stats.solved + stats.shed + stats.quarantined + stats.parked + stats.infeasible,
            stats.requests,
            "outcome kinds partition the storm"
        );
        assert!(stats.solved > 0, "an un-chaosed storm solves most requests");
        assert!(stats.cached <= stats.solved, "cache hits are a subset of solved");
        assert!(stats.p99_ms >= stats.p50_ms);
        assert!(stats.max_ms >= stats.p99_ms);
        assert!(stats.p50_ms > 0.0, "fresh-solve p50 excludes the ~0 ms cache hits");
        assert!(stats.throughput_rps > 0.0);
        let json = to_json(&stats);
        assert!(json.contains("\"throughput_rps\""), "{json}");
        assert!(json.contains("\"cached_p50_ms\""), "{json}");
        assert!(json.contains("\"black_boxes\""), "{json}");
        assert!(json.contains("\"all_typed\": true"), "{json}");
        let table = render(&stats);
        assert!(table.contains("p99 fresh-solve latency"), "{table}");
        assert!(table.contains("p50 cached latency"), "{table}");
    }

    #[test]
    fn chaos_storm_still_types_every_outcome() {
        let cfg =
            Config { requests: 30, distinct: 3, n: 16, kill_every: Some(5), ..Config::fast() };
        let stats = run(&cfg);
        assert!(stats.all_typed);
        assert!(stats.no_leaked_workers);
        assert_eq!(
            stats.solved + stats.shed + stats.quarantined + stats.parked + stats.infeasible,
            stats.requests
        );
        assert!(
            stats.black_boxes.iter().any(|b| b.reason == "worker-crash"),
            "a seeded kill schedule must leave at least one black box"
        );
        for b in &stats.black_boxes {
            assert!(b.jsonl.starts_with("{\"type\":\"blackbox_header\""), "{}", b.jsonl);
        }
    }
}

//! Regenerates every figure of the MRLC evaluation (§VII) plus the
//! motivation and illustration figures (§III, §VI).
//!
//! Each `figN` module exposes a `Config` (with a `fast()` preset used by
//! the integration tests), a `run` function returning structured rows, and
//! a `render` helper that prints the same series the paper plots. The
//! binary `mrlc-experiments` dispatches on figure name:
//!
//! ```text
//! mrlc-experiments all            # every figure, paper-scale parameters
//! mrlc-experiments fig8 --fast    # one figure, reduced workload
//! ```
//!
//! Numbers will not match the paper exactly — the substrate is the
//! calibrated simulator described in DESIGN.md, not the authors' testbed —
//! but every qualitative relationship the paper reports is asserted by the
//! tests in these modules (and recorded in EXPERIMENTS.md).

pub mod ablation;
pub mod bench_check;
pub mod bench_perf;
pub mod ext_drift;
pub mod ext_faults;
pub mod ext_latency;
pub mod ext_optgap;
pub mod ext_pareto;
pub mod ext_resilience;
pub mod ext_scalability;
pub mod ext_solvers;
pub mod ext_spatial;
pub mod ext_stability;
pub mod fig1;
pub mod fig10;
pub mod fig11_13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs_report;
pub mod parallel;
pub mod serve_storm;
pub mod table;
pub mod workloads;

pub use table::Table;

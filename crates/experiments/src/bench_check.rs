//! `bench-check` — CI gate over two `BENCH_ira.json` files.
//!
//! Compares a freshly generated bench-perf run against the committed
//! baseline and fails on regressions:
//!
//! - **Deterministic counters** (`lp_solves`, `pivots`, `cut_rounds` of the
//!   warm engine path) are seeded and machine-independent, so any growth
//!   beyond 25% over the baseline is a hard failure — a real algorithmic
//!   regression, not noise.
//! - **Wall time** varies with the host, so it only warns — unless the
//!   current run is over 4× the baseline, which no shared-runner jitter
//!   explains. Cases whose baseline wall is under a few tens of
//!   milliseconds never fail on ratio alone: scheduler jitter can exceed
//!   4× of a ~1 ms case.
//! - **Answer identity**: every case must report `same_tree: true`.
//! - **Acceptance floor** (evaluated on the current file alone): every
//!   case at n ≥ 160 whose single-cut baseline ran must show the engine
//!   win the tentpole claims — ≥ 3× fewer cut rounds and ≥ 2× wall-clock
//!   speedup versus the single-cut path.
//! - **Storm rung** (schema 4): the current `storm` block's `all_typed`
//!   and `no_leaked_workers` invariants are hard failures — a request that
//!   hung or a worker thread that leaked is a service bug regardless of
//!   the host. Throughput and p99 compare against the baseline storm only
//!   when both ran the same request count (a smoke run against a full
//!   baseline skips with a note) and warn rather than fail, like wall
//!   time, unless the tail blows past the gross ratio.
//!
//! Cases present in only one file are reported but not failed, so the
//! ladder can grow without invalidating old baselines.

use wsn_obs::json::{parse, Json};

/// Growth in a deterministic counter beyond this ratio fails the check.
const COUNTER_TOLERANCE: f64 = 1.25;

/// Wall-clock growth beyond this ratio fails even on noisy runners.
const WALL_GROSS_RATIO: f64 = 4.0;

/// Below this baseline wall time the gross ratio never fails — a few
/// milliseconds of scheduler jitter on a shared runner can alone exceed
/// 4× of a ~1 ms case.
const WALL_NOISE_FLOOR_MS: f64 = 50.0;

/// Acceptance floor: engine cut rounds must beat single-cut by this factor
/// at n ≥ 160.
const MIN_ROUND_RATIO: f64 = 3.0;

/// Acceptance floor: engine wall time must beat single-cut by this factor
/// at n ≥ 160.
const MIN_SINGLE_SPEEDUP: f64 = 2.0;

/// Node count from which the acceptance floor applies.
const ACCEPTANCE_N: f64 = 160.0;

/// Outcome of the comparison.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Human-readable findings, one per line.
    pub lines: Vec<String>,
    /// Hard failures (non-empty fails the command).
    pub failures: Vec<String>,
}

impl CheckReport {
    /// True when no hard failure was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report, failures last.
    pub fn render(&self) -> String {
        let mut out = String::from("bench-check — current run vs committed baseline\n");
        for l in &self.lines {
            out.push_str("  ");
            out.push_str(l);
            out.push('\n');
        }
        if self.failures.is_empty() {
            out.push_str("PASS\n");
        } else {
            for f in &self.failures {
                out.push_str("FAIL: ");
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }
}

fn counter(case: &Json, path: &str, field: &str) -> Option<f64> {
    case.get(path)?.get(field)?.as_f64()
}

fn case_name(case: &Json) -> &str {
    case.get("name").and_then(Json::as_str).unwrap_or("?")
}

fn cases(doc: &Json) -> Vec<&Json> {
    doc.get("cases").and_then(Json::as_arr).map(|a| a.iter().collect()).unwrap_or_default()
}

/// Compares a current bench document against a baseline document.
pub fn check(baseline: &Json, current: &Json) -> CheckReport {
    let mut report = CheckReport { lines: Vec::new(), failures: Vec::new() };
    let base_cases = cases(baseline);
    let cur_cases = cases(current);
    if cur_cases.is_empty() {
        report.failures.push("current file has no cases".to_string());
        return report;
    }

    for cur in &cur_cases {
        let name = case_name(cur);
        let Some(base) = base_cases.iter().find(|b| case_name(b) == name) else {
            report.lines.push(format!("{name}: new case, no baseline (skipped)"));
            continue;
        };

        // Deterministic warm-path counters: hard gate.
        for field in ["lp_solves", "pivots", "cut_rounds"] {
            match (counter(base, "warm", field), counter(cur, "warm", field)) {
                (Some(b), Some(c)) if b > 0.0 && c > b * COUNTER_TOLERANCE => {
                    report.failures.push(format!(
                        "{name}: warm.{field} regressed {b:.0} -> {c:.0} \
                         (limit {:.0})",
                        b * COUNTER_TOLERANCE
                    ));
                }
                (Some(b), Some(c)) => {
                    report.lines.push(format!("{name}: warm.{field} {b:.0} -> {c:.0} ok"));
                }
                _ => {
                    report.lines.push(format!("{name}: warm.{field} missing (skipped)"));
                }
            }
        }

        // Wall clock: warn-only within the gross ratio.
        if let (Some(b), Some(c)) =
            (counter(base, "warm", "wall_ms"), counter(cur, "warm", "wall_ms"))
        {
            let ratio = if b > 0.0 { c / b } else { 1.0 };
            if ratio > WALL_GROSS_RATIO && b >= WALL_NOISE_FLOOR_MS {
                report
                    .failures
                    .push(format!("{name}: warm wall {b:.1} ms -> {c:.1} ms ({ratio:.1}x)"));
            } else if ratio > COUNTER_TOLERANCE {
                report.lines.push(format!(
                    "{name}: warm wall {b:.1} ms -> {c:.1} ms ({ratio:.1}x, warn only)"
                ));
            }
        }
    }

    check_storm(baseline, current, &mut report);

    // Answer identity and the acceptance floor — current file only.
    for cur in &cur_cases {
        let name = case_name(cur);
        if cur.get("same_tree") == Some(&Json::Bool(false)) {
            report.failures.push(format!("{name}: comparison paths decoded different trees"));
        }
        let n = cur.get("n").and_then(Json::as_f64).unwrap_or(0.0);
        if n < ACCEPTANCE_N || cur.get("single").is_none_or(|s| !s.is_obj()) {
            continue;
        }
        match cur.get("round_ratio").and_then(Json::as_f64) {
            Some(r) if r >= MIN_ROUND_RATIO => {
                report.lines.push(format!("{name}: round_ratio {r:.2} >= {MIN_ROUND_RATIO}"));
            }
            Some(r) => {
                report.failures.push(format!(
                    "{name}: round_ratio {r:.2} below acceptance floor {MIN_ROUND_RATIO}"
                ));
            }
            None => report.failures.push(format!("{name}: round_ratio missing")),
        }
        match cur.get("single_speedup").and_then(Json::as_f64) {
            Some(s) if s >= MIN_SINGLE_SPEEDUP => {
                report.lines.push(format!("{name}: single_speedup {s:.2} >= {MIN_SINGLE_SPEEDUP}"));
            }
            Some(s) => {
                report.failures.push(format!(
                    "{name}: single_speedup {s:.2} below acceptance floor {MIN_SINGLE_SPEEDUP}"
                ));
            }
            None => report.failures.push(format!("{name}: single_speedup missing")),
        }
    }

    report
}

/// Gates the schema-4 service-storm rung. The invariants (`all_typed`,
/// `no_leaked_workers`) are host-independent and fail hard; the
/// throughput/p99 trajectory is wall-clock-like and only warns, and only
/// compares when baseline and current ran the same number of requests.
fn check_storm(baseline: &Json, current: &Json, report: &mut CheckReport) {
    let Some(cur) = current.get("storm").filter(|s| s.is_obj()) else {
        report.lines.push("storm: no storm block in current file (skipped)".to_string());
        return;
    };
    for (field, what) in [
        ("all_typed", "a request resolved without a typed outcome"),
        ("no_leaked_workers", "the fleet leaked worker threads"),
    ] {
        match cur.get(field) {
            Some(&Json::Bool(true)) => report.lines.push(format!("storm: {field} ok")),
            _ => report.failures.push(format!("storm: {what}")),
        }
    }
    let Some(base) = baseline.get("storm").filter(|s| s.is_obj()) else {
        report.lines.push("storm: no baseline storm block (trajectory skipped)".to_string());
        return;
    };
    let requests = |doc: &Json| doc.get("requests").and_then(Json::as_f64).unwrap_or(0.0);
    if requests(base) != requests(cur) {
        report.lines.push(format!(
            "storm: request counts differ (baseline {:.0}, current {:.0}) — trajectory skipped",
            requests(base),
            requests(cur)
        ));
        return;
    }
    if let (Some(b), Some(c)) =
        (base.get("p99_ms").and_then(Json::as_f64), cur.get("p99_ms").and_then(Json::as_f64))
    {
        let ratio = if b > 0.0 { c / b } else { 1.0 };
        if ratio > WALL_GROSS_RATIO && b >= WALL_NOISE_FLOOR_MS {
            report.failures.push(format!("storm: p99 {b:.1} ms -> {c:.1} ms ({ratio:.1}x)"));
        } else if ratio > COUNTER_TOLERANCE {
            report
                .lines
                .push(format!("storm: p99 {b:.1} ms -> {c:.1} ms ({ratio:.1}x, warn only)"));
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("throughput_rps").and_then(Json::as_f64),
        cur.get("throughput_rps").and_then(Json::as_f64),
    ) {
        let ratio = if c > 0.0 { b / c } else { f64::INFINITY };
        if ratio > WALL_GROSS_RATIO {
            report
                .failures
                .push(format!("storm: throughput {b:.1} -> {c:.1} req/s ({ratio:.1}x slower)"));
        } else if ratio > COUNTER_TOLERANCE {
            report.lines.push(format!(
                "storm: throughput {b:.1} -> {c:.1} req/s ({ratio:.1}x slower, warn only)"
            ));
        }
    }
}

/// Reads both files, runs the comparison, and returns the rendered report
/// plus the pass verdict.
pub fn run(baseline_path: &str, current_path: &str) -> Result<(String, bool), String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let baseline =
        parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: invalid JSON: {e}"))?;
    let current =
        parse(&read(current_path)?).map_err(|e| format!("{current_path}: invalid JSON: {e}"))?;
    let report = check(&baseline, &current);
    Ok((report.render(), report.passed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cases: &str) -> Json {
        parse(&format!(
            "{{\"suite\": \"bench-perf\", \"schema_version\": 3, \"smoke\": false, \
             \"cases\": [{cases}]}}"
        ))
        .unwrap()
    }

    fn case(name: &str, n: usize, warm: (u64, u64, u64, f64), extra: &str) -> String {
        let (solves, pivots, rounds, wall) = warm;
        format!(
            "{{\"name\": \"{name}\", \"n\": {n}, \"m\": 100, \
             \"warm\": {{\"wall_ms\": {wall}, \"lp_solves\": {solves}, \"pivots\": {pivots}, \
             \"cut_rounds\": {rounds}}}, \"same_tree\": true{extra}}}"
        )
    }

    #[test]
    fn identical_runs_pass() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let report = check(&b, &b);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn counter_regression_fails() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&case("rand-20", 20, (5, 200, 6, 10.0), ""));
        let report = check(&b, &c);
        assert!(!report.passed());
        assert!(report.failures[0].contains("pivots"), "{:?}", report.failures);
    }

    #[test]
    fn counter_growth_within_tolerance_passes() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&case("rand-20", 20, (6, 120, 7, 10.0), ""));
        assert!(check(&b, &c).passed());
    }

    #[test]
    fn wall_clock_noise_warns_but_gross_blowup_fails() {
        let b = doc(&case("rand-80", 80, (5, 100, 6, 100.0), ""));
        let noisy = doc(&case("rand-80", 80, (5, 100, 6, 250.0), ""));
        let report = check(&b, &noisy);
        assert!(report.passed(), "2.5x wall is runner noise: {:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("warn only")));
        let gross = doc(&case("rand-80", 80, (5, 100, 6, 1000.0), ""));
        assert!(!check(&b, &gross).passed(), "10x wall cannot be noise");
    }

    #[test]
    fn tiny_baseline_walls_never_fail_on_ratio_alone() {
        // A ~1 ms case can blow past 4x from scheduler jitter alone; below
        // the noise floor the gross ratio downgrades to a warning.
        let b = doc(&case("dfl-16", 16, (2, 83, 2, 1.0), ""));
        let jittery = doc(&case("dfl-16", 16, (2, 83, 2, 9.0), ""));
        let report = check(&b, &jittery);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("warn only")));
    }

    #[test]
    fn new_cases_are_skipped_not_failed() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&format!(
            "{}, {}",
            case("rand-20", 20, (5, 100, 6, 10.0), ""),
            case("rand-40", 40, (9, 400, 12, 40.0), "")
        ));
        let report = check(&b, &c);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no baseline")));
    }

    #[test]
    fn acceptance_floor_applies_from_160() {
        let good = ", \"single\": {\"wall_ms\": 99.0, \"cut_rounds\": 60}, \
                    \"round_ratio\": 5.00, \"single_speedup\": 3.10";
        let b = doc(&case("rand-160", 160, (5, 100, 12, 30.0), good));
        assert!(check(&b, &b).passed());

        let weak = ", \"single\": {\"wall_ms\": 33.0, \"cut_rounds\": 14}, \
                    \"round_ratio\": 1.17, \"single_speedup\": 1.10";
        let c = doc(&case("rand-160", 160, (5, 100, 12, 30.0), weak));
        let report = check(&b, &c);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("round_ratio")));
        assert!(report.failures.iter().any(|f| f.contains("single_speedup")));
    }

    #[test]
    fn small_cases_are_exempt_from_the_floor() {
        let weak = ", \"single\": {\"wall_ms\": 10.0, \"cut_rounds\": 6}, \
                    \"round_ratio\": 1.00, \"single_speedup\": 1.00";
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), weak));
        assert!(check(&b, &b).passed(), "n = 20 has no acceptance floor");
    }

    #[test]
    fn tree_mismatch_fails() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let bad = case("rand-20", 20, (5, 100, 6, 10.0), "")
            .replace("\"same_tree\": true", "\"same_tree\": false");
        let report = check(&b, &doc(&bad));
        assert!(!report.passed());
        assert!(report.failures[0].contains("different trees"));
    }

    fn doc_with_storm(cases: &str, storm: &str) -> Json {
        parse(&format!(
            "{{\"suite\": \"bench-perf\", \"schema_version\": 4, \"smoke\": false, \
             \"cases\": [{cases}], \"storm\": {storm}}}"
        ))
        .unwrap()
    }

    fn storm(requests: u64, p99: f64, rps: f64, all_typed: bool, no_leak: bool) -> String {
        format!(
            "{{\"requests\": {requests}, \"solved\": {requests}, \"shed\": 0, \
             \"quarantined\": 0, \"parked\": 0, \"infeasible\": 0, \"cache_hits\": 0, \
             \"worker_restarts\": 0, \"wall_ms\": 1000.0, \"throughput_rps\": {rps}, \
             \"p50_ms\": 10.0, \"p99_ms\": {p99}, \"max_ms\": {p99}, \
             \"all_typed\": {all_typed}, \"no_leaked_workers\": {no_leak}}}"
        )
    }

    #[test]
    fn storm_invariants_fail_hard() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        let good = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        assert!(check(&good, &good).passed());

        let hung = doc_with_storm(&c, &storm(1000, 100.0, 50.0, false, true));
        let report = check(&good, &hung);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("typed outcome")), "{report:?}");

        let leaky = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, false));
        assert!(check(&good, &leaky).failures.iter().any(|f| f.contains("leaked")));
    }

    #[test]
    fn storm_trajectory_warns_on_noise_and_fails_on_blowup() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        let b = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        let noisy = doc_with_storm(&c, &storm(1000, 250.0, 30.0, true, true));
        let report = check(&b, &noisy);
        assert!(report.passed(), "2.5x p99 is runner noise: {:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("p99") && l.contains("warn only")));
        let gross = doc_with_storm(&c, &storm(1000, 1000.0, 5.0, true, true));
        let report = check(&b, &gross);
        assert!(!report.passed(), "10x p99 and throughput collapse cannot be noise");
        assert!(report.failures.iter().any(|f| f.contains("p99")));
        assert!(report.failures.iter().any(|f| f.contains("throughput")));
    }

    #[test]
    fn storm_with_different_request_counts_skips_trajectory() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        // Full baseline vs smoke current: invariants still gate, the
        // trajectory comparison is skipped.
        let b = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        let smoke = doc_with_storm(&c, &storm(150, 5000.0, 1.0, true, true));
        let report = check(&b, &smoke);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("request counts differ")));
    }

    #[test]
    fn v3_files_without_storm_blocks_still_check() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let report = check(&b, &b);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no storm block")));
        // v3 baseline, v4 current: the invariants gate on the current file.
        let c = doc_with_storm(
            &case("rand-20", 20, (5, 100, 6, 10.0), ""),
            &storm(150, 100.0, 10.0, true, true),
        );
        let report = check(&b, &c);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no baseline storm")));
    }

    #[test]
    fn v2_baseline_without_pool_fields_still_checks() {
        // A pre-engine baseline (schema 2) has no single/pool fields; the
        // deterministic counters still gate.
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let cur_extra = ", \"single\": {\"wall_ms\": 30.0, \"cut_rounds\": 18}, \
                        \"round_ratio\": 3.00, \"single_speedup\": 3.00";
        let c = doc(&case("rand-20", 20, (5, 100, 6, 10.0), cur_extra));
        assert!(check(&b, &c).passed());
    }
}

//! `bench-check` — CI gate over two `BENCH_ira.json` files.
//!
//! Compares a freshly generated bench-perf run against the committed
//! baseline and fails on regressions:
//!
//! - **Deterministic counters** (`lp_solves`, `pivots`, `cut_rounds` of the
//!   warm engine path) are seeded and machine-independent, so any growth
//!   beyond 25% over the baseline is a hard failure — a real algorithmic
//!   regression, not noise.
//! - **Wall time** varies with the host, so it only warns — unless the
//!   current run is over 4× the baseline, which no shared-runner jitter
//!   explains. Cases whose baseline wall is under a few tens of
//!   milliseconds never fail on ratio alone: scheduler jitter can exceed
//!   4× of a ~1 ms case.
//! - **Answer identity**: every case must report `same_tree: true`.
//! - **Acceptance floor** (evaluated on the current file alone): every
//!   case at n ≥ 160 whose single-cut baseline ran must show the engine
//!   win the tentpole claims — ≥ 3× fewer cut rounds and ≥ 2× wall-clock
//!   speedup versus the single-cut path.
//! - **Storm rung** (schema 4): the current `storm` block's `all_typed`
//!   and `no_leaked_workers` invariants are hard failures — a request that
//!   hung or a worker thread that leaked is a service bug regardless of
//!   the host. Throughput and p99 compare against the baseline storm only
//!   when both ran the same request count (a smoke run against a full
//!   baseline skips with a note) and warn rather than fail, like wall
//!   time, unless the tail blows past the gross ratio.
//!
//! Cases present in only one file are reported but not failed, so the
//! ladder can grow without invalidating old baselines.

use wsn_obs::json::{parse, Json};

/// Growth in a deterministic counter beyond this ratio fails the check.
const COUNTER_TOLERANCE: f64 = 1.25;

/// Wall-clock growth beyond this ratio fails even on noisy runners.
const WALL_GROSS_RATIO: f64 = 4.0;

/// Below this baseline wall time the gross ratio never fails — a few
/// milliseconds of scheduler jitter on a shared runner can alone exceed
/// 4× of a ~1 ms case.
const WALL_NOISE_FLOOR_MS: f64 = 50.0;

/// Acceptance floor: engine cut rounds must beat single-cut by this factor
/// at n ≥ 160.
const MIN_ROUND_RATIO: f64 = 3.0;

/// Acceptance floor: engine wall time must beat single-cut by this factor
/// at n ≥ 160.
const MIN_SINGLE_SPEEDUP: f64 = 2.0;

/// Node count from which the acceptance floor applies.
const ACCEPTANCE_N: f64 = 160.0;

/// Outcome of the comparison.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Human-readable findings, one per line.
    pub lines: Vec<String>,
    /// Hard failures (non-empty fails the command).
    pub failures: Vec<String>,
}

impl CheckReport {
    /// True when no hard failure was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report, failures last.
    pub fn render(&self) -> String {
        let mut out = String::from("bench-check — current run vs committed baseline\n");
        for l in &self.lines {
            out.push_str("  ");
            out.push_str(l);
            out.push('\n');
        }
        if self.failures.is_empty() {
            out.push_str("PASS\n");
        } else {
            for f in &self.failures {
                out.push_str("FAIL: ");
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }
}

fn counter(case: &Json, path: &str, field: &str) -> Option<f64> {
    case.get(path)?.get(field)?.as_f64()
}

fn case_name(case: &Json) -> &str {
    case.get("name").and_then(Json::as_str).unwrap_or("?")
}

fn cases(doc: &Json) -> Vec<&Json> {
    doc.get("cases").and_then(Json::as_arr).map(|a| a.iter().collect()).unwrap_or_default()
}

/// Compares a current bench document against a baseline document.
pub fn check(baseline: &Json, current: &Json) -> CheckReport {
    let mut report = CheckReport { lines: Vec::new(), failures: Vec::new() };
    let base_cases = cases(baseline);
    let cur_cases = cases(current);
    if cur_cases.is_empty() {
        report.failures.push("current file has no cases".to_string());
        return report;
    }

    for cur in &cur_cases {
        let name = case_name(cur);
        let Some(base) = base_cases.iter().find(|b| case_name(b) == name) else {
            report.lines.push(format!("{name}: new case, no baseline (skipped)"));
            continue;
        };

        // Deterministic warm-path counters: hard gate.
        for field in ["lp_solves", "pivots", "cut_rounds"] {
            match (counter(base, "warm", field), counter(cur, "warm", field)) {
                (Some(b), Some(c)) if b > 0.0 && c > b * COUNTER_TOLERANCE => {
                    report.failures.push(format!(
                        "{name}: warm.{field} regressed {b:.0} -> {c:.0} \
                         (limit {:.0})",
                        b * COUNTER_TOLERANCE
                    ));
                }
                (Some(b), Some(c)) => {
                    report.lines.push(format!("{name}: warm.{field} {b:.0} -> {c:.0} ok"));
                }
                _ => {
                    report.lines.push(format!("{name}: warm.{field} missing (skipped)"));
                }
            }
        }

        // Wall clock: warn-only within the gross ratio.
        if let (Some(b), Some(c)) =
            (counter(base, "warm", "wall_ms"), counter(cur, "warm", "wall_ms"))
        {
            let ratio = if b > 0.0 { c / b } else { 1.0 };
            if ratio > WALL_GROSS_RATIO && b >= WALL_NOISE_FLOOR_MS {
                report
                    .failures
                    .push(format!("{name}: warm wall {b:.1} ms -> {c:.1} ms ({ratio:.1}x)"));
            } else if ratio > COUNTER_TOLERANCE {
                report.lines.push(format!(
                    "{name}: warm wall {b:.1} ms -> {c:.1} ms ({ratio:.1}x, warn only)"
                ));
            }
        }
    }

    check_storm(baseline, current, &mut report);

    // Answer identity and the acceptance floor — current file only.
    for cur in &cur_cases {
        let name = case_name(cur);
        if cur.get("same_tree") == Some(&Json::Bool(false)) {
            report.failures.push(format!("{name}: comparison paths decoded different trees"));
        }
        let n = cur.get("n").and_then(Json::as_f64).unwrap_or(0.0);
        if n < ACCEPTANCE_N || cur.get("single").is_none_or(|s| !s.is_obj()) {
            continue;
        }
        match cur.get("round_ratio").and_then(Json::as_f64) {
            Some(r) if r >= MIN_ROUND_RATIO => {
                report.lines.push(format!("{name}: round_ratio {r:.2} >= {MIN_ROUND_RATIO}"));
            }
            Some(r) => {
                report.failures.push(format!(
                    "{name}: round_ratio {r:.2} below acceptance floor {MIN_ROUND_RATIO}"
                ));
            }
            None => report.failures.push(format!("{name}: round_ratio missing")),
        }
        match cur.get("single_speedup").and_then(Json::as_f64) {
            Some(s) if s >= MIN_SINGLE_SPEEDUP => {
                report.lines.push(format!("{name}: single_speedup {s:.2} >= {MIN_SINGLE_SPEEDUP}"));
            }
            Some(s) => {
                report.failures.push(format!(
                    "{name}: single_speedup {s:.2} below acceptance floor {MIN_SINGLE_SPEEDUP}"
                ));
            }
            None => report.failures.push(format!("{name}: single_speedup missing")),
        }
    }

    report
}

/// Gates the schema-4 service-storm rung. The invariants (`all_typed`,
/// `no_leaked_workers`) are host-independent and fail hard; the
/// throughput/p99 trajectory is wall-clock-like and only warns, and only
/// compares when baseline and current ran the same number of requests.
fn check_storm(baseline: &Json, current: &Json, report: &mut CheckReport) {
    let Some(cur) = current.get("storm").filter(|s| s.is_obj()) else {
        report.lines.push("storm: no storm block in current file (skipped)".to_string());
        return;
    };
    for (field, what) in [
        ("all_typed", "a request resolved without a typed outcome"),
        ("no_leaked_workers", "the fleet leaked worker threads"),
    ] {
        match cur.get(field) {
            Some(&Json::Bool(true)) => report.lines.push(format!("storm: {field} ok")),
            _ => report.failures.push(format!("storm: {what}")),
        }
    }
    let Some(base) = baseline.get("storm").filter(|s| s.is_obj()) else {
        report.lines.push("storm: no baseline storm block (trajectory skipped)".to_string());
        return;
    };
    let requests = |doc: &Json| doc.get("requests").and_then(Json::as_f64).unwrap_or(0.0);
    if requests(base) != requests(cur) {
        report.lines.push(format!(
            "storm: request counts differ (baseline {:.0}, current {:.0}) — trajectory skipped",
            requests(base),
            requests(cur)
        ));
        return;
    }
    if let (Some(b), Some(c)) =
        (base.get("p99_ms").and_then(Json::as_f64), cur.get("p99_ms").and_then(Json::as_f64))
    {
        let ratio = if b > 0.0 { c / b } else { 1.0 };
        if ratio > WALL_GROSS_RATIO && b >= WALL_NOISE_FLOOR_MS {
            report.failures.push(format!("storm: p99 {b:.1} ms -> {c:.1} ms ({ratio:.1}x)"));
        } else if ratio > COUNTER_TOLERANCE {
            report
                .lines
                .push(format!("storm: p99 {b:.1} ms -> {c:.1} ms ({ratio:.1}x, warn only)"));
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("throughput_rps").and_then(Json::as_f64),
        cur.get("throughput_rps").and_then(Json::as_f64),
    ) {
        let ratio = if c > 0.0 { b / c } else { f64::INFINITY };
        if ratio > WALL_GROSS_RATIO {
            report
                .failures
                .push(format!("storm: throughput {b:.1} -> {c:.1} req/s ({ratio:.1}x slower)"));
        } else if ratio > COUNTER_TOLERANCE {
            report.lines.push(format!(
                "storm: throughput {b:.1} -> {c:.1} req/s ({ratio:.1}x slower, warn only)"
            ));
        }
    }
}

/// Typed verdict `bench-check trend` assigns to one tracked metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Meaningfully better than the baseline.
    Improved,
    /// Within noise of the baseline.
    Flat,
    /// Worse than the baseline; `hard` regressions fail the command.
    Regressed {
        /// Beyond what runner noise explains (deterministic-counter
        /// tolerance, or the gross wall ratio over the noise floor).
        hard: bool,
    },
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Flat => "flat",
            Verdict::Regressed { hard: false } => "regressed (soft)",
            Verdict::Regressed { hard: true } => "REGRESSED",
        }
    }
}

/// One metric's baseline-vs-current comparison in a trend report.
#[derive(Clone, Debug)]
pub struct TrendLine {
    /// Case name, or `storm` for the storm rung.
    pub case: String,
    /// Metric key, e.g. `warm.pivots`.
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    pub verdict: Verdict,
}

/// What `bench-check trend` concluded.
#[derive(Clone, Debug, Default)]
pub struct TrendReport {
    /// Per-metric verdicts, in case then metric order.
    pub lines: Vec<TrendLine>,
    /// Informational notes (skips, history drift).
    pub notes: Vec<String>,
    /// Hard failures — non-empty fails the command. Every
    /// `Verdict::Regressed { hard: true }` line has a failure here.
    pub failures: Vec<String>,
}

impl TrendReport {
    /// True when no hard regression or invariant violation was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn tally(&self, want: fn(Verdict) -> bool) -> usize {
        self.lines.iter().filter(|l| want(l.verdict)).count()
    }

    /// Renders the trend table, failures last.
    pub fn render(&self) -> String {
        let mut out = String::from("bench-check trend — current vs baseline\n");
        for l in &self.lines {
            let ratio = if l.baseline > 0.0 { l.current / l.baseline } else { f64::NAN };
            out.push_str(&format!(
                "  {:<12} {:<16} {:>12.3} -> {:>12.3}  {:>6.2}x  {}\n",
                l.case,
                l.metric,
                l.baseline,
                l.current,
                ratio,
                l.verdict.label()
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out.push_str(&format!(
            "  verdicts: {} improved, {} flat, {} regressed ({} hard)\n",
            self.tally(|v| v == Verdict::Improved),
            self.tally(|v| v == Verdict::Flat),
            self.tally(|v| matches!(v, Verdict::Regressed { .. })),
            self.tally(|v| v == Verdict::Regressed { hard: true }),
        ));
        if self.failures.is_empty() {
            out.push_str("PASS\n");
        } else {
            for f in &self.failures {
                out.push_str("FAIL: ");
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }
}

/// Deterministic-counter verdict: seeded and machine-independent, so the
/// 25% tolerance is a hard wall.
fn counter_verdict(b: f64, c: f64) -> Verdict {
    let ratio = if b > 0.0 { c / b } else { 1.0 };
    if ratio > COUNTER_TOLERANCE {
        Verdict::Regressed { hard: true }
    } else if ratio > 1.10 {
        Verdict::Regressed { hard: false }
    } else if ratio < 0.90 {
        Verdict::Improved
    } else {
        Verdict::Flat
    }
}

/// Wall-clock verdict: host-dependent, so only a gross blowup over the
/// noise floor is hard.
fn wall_verdict(b: f64, c: f64) -> Verdict {
    let ratio = if b > 0.0 { c / b } else { 1.0 };
    if ratio > WALL_GROSS_RATIO && b >= WALL_NOISE_FLOOR_MS {
        Verdict::Regressed { hard: true }
    } else if ratio > COUNTER_TOLERANCE {
        Verdict::Regressed { hard: false }
    } else if ratio < 0.80 {
        Verdict::Improved
    } else {
        Verdict::Flat
    }
}

/// Per-case metrics the trend tracks: deterministic counters plus the
/// per-stage wall breakdown (`lp_ms` / `sep_ms` / `decode_ms` ride along
/// so a regression points at the stage that moved, not just the total).
const TREND_COUNTERS: [&str; 3] = ["lp_solves", "pivots", "cut_rounds"];
const TREND_WALLS: [&str; 4] = ["wall_ms", "lp_ms", "sep_ms", "decode_ms"];

/// Compares current against baseline (and optionally a rolling history of
/// prior runs), assigning a typed [`Verdict`] per metric.
pub fn trend(baseline: &Json, current: &Json, history: &[Json]) -> TrendReport {
    let mut report = TrendReport::default();
    let base_cases = cases(baseline);
    let cur_cases = cases(current);
    if cur_cases.is_empty() {
        report.failures.push("current file has no cases".to_string());
        return report;
    }

    fn push(report: &mut TrendReport, case: &str, metric: String, b: f64, c: f64, v: Verdict) {
        if v == (Verdict::Regressed { hard: true }) {
            report.failures.push(format!(
                "{case}: {metric} regressed {b:.3} -> {c:.3} ({:.2}x)",
                if b > 0.0 { c / b } else { f64::NAN }
            ));
        }
        report.lines.push(TrendLine {
            case: case.to_string(),
            metric,
            baseline: b,
            current: c,
            verdict: v,
        });
    }

    for cur in &cur_cases {
        let name = case_name(cur);
        let Some(base) = base_cases.iter().find(|b| case_name(b) == name) else {
            report.notes.push(format!("{name}: new case, no baseline (skipped)"));
            continue;
        };
        for field in TREND_COUNTERS {
            if let (Some(b), Some(c)) = (counter(base, "warm", field), counter(cur, "warm", field))
            {
                push(&mut report, name, format!("warm.{field}"), b, c, counter_verdict(b, c));
            }
        }
        for field in TREND_WALLS {
            if let (Some(b), Some(c)) = (counter(base, "warm", field), counter(cur, "warm", field))
            {
                push(&mut report, name, format!("warm.{field}"), b, c, wall_verdict(b, c));
            }
        }
    }

    // Storm rung: the invariants are hard regardless of the baseline; the
    // latency/throughput trajectory gets verdicts when comparable.
    if let Some(cur) = current.get("storm").filter(|s| s.is_obj()) {
        for (field, what) in [
            ("all_typed", "a request resolved without a typed outcome"),
            ("no_leaked_workers", "the fleet leaked worker threads"),
        ] {
            if cur.get(field) != Some(&Json::Bool(true)) {
                report.failures.push(format!("storm: {what}"));
            }
        }
        let base_storm = baseline.get("storm").filter(|s| s.is_obj());
        let comparable = base_storm.is_some_and(|b| {
            b.get("requests").and_then(Json::as_f64) == cur.get("requests").and_then(Json::as_f64)
        });
        if let Some(base) = base_storm.filter(|_| comparable) {
            if let (Some(b), Some(c)) = (
                base.get("p99_ms").and_then(Json::as_f64),
                cur.get("p99_ms").and_then(Json::as_f64),
            ) {
                push(&mut report, "storm", "p99_ms".to_string(), b, c, wall_verdict(b, c));
            }
            if let (Some(b), Some(c)) = (
                base.get("throughput_rps").and_then(Json::as_f64),
                cur.get("throughput_rps").and_then(Json::as_f64),
            ) {
                // Throughput regresses downward; invert for the verdict.
                push(
                    &mut report,
                    "storm",
                    "throughput_rps".to_string(),
                    b,
                    c,
                    wall_verdict(c.max(1e-9), b),
                );
            }
        } else {
            report.notes.push("storm: baseline not comparable (trajectory skipped)".to_string());
        }
    }

    // Rolling history: compare deterministic counters against the median
    // of prior runs — a slow drift that stays inside the per-run
    // tolerance still surfaces here (as a note, never a failure, since
    // the baseline comparison above is the gate).
    if history.len() >= 3 {
        for cur in &cur_cases {
            let name = case_name(cur);
            for field in TREND_COUNTERS {
                let Some(c) = counter(cur, "warm", field) else { continue };
                let mut past: Vec<f64> = history
                    .iter()
                    .filter_map(|doc| {
                        cases(doc)
                            .iter()
                            .find(|b| case_name(b) == name)
                            .and_then(|b| counter(b, "warm", field))
                    })
                    .collect();
                if past.len() < 3 {
                    continue;
                }
                past.sort_by(|a, b| a.total_cmp(b));
                let median = past[past.len() / 2];
                if median > 0.0 && c > median * COUNTER_TOLERANCE {
                    report.notes.push(format!(
                        "{name}: warm.{field} {c:.0} drifted above history median {median:.0} \
                         over {} run(s)",
                        past.len()
                    ));
                }
            }
        }
        report.notes.push(format!("history: compared against {} prior run(s)", history.len()));
    }

    report
}

/// Rolling-history cap: `run_trend` keeps this many most-recent runs.
const HISTORY_CAP: usize = 20;

/// `bench-check trend` entry point: compares current vs baseline (and the
/// rolling history JSONL when given), then appends the current run to the
/// history. Returns the rendered report plus the pass verdict.
pub fn run_trend(
    baseline_path: &str,
    current_path: &str,
    history_path: Option<&str>,
) -> Result<(String, bool), String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let baseline =
        parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: invalid JSON: {e}"))?;
    let current_text = read(current_path)?;
    let current = parse(&current_text).map_err(|e| format!("{current_path}: invalid JSON: {e}"))?;

    let mut history_lines: Vec<String> = Vec::new();
    if let Some(path) = history_path {
        if let Ok(text) = std::fs::read_to_string(path) {
            history_lines =
                text.lines().filter(|l| !l.trim().is_empty()).map(String::from).collect();
        }
    }
    let history: Vec<Json> = history_lines.iter().filter_map(|l| parse(l).ok()).collect();

    let report = trend(&baseline, &current, &history);

    if let Some(path) = history_path {
        // One JSONL line per run, newest last, capped. The bench file is
        // multi-line JSON; collapsing newlines keeps it one parseable line
        // (none of its strings contain newlines).
        history_lines.push(current_text.replace('\n', " "));
        let start = history_lines.len().saturating_sub(HISTORY_CAP);
        let mut out = history_lines[start..].join("\n");
        out.push('\n');
        std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    Ok((report.render(), report.passed()))
}

/// Reads both files, runs the comparison, and returns the rendered report
/// plus the pass verdict.
pub fn run(baseline_path: &str, current_path: &str) -> Result<(String, bool), String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let baseline =
        parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: invalid JSON: {e}"))?;
    let current =
        parse(&read(current_path)?).map_err(|e| format!("{current_path}: invalid JSON: {e}"))?;
    let report = check(&baseline, &current);
    Ok((report.render(), report.passed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cases: &str) -> Json {
        parse(&format!(
            "{{\"suite\": \"bench-perf\", \"schema_version\": 3, \"smoke\": false, \
             \"cases\": [{cases}]}}"
        ))
        .unwrap()
    }

    fn case(name: &str, n: usize, warm: (u64, u64, u64, f64), extra: &str) -> String {
        let (solves, pivots, rounds, wall) = warm;
        format!(
            "{{\"name\": \"{name}\", \"n\": {n}, \"m\": 100, \
             \"warm\": {{\"wall_ms\": {wall}, \"lp_solves\": {solves}, \"pivots\": {pivots}, \
             \"cut_rounds\": {rounds}}}, \"same_tree\": true{extra}}}"
        )
    }

    #[test]
    fn identical_runs_pass() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let report = check(&b, &b);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn counter_regression_fails() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&case("rand-20", 20, (5, 200, 6, 10.0), ""));
        let report = check(&b, &c);
        assert!(!report.passed());
        assert!(report.failures[0].contains("pivots"), "{:?}", report.failures);
    }

    #[test]
    fn counter_growth_within_tolerance_passes() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&case("rand-20", 20, (6, 120, 7, 10.0), ""));
        assert!(check(&b, &c).passed());
    }

    #[test]
    fn wall_clock_noise_warns_but_gross_blowup_fails() {
        let b = doc(&case("rand-80", 80, (5, 100, 6, 100.0), ""));
        let noisy = doc(&case("rand-80", 80, (5, 100, 6, 250.0), ""));
        let report = check(&b, &noisy);
        assert!(report.passed(), "2.5x wall is runner noise: {:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("warn only")));
        let gross = doc(&case("rand-80", 80, (5, 100, 6, 1000.0), ""));
        assert!(!check(&b, &gross).passed(), "10x wall cannot be noise");
    }

    #[test]
    fn tiny_baseline_walls_never_fail_on_ratio_alone() {
        // A ~1 ms case can blow past 4x from scheduler jitter alone; below
        // the noise floor the gross ratio downgrades to a warning.
        let b = doc(&case("dfl-16", 16, (2, 83, 2, 1.0), ""));
        let jittery = doc(&case("dfl-16", 16, (2, 83, 2, 9.0), ""));
        let report = check(&b, &jittery);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("warn only")));
    }

    #[test]
    fn new_cases_are_skipped_not_failed() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let c = doc(&format!(
            "{}, {}",
            case("rand-20", 20, (5, 100, 6, 10.0), ""),
            case("rand-40", 40, (9, 400, 12, 40.0), "")
        ));
        let report = check(&b, &c);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no baseline")));
    }

    #[test]
    fn acceptance_floor_applies_from_160() {
        let good = ", \"single\": {\"wall_ms\": 99.0, \"cut_rounds\": 60}, \
                    \"round_ratio\": 5.00, \"single_speedup\": 3.10";
        let b = doc(&case("rand-160", 160, (5, 100, 12, 30.0), good));
        assert!(check(&b, &b).passed());

        let weak = ", \"single\": {\"wall_ms\": 33.0, \"cut_rounds\": 14}, \
                    \"round_ratio\": 1.17, \"single_speedup\": 1.10";
        let c = doc(&case("rand-160", 160, (5, 100, 12, 30.0), weak));
        let report = check(&b, &c);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("round_ratio")));
        assert!(report.failures.iter().any(|f| f.contains("single_speedup")));
    }

    #[test]
    fn small_cases_are_exempt_from_the_floor() {
        let weak = ", \"single\": {\"wall_ms\": 10.0, \"cut_rounds\": 6}, \
                    \"round_ratio\": 1.00, \"single_speedup\": 1.00";
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), weak));
        assert!(check(&b, &b).passed(), "n = 20 has no acceptance floor");
    }

    #[test]
    fn tree_mismatch_fails() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let bad = case("rand-20", 20, (5, 100, 6, 10.0), "")
            .replace("\"same_tree\": true", "\"same_tree\": false");
        let report = check(&b, &doc(&bad));
        assert!(!report.passed());
        assert!(report.failures[0].contains("different trees"));
    }

    fn doc_with_storm(cases: &str, storm: &str) -> Json {
        parse(&format!(
            "{{\"suite\": \"bench-perf\", \"schema_version\": 4, \"smoke\": false, \
             \"cases\": [{cases}], \"storm\": {storm}}}"
        ))
        .unwrap()
    }

    fn storm(requests: u64, p99: f64, rps: f64, all_typed: bool, no_leak: bool) -> String {
        format!(
            "{{\"requests\": {requests}, \"solved\": {requests}, \"shed\": 0, \
             \"quarantined\": 0, \"parked\": 0, \"infeasible\": 0, \"cache_hits\": 0, \
             \"worker_restarts\": 0, \"wall_ms\": 1000.0, \"throughput_rps\": {rps}, \
             \"p50_ms\": 10.0, \"p99_ms\": {p99}, \"max_ms\": {p99}, \
             \"all_typed\": {all_typed}, \"no_leaked_workers\": {no_leak}}}"
        )
    }

    #[test]
    fn storm_invariants_fail_hard() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        let good = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        assert!(check(&good, &good).passed());

        let hung = doc_with_storm(&c, &storm(1000, 100.0, 50.0, false, true));
        let report = check(&good, &hung);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("typed outcome")), "{report:?}");

        let leaky = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, false));
        assert!(check(&good, &leaky).failures.iter().any(|f| f.contains("leaked")));
    }

    #[test]
    fn storm_trajectory_warns_on_noise_and_fails_on_blowup() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        let b = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        let noisy = doc_with_storm(&c, &storm(1000, 250.0, 30.0, true, true));
        let report = check(&b, &noisy);
        assert!(report.passed(), "2.5x p99 is runner noise: {:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("p99") && l.contains("warn only")));
        let gross = doc_with_storm(&c, &storm(1000, 1000.0, 5.0, true, true));
        let report = check(&b, &gross);
        assert!(!report.passed(), "10x p99 and throughput collapse cannot be noise");
        assert!(report.failures.iter().any(|f| f.contains("p99")));
        assert!(report.failures.iter().any(|f| f.contains("throughput")));
    }

    #[test]
    fn storm_with_different_request_counts_skips_trajectory() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        // Full baseline vs smoke current: invariants still gate, the
        // trajectory comparison is skipped.
        let b = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        let smoke = doc_with_storm(&c, &storm(150, 5000.0, 1.0, true, true));
        let report = check(&b, &smoke);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("request counts differ")));
    }

    #[test]
    fn v3_files_without_storm_blocks_still_check() {
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let report = check(&b, &b);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no storm block")));
        // v3 baseline, v4 current: the invariants gate on the current file.
        let c = doc_with_storm(
            &case("rand-20", 20, (5, 100, 6, 10.0), ""),
            &storm(150, 100.0, 10.0, true, true),
        );
        let report = check(&b, &c);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.lines.iter().any(|l| l.contains("no baseline storm")));
    }

    /// A case with the per-stage wall breakdown the trend tracks.
    fn staged_case(name: &str, warm: (u64, u64, u64, f64), lp: f64, sep: f64, dec: f64) -> String {
        let (solves, pivots, rounds, wall) = warm;
        format!(
            "{{\"name\": \"{name}\", \"n\": 80, \"m\": 100, \
             \"warm\": {{\"wall_ms\": {wall}, \"lp_solves\": {solves}, \"pivots\": {pivots}, \
             \"cut_rounds\": {rounds}, \"lp_ms\": {lp}, \"sep_ms\": {sep}, \
             \"decode_ms\": {dec}}}, \"same_tree\": true}}"
        )
    }

    #[test]
    fn trend_of_identical_runs_is_flat_and_passes() {
        let b = doc(&staged_case("rand-80", (5, 100, 6, 100.0), 60.0, 30.0, 5.0));
        let report = trend(&b, &b, &[]);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(!report.lines.is_empty());
        assert!(report.lines.iter().all(|l| l.verdict == Verdict::Flat), "{report:?}");
        assert!(report.render().contains("PASS"), "{}", report.render());
    }

    #[test]
    fn trend_hard_fails_on_an_injected_synthetic_regression() {
        let b = doc(&staged_case("rand-80", (5, 100, 6, 100.0), 60.0, 30.0, 5.0));
        // Inject a 10x pivot blowup with a matching lp_ms stage blowup,
        // while decode improves — the verdicts must come back typed.
        let c = doc(&staged_case("rand-80", (5, 1000, 6, 500.0), 450.0, 30.0, 2.0));
        let report = trend(&b, &c, &[]);
        assert!(!report.passed());
        let verdict = |metric: &str| {
            report.lines.iter().find(|l| l.metric == metric).map(|l| l.verdict).unwrap()
        };
        assert_eq!(verdict("warm.pivots"), Verdict::Regressed { hard: true });
        assert_eq!(verdict("warm.lp_ms"), Verdict::Regressed { hard: true });
        assert_eq!(verdict("warm.decode_ms"), Verdict::Improved);
        assert_eq!(verdict("warm.sep_ms"), Verdict::Flat);
        assert!(report.failures.iter().any(|f| f.contains("warm.pivots")), "{report:?}");
        let text = report.render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL:"), "{text}");
    }

    #[test]
    fn trend_wall_noise_is_soft_below_the_gross_ratio() {
        let b = doc(&staged_case("rand-80", (5, 100, 6, 100.0), 60.0, 30.0, 5.0));
        let noisy = doc(&staged_case("rand-80", (5, 100, 6, 250.0), 60.0, 30.0, 5.0));
        let report = trend(&b, &noisy, &[]);
        assert!(report.passed(), "2.5x wall is runner noise: {:?}", report.failures);
        let wall = report.lines.iter().find(|l| l.metric == "warm.wall_ms").unwrap();
        assert_eq!(wall.verdict, Verdict::Regressed { hard: false });
    }

    #[test]
    fn trend_gates_storm_invariants_and_trajectory() {
        let c = case("rand-20", 20, (5, 100, 6, 10.0), "");
        let b = doc_with_storm(&c, &storm(1000, 100.0, 50.0, true, true));
        let hung = doc_with_storm(&c, &storm(1000, 100.0, 50.0, false, true));
        assert!(!trend(&b, &hung, &[]).passed());
        let gross = doc_with_storm(&c, &storm(1000, 1000.0, 50.0, true, true));
        let report = trend(&b, &gross, &[]);
        assert!(!report.passed());
        let p99 = report.lines.iter().find(|l| l.metric == "p99_ms").unwrap();
        assert_eq!(p99.verdict, Verdict::Regressed { hard: true });
    }

    #[test]
    fn trend_notes_drift_against_the_history_median() {
        let mk = |pivots: u64| doc(&staged_case("rand-80", (5, pivots, 6, 100.0), 60.0, 30.0, 5.0));
        // Baseline already crept up, so current-vs-baseline stays flat —
        // only the history median exposes the slow drift.
        let history = vec![mk(100), mk(102), mk(104)];
        let report = trend(&mk(130), &mk(132), &history);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(
            report.notes.iter().any(|n| n.contains("drifted above history median")),
            "{report:?}"
        );
    }

    #[test]
    fn run_trend_appends_the_rolling_history() {
        let dir = std::env::temp_dir().join(format!("wsn-trend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let doc_text = format!(
            "{{\"suite\": \"bench-perf\", \"schema_version\": 4, \"smoke\": false,\n \
             \"cases\": [{}]}}",
            staged_case("rand-80", (5, 100, 6, 100.0), 60.0, 30.0, 5.0)
        );
        std::fs::write(path("base.json"), &doc_text).unwrap();
        std::fs::write(path("cur.json"), &doc_text).unwrap();
        let hist = path("history.jsonl");
        for _ in 0..2 {
            let (text, passed) =
                run_trend(&path("base.json"), &path("cur.json"), Some(&hist)).unwrap();
            assert!(passed, "{text}");
        }
        let lines: Vec<String> =
            std::fs::read_to_string(&hist).unwrap().lines().map(String::from).collect();
        assert_eq!(lines.len(), 2, "one history line per run");
        for l in &lines {
            parse(l).expect("each history line is one parseable JSON doc");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_baseline_without_pool_fields_still_checks() {
        // A pre-engine baseline (schema 2) has no single/pool fields; the
        // deterministic counters still gate.
        let b = doc(&case("rand-20", 20, (5, 100, 6, 10.0), ""));
        let cur_extra = ", \"single\": {\"wall_ms\": 30.0, \"cut_rounds\": 18}, \
                        \"round_ratio\": 3.00, \"single_speedup\": 3.00";
        let c = doc(&case("rand-20", 20, (5, 100, 6, 10.0), cur_extra));
        assert!(check(&b, &c).passed());
    }
}

//! Ablations beyond the paper's evaluation (§5/6 of DESIGN.md):
//!
//! * **Batch vs. single constraint removal** in IRA: the paper removes one
//!   vertex from `W` per iteration; removing every qualifying vertex is
//!   output-equivalent but saves LP solves.
//! * **ILU under improving links**: the paper only evaluates the
//!   link-getting-worse path; here random non-tree links improve and the
//!   ILU walk (Algorithm 4) recovers cost against an MST re-solve.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wsn_model::{EnergyModel, PaperCost, Prr};
use wsn_proto::ProtocolState;
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, random_graph, DflConfig, RandomGraphConfig};

/// Batch- vs single-removal comparison on random instances.
#[derive(Clone, Copy, Debug)]
pub struct RemovalRow {
    /// Instance index.
    pub instance: usize,
    /// LP solves with batch removal.
    pub batch_lp_solves: usize,
    /// LP solves with single removal.
    pub single_lp_solves: usize,
    /// Cost difference (paper units; expected ≈ 0).
    pub cost_delta: f64,
}

/// Runs the removal-policy ablation.
pub fn removal_policy(instances: usize, base_seed: u64) -> Vec<RemovalRow> {
    (0..instances)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
            let net = random_graph(&RandomGraphConfig::default(), &mut rng).expect("connected");
            let model = EnergyModel::PAPER;
            let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
            let inst = MrlcInstance::new(net, model, aaml.lifetime).unwrap();
            let batch = solve_ira(&inst, &IraConfig::default()).expect("feasible at LC");
            let single =
                solve_ira(&inst, &IraConfig { batch_removal: false, ..IraConfig::default() })
                    .expect("feasible at LC");
            RemovalRow {
                instance: i,
                batch_lp_solves: batch.stats.lp_solves,
                single_lp_solves: single.stats.lp_solves,
                cost_delta: PaperCost::from_nat(batch.cost - single.cost).0,
            }
        })
        .collect()
}

/// Renders the removal ablation.
pub fn render_removal(rows: &[RemovalRow]) -> String {
    let mut t = Table::new(["instance", "LP solves (batch)", "LP solves (single)", "cost delta"]);
    for r in rows {
        t.push([
            r.instance.to_string(),
            r.batch_lp_solves.to_string(),
            r.single_lp_solves.to_string(),
            f(r.cost_delta, 2),
        ]);
    }
    format!(
        "Ablation — IRA constraint-removal policy (batch vs. paper-literal single)\n{}",
        t.render()
    )
}

/// One round of the improving-links experiment.
#[derive(Clone, Copy, Debug)]
pub struct IluRow {
    /// Round index.
    pub round: usize,
    /// Distributed (ILU) tree cost, paper units.
    pub ilu_cost: f64,
    /// Centralized IRA re-solve cost, paper units.
    pub ira_cost: f64,
    /// Parent changes the ILU walk performed this round.
    pub changes: usize,
}

/// Runs the improving-links experiment on the DFL system: each round one
/// random non-tree link's PRR improves toward 1, ILU reacts, and IRA
/// re-solves centrally.
pub fn ilu_improving_links(rounds: usize, seed: u64) -> Vec<IluRow> {
    let mut net =
        dfl_network(&DflConfig::default(), &LinkModel::default(), seed).expect("DFL deployment");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    // On the DFL ring AAML reaches the absolute lifetime optimum (a
    // Hamiltonian path), which leaves zero child headroom anywhere; run the
    // dynamics at 70% of it so nodes may hold up to two children and the
    // protocol has room to act.
    let lc = aaml.lifetime * 0.7;
    let initial = ira_at(&net, model, lc).expect("initial IRA tree");
    let mut state = ProtocolState::new(&initial.tree, lc, model).expect("codable");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C0);

    let mut out = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        // Improve a random non-tree link.
        let tree = state.tree();
        let non_tree: Vec<_> = net
            .edges()
            .filter(|(_, l)| !tree.contains_edge(l.u(), l.v()))
            .map(|(e, l)| (e, l.u(), l.v(), l.prr().value()))
            .collect();
        let (e, u, v, q) = non_tree[rng.random_range(0..non_tree.len())];
        // The link recovers to near-perfect quality (e.g. an obstacle
        // moved away) — the regime where Alg. 4 is supposed to react.
        let improved = q.max(0.9999);
        net.set_prr(e, Prr::new(improved).expect("valid PRR"));

        let outcome = state.handle_link_better(&net, u, v);
        let central = ira_at(&net, model, lc)
            .map(|s| PaperCost::of_tree(&net, &s.tree).0)
            .unwrap_or(f64::NAN);
        out.push(IluRow {
            round,
            ilu_cost: PaperCost::of_tree(&net, &state.tree()).0,
            ira_cost: central,
            changes: outcome.changes,
        });
    }
    out
}

/// Renders the ILU experiment.
pub fn render_ilu(rows: &[IluRow]) -> String {
    let mut t = Table::new(["round", "ILU cost", "IRA cost", "changes"]);
    for r in rows {
        t.push([r.round.to_string(), f(r.ilu_cost, 1), f(r.ira_cost, 1), r.changes.to_string()]);
    }
    format!("Ablation — ILU under improving links (extension; §VI-B.2 path)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_policies_agree_on_cost() {
        let rows = removal_policy(4, 1234);
        for r in &rows {
            assert!(
                r.cost_delta.abs() < 1e-6,
                "instance {}: batch and single removal diverged by {}",
                r.instance,
                r.cost_delta
            );
            // Batch can only save solves.
            assert!(r.batch_lp_solves <= r.single_lp_solves);
        }
    }

    #[test]
    fn ilu_recovers_cost_from_improving_links() {
        let rows = ilu_improving_links(40, 77);
        assert_eq!(rows.len(), 40);
        // ILU must act at least once when links improve substantially.
        let total_changes: usize = rows.iter().map(|r| r.changes).sum();
        assert!(total_changes > 0, "ILU never reacted to improving links");
        // It tracks the centralized optimum within a modest band.
        for r in rows.iter().filter(|r| r.ira_cost.is_finite()) {
            assert!(
                r.ilu_cost >= r.ira_cost - 1e-6,
                "distributed cannot beat the centralized optimum"
            );
            assert!(
                r.ilu_cost <= r.ira_cost + 80.0,
                "round {}: ILU {} drifted from IRA {}",
                r.round,
                r.ilu_cost,
                r.ira_cost
            );
        }
    }
}

//! Extension: protocol stability under noisy links — the hysteresis
//! trade-off.
//!
//! The paper's protocol switches parents the moment an alternative looks
//! better; with noisy beacon estimates that invites flip-flopping, and
//! every flip costs a broadcast (Fig. 13's budget). A switch margin
//! (hysteresis) suppresses marginal switches at a bounded cost penalty.
//! This experiment sweeps the margin under drifting links and reports
//! updates spent vs. cost overhead — the knob a deployment would actually
//! tune.

use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{EnergyModel, PaperCost};
use wsn_proto::ProtocolState;
use wsn_radio::{LinkModel, QualityDrift};
use wsn_testbed::{dfl_network, DflConfig};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hysteresis margins to sweep.
    pub margins: Vec<f64>,
    /// Drift rounds per margin.
    pub rounds: usize,
    /// Drift noise (logit units).
    pub sigma: f64,
    /// Seed (shared across margins so they see identical link histories).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            margins: vec![0.0, 0.005, 0.01, 0.02, 0.05, 0.10],
            rounds: 100,
            sigma: 0.30,
            seed: 2015,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { margins: vec![0.0, 0.05], rounds: 25, ..Config::default() }
    }
}

/// Aggregate outcome per margin.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// The hysteresis margin.
    pub margin: f64,
    /// Total parent changes over the run.
    pub total_updates: usize,
    /// Total broadcast messages spent.
    pub total_messages: usize,
    /// Mean tree cost across rounds (paper units).
    pub mean_cost: f64,
}

/// Runs the sweep: every margin replays the *identical* link-drift history.
pub fn run(config: &Config) -> Vec<Row> {
    let base_net = dfl_network(&DflConfig::default(), &LinkModel::default(), config.seed)
        .expect("DFL deployment");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&base_net, &model).expect("AAML runs");
    let lc = aaml.lifetime * 0.7;
    let initial = ira_at(&base_net, model, lc).expect("initial tree");

    // Pre-generate the shared drift history: per-round PRR of every link.
    let mut drifts: Vec<QualityDrift> =
        base_net.links().iter().map(|l| QualityDrift::new(l.prr(), 0.05, config.sigma)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x57AB);
    let history: Vec<Vec<wsn_model::Prr>> =
        (0..config.rounds).map(|_| drifts.iter_mut().map(|d| d.step(&mut rng)).collect()).collect();

    config
        .margins
        .iter()
        .map(|&margin| {
            let mut net = base_net.clone();
            let mut state = ProtocolState::new(&initial.tree, lc, model)
                .expect("codable")
                .with_switch_margin(margin);
            let mut total_updates = 0usize;
            let mut total_messages = 0usize;
            let mut cost_acc = 0.0;
            for qualities in &history {
                for (i, &q) in qualities.iter().enumerate() {
                    net.set_prr(wsn_model::EdgeId(i as u32), q);
                }
                // Worst uplink holder reacts, as in the drift experiment.
                let tree = state.tree();
                if let Some((child, _)) = tree
                    .edges()
                    .filter_map(|(c, p)| {
                        net.find_edge(c, p).map(|e| (c, net.link(e).prr().value()))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                {
                    let out = state.handle_link_worse(&net, child);
                    total_updates += out.changes;
                    total_messages += out.messages;
                }
                cost_acc += PaperCost::of_tree(&net, &state.tree()).0;
            }
            Row {
                margin,
                total_updates,
                total_messages,
                mean_cost: cost_acc / config.rounds as f64,
            }
        })
        .collect()
}

/// Renders the stability sweep.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["margin", "updates", "messages", "mean cost"]);
    for r in rows {
        t.push([
            f(r.margin, 3),
            r.total_updates.to_string(),
            r.total_messages.to_string(),
            f(r.mean_cost, 1),
        ]);
    }
    format!("Extension — protocol stability: hysteresis margin vs. update budget\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_margins_spend_fewer_updates() {
        let rows = run(&Config::default());
        assert!(rows.len() >= 3);
        let eager = &rows[0];
        let damped = rows.last().unwrap();
        assert!(eager.margin < damped.margin);
        assert!(
            damped.total_updates < eager.total_updates,
            "hysteresis must reduce churn: {} vs {}",
            damped.total_updates,
            eager.total_updates
        );
        assert!(damped.total_messages <= eager.total_messages);
        // Updates are monotone-ish in the margin (allow small wobble from
        // path dependence).
        assert!(rows.windows(2).filter(|w| w[1].total_updates > w[0].total_updates).count() <= 1);
        // Eager switching must actually fire under this drift.
        assert!(eager.total_updates > 5, "drift too weak: {}", eager.total_updates);
    }

    #[test]
    fn render_has_one_row_per_margin() {
        let cfg = Config::fast();
        let text = render(&run(&cfg));
        assert_eq!(text.lines().count(), cfg.margins.len() + 3);
    }
}

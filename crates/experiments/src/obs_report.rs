//! `obs-report` — validates a JSONL trace written by `--trace` and renders
//! the human-readable summary (per-span total/self time, hot spans first,
//! event counts with warnings called out). With `--metrics m.json` it also
//! renders the metrics-registry export — the `ira.*` solver counters and
//! the `sep.*` cut-pool engine counters (pool hits/scans, batched cuts,
//! pruned seeds).
//!
//! The heavy lifting lives in `wsn_obs::report`; this module is the thin
//! CLI adapter: read the file, validate strictly (any schema violation is
//! a hard error so CI can gate on it), render.

/// Reads and validates the trace at `path`, returning the rendered
/// summary. Errors are strings ready for `eprintln!`.
pub fn run(path: &str, top_k: usize) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let summary = wsn_obs::validate_trace(&text).map_err(|e| format!("invalid trace: {e}"))?;
    Ok(wsn_obs::render_summary(&summary, top_k))
}

/// Reads a metrics JSON export (written by `--metrics`) and renders its
/// counter and gauge tables.
pub fn run_metrics(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read metrics {path}: {e}"))?;
    wsn_obs::render_metrics(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn reports_a_valid_trace() {
        let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
        {
            let _g = wsn_obs::install(obs.clone());
            let _outer = wsn_obs::span("outer");
            {
                let _inner = wsn_obs::span("inner");
            }
            wsn_obs::event("tick", vec![wsn_obs::field("k", 1u64)]);
        }
        let path = write_temp("obs_report_valid.jsonl", &obs.trace_jsonl());
        let text = run(path.to_str().unwrap(), 10).unwrap();
        assert!(text.contains("outer"));
        assert!(text.contains("inner"));
        assert!(text.contains("tick"));
    }

    #[test]
    fn rejects_garbage() {
        let path = write_temp("obs_report_garbage.jsonl", "not json\n");
        let err = run(path.to_str().unwrap(), 10).unwrap_err();
        assert!(err.contains("invalid trace"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = run("/nonexistent/trace.jsonl", 10).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn reports_engine_counters_from_a_metrics_export() {
        let obs = wsn_obs::Obs::detached();
        let reg = obs.registry();
        reg.counter("sep.pool_hits").add(2);
        reg.counter("sep.seeds_pruned").add(9);
        let path = write_temp("obs_report_metrics.json", &reg.to_json());
        let text = run_metrics(path.to_str().unwrap()).unwrap();
        assert!(text.contains("sep.pool_hits"), "{text}");
        assert!(text.contains("sep.seeds_pruned"), "{text}");
    }

    #[test]
    fn metrics_garbage_is_an_error() {
        let path = write_temp("obs_report_metrics_bad.json", "nope");
        assert!(run_metrics(path.to_str().unwrap()).is_err());
    }
}

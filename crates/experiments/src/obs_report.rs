//! `obs-report` — validates a JSONL trace written by `--trace` and renders
//! the human-readable summary (per-span total/self time, hot spans first,
//! event counts with warnings called out). With `--metrics m.json` it also
//! renders the metrics-registry export — the `ira.*` solver counters and
//! the `sep.*` cut-pool engine counters (pool hits/scans, batched cuts,
//! pruned seeds).
//!
//! The heavy lifting lives in `wsn_obs::report`; this module is the thin
//! CLI adapter: read the file, validate leniently (a crashed or budget-
//! killed run leaves truncated traces that are still worth reporting —
//! malformed lines are skipped and counted, not fatal), render. Only a
//! file that is not a trace at all (missing/bad header) is a hard error.

/// Reads and validates the trace at `path`, returning the rendered
/// summary. Damage is reported inline; errors are strings ready for
/// `eprintln!`.
pub fn run(path: &str, top_k: usize) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let lenient =
        wsn_obs::validate_trace_lenient(&text).map_err(|e| format!("invalid trace: {e}"))?;
    let mut out = wsn_obs::render_summary(&lenient.summary, top_k);
    if lenient.skipped > 0 {
        let (lineno, reason) = lenient.first_skip.as_ref().expect("skipped implies a first skip");
        out.push_str(&format!(
            "\nwarning: skipped {} malformed line(s); first at line {lineno}: {reason}\n",
            lenient.skipped
        ));
    }
    if lenient.unclosed_spans > 0 {
        out.push_str(&format!(
            "warning: trace truncated — {} span(s) never closed (partial time dropped)\n",
            lenient.unclosed_spans
        ));
    }
    Ok(out)
}

/// Reads several per-worker traces (e.g. the fleet traces written by
/// `serve-storm --trace-dir`), merges them into one deterministic timeline
/// via [`wsn_obs::merge_traces`], and reports the merged trace. Each
/// record is tagged with the trace it came from (the file path), and the
/// merged trace is read leniently like the single-file path — a crashed
/// worker's truncated trace still reports.
pub fn run_merged(paths: &[String], top_k: usize) -> Result<String, String> {
    let mut traces = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
        traces.push((path.clone(), text));
    }
    let merged = wsn_obs::merge_traces(&traces)?;
    let lenient =
        wsn_obs::validate_trace_lenient(&merged).map_err(|e| format!("invalid merge: {e}"))?;
    let mut out = format!("merged {} trace(s)\n", paths.len());
    out.push_str(&wsn_obs::render_summary(&lenient.summary, top_k));
    if lenient.unclosed_spans > 0 {
        out.push_str(&format!(
            "warning: {} span(s) never closed (truncated worker trace; partial time dropped)\n",
            lenient.unclosed_spans
        ));
    }
    Ok(out)
}

/// Reads a metrics JSON export (written by `--metrics`) and renders its
/// counter and gauge tables.
pub fn run_metrics(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read metrics {path}: {e}"))?;
    wsn_obs::render_metrics(&text)
}

/// `obs-report postmortem <dump.jsonl>` — renders a black-box dump cut
/// from a flight-recorder ring (a worker crash, quarantine, budget
/// expiry, or shed storm) as an incident timeline.
pub fn run_postmortem(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read dump {path}: {e}"))?;
    wsn_obs::render_postmortem(&text)
}

/// `obs-report hotspots <trace.jsonl>...` — profiles one trace (or the
/// deterministic merge of several per-worker traces) by span path and
/// renders the top-`top_k` hotspot table; `folded` instead emits
/// flamegraph-compatible folded stacks (`a;b;c self_time` per line).
pub fn run_hotspots(paths: &[String], top_k: usize, folded: bool) -> Result<String, String> {
    let mut traces = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
        traces.push((path.clone(), text));
    }
    let text = match &traces[..] {
        [] => return Err("hotspots: no trace files given".to_string()),
        [(_, only)] => only.clone(),
        many => wsn_obs::merge_traces(many)?,
    };
    let profile = wsn_obs::profile_trace(&text)?;
    Ok(if folded { profile.folded() } else { profile.render(top_k) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn reports_a_valid_trace() {
        let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
        {
            let _g = wsn_obs::install(obs.clone());
            let _outer = wsn_obs::span("outer");
            {
                let _inner = wsn_obs::span("inner");
            }
            wsn_obs::event("tick", vec![wsn_obs::field("k", 1u64)]);
        }
        let path = write_temp("obs_report_valid.jsonl", &obs.trace_jsonl());
        let text = run(path.to_str().unwrap(), 10).unwrap();
        assert!(text.contains("outer"));
        assert!(text.contains("inner"));
        assert!(text.contains("tick"));
    }

    #[test]
    fn rejects_garbage() {
        let path = write_temp("obs_report_garbage.jsonl", "not json\n");
        let err = run(path.to_str().unwrap(), 10).unwrap_err();
        assert!(err.contains("invalid trace"), "{err}");
    }

    #[test]
    fn truncated_trace_still_reports_with_warning() {
        let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
        {
            let _g = wsn_obs::install(obs.clone());
            let _outer = wsn_obs::span("outer");
            {
                let _inner = wsn_obs::span("inner");
            }
        }
        let full = obs.trace_jsonl();
        // Drop the final line (the outer span_end) and corrupt one more.
        let mut lines: Vec<&str> = full.lines().collect();
        lines.pop();
        let mut damaged = lines.join("\n");
        damaged.push_str("\n{\"type\":\"mystery\"\n");
        let path = write_temp("obs_report_truncated.jsonl", &damaged);
        let text = run(path.to_str().unwrap(), 10).unwrap();
        assert!(text.contains("inner"), "{text}");
        assert!(text.contains("skipped 1 malformed line"), "{text}");
        assert!(text.contains("never closed"), "{text}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = run("/nonexistent/trace.jsonl", 10).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn reports_engine_counters_from_a_metrics_export() {
        let obs = wsn_obs::Obs::detached();
        let reg = obs.registry();
        reg.counter("sep.pool_hits").add(2);
        reg.counter("sep.seeds_pruned").add(9);
        let path = write_temp("obs_report_metrics.json", &reg.to_json());
        let text = run_metrics(path.to_str().unwrap()).unwrap();
        assert!(text.contains("sep.pool_hits"), "{text}");
        assert!(text.contains("sep.seeds_pruned"), "{text}");
    }

    #[test]
    fn metrics_garbage_is_an_error() {
        let path = write_temp("obs_report_metrics_bad.json", "nope");
        assert!(run_metrics(path.to_str().unwrap()).is_err());
    }

    fn one_span_trace(name: &str) -> String {
        let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
        {
            let _g = wsn_obs::install(obs.clone());
            let _s = wsn_obs::span(name);
        }
        obs.trace_jsonl()
    }

    #[test]
    fn merges_multiple_worker_traces() {
        let p0 = write_temp("obs_report_merge_w0.jsonl", &one_span_trace("solve-left"));
        let p1 = write_temp("obs_report_merge_w1.jsonl", &one_span_trace("solve-right"));
        let paths = [p0, p1].map(|p| p.to_str().unwrap().to_string());
        let text = run_merged(&paths, 10).unwrap();
        assert!(text.contains("merged 2 trace(s)"), "{text}");
        assert!(text.contains("solve-left") && text.contains("solve-right"), "{text}");
    }

    #[test]
    fn renders_a_postmortem_dump() {
        let obs = wsn_obs::Obs::with_flight(wsn_obs::Clock::virtual_ticks(), 16);
        {
            let _g = wsn_obs::install(obs.clone());
            let _s = wsn_obs::span("svc.job");
            wsn_obs::warn("svc.quarantine", vec![wsn_obs::field("failures", 3u64)]);
        }
        let dump = obs.blackbox_jsonl("worker-crash", Some(2)).unwrap();
        let path = write_temp("obs_report_postmortem.jsonl", &dump);
        let text = run_postmortem(path.to_str().unwrap()).unwrap();
        assert!(text.contains("worker-crash"), "{text}");
        assert!(text.contains("svc.job"), "{text}");
        assert!(text.contains("svc.quarantine"), "{text}");
    }

    #[test]
    fn postmortem_rejects_a_plain_trace() {
        let path = write_temp("obs_report_postmortem_bad.jsonl", &one_span_trace("a"));
        assert!(run_postmortem(path.to_str().unwrap()).is_err());
    }

    #[test]
    fn hotspots_profiles_one_trace_and_a_merged_fleet() {
        let nested = {
            let obs = wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks());
            {
                let _g = wsn_obs::install(obs.clone());
                let _outer = wsn_obs::span("lp-solve");
                let _inner = wsn_obs::span("lp-primal");
            }
            obs.trace_jsonl()
        };
        let p0 = write_temp("obs_report_hot_w0.jsonl", &nested);
        let p1 = write_temp("obs_report_hot_w1.jsonl", &one_span_trace("separation"));
        let one = [p0.to_str().unwrap().to_string()];
        let table = run_hotspots(&one, 10, false).unwrap();
        assert!(table.contains("lp-solve;lp-primal"), "{table}");
        let folded = run_hotspots(&one, 10, true).unwrap();
        assert!(folded.lines().any(|l| l.starts_with("lp-solve;lp-primal ")), "{folded}");
        let both = [one[0].clone(), p1.to_str().unwrap().to_string()];
        let merged = run_hotspots(&both, 10, false).unwrap();
        assert!(merged.contains("separation"), "{merged}");
    }

    #[test]
    fn merge_with_a_missing_file_is_an_error() {
        let p0 = write_temp("obs_report_merge_ok.jsonl", &one_span_trace("a"));
        let paths = [p0.to_str().unwrap().to_string(), "/nonexistent/w9.jsonl".to_string()];
        let err = run_merged(&paths, 10).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}

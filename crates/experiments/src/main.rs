//! `mrlc-experiments` — regenerates every figure of the MRLC evaluation.
//!
//! ```text
//! mrlc-experiments all [--fast]
//! mrlc-experiments fig1|fig2|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|fig13 [--fast]
//! mrlc-experiments ablation [--fast]
//! mrlc-experiments bench-perf [--smoke] [--out=PATH]   # writes BENCH_ira.json
//! ```

use wsn_experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().find_map(|a| a.strip_prefix("--out=")).unwrap_or("BENCH_ira.json").to_string();
    let which =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_string());

    let run_one = |name: &str| match name {
        "fig1" => {
            let cfg = if fast { fig1::Config::fast() } else { fig1::Config::default() };
            print!("{}", fig1::render(&fig1::run(&cfg)));
        }
        "fig2" => {
            let cfg = if fast { fig2::Config::fast() } else { fig2::Config::default() };
            print!("{}", fig2::render(&fig2::run(&cfg)));
        }
        "fig3" => {
            let cfg = if fast { fig3::Config::fast() } else { fig3::Config::default() };
            print!("{}", fig3::render(&fig3::run(&cfg)));
        }
        "fig4" => print!("{}", fig4::render(&fig4::run())),
        "fig6" => print!("{}", fig6::render(&fig6::run(2015))),
        "fig5" => print!("{}", fig5::render(&fig5::run())),
        "fig7" => {
            let cfg = if fast { fig7::Config::fast() } else { fig7::Config::default() };
            print!("{}", fig7::render(&fig7::run(&cfg)));
        }
        "fig8" => {
            let cfg = if fast { fig8::Config::fast() } else { fig8::Config::default() };
            print!(
                "{}",
                fig8::render(&fig8::run(&cfg), "Fig. 8 — random graphs, equal energy (3000 J)")
            );
        }
        "fig9" => {
            let cfg = if fast { fig9::fast_config() } else { fig9::paper_config() };
            print!("{}", fig9::render(&fig9::run(&cfg)));
        }
        "fig10" => {
            let cfg = if fast { fig10::Config::fast() } else { fig10::Config::default() };
            print!("{}", fig10::render(&fig10::run(&cfg)));
        }
        "fig11" | "fig12" | "fig13" => {
            let cfg = if fast { fig11_13::Config::fast() } else { fig11_13::Config::default() };
            let records = fig11_13::run(&cfg);
            match name {
                "fig11" => print!("{}", fig11_13::render_fig11(&records)),
                "fig12" => print!("{}", fig11_13::render_fig12(&records)),
                _ => print!("{}", fig11_13::render_fig13(&records)),
            }
        }
        "pareto" => {
            let cfg = if fast { ext_pareto::Config::fast() } else { ext_pareto::Config::default() };
            let (all, dominant) = ext_pareto::run(&cfg);
            print!("{}", ext_pareto::render(&all, &dominant));
        }
        "optgap" => {
            let cfg = if fast { ext_optgap::Config::fast() } else { ext_optgap::Config::default() };
            print!("{}", ext_optgap::render(&ext_optgap::run(&cfg)));
        }
        "latency" => {
            let cfg =
                if fast { ext_latency::Config::fast() } else { ext_latency::Config::default() };
            print!("{}", ext_latency::render(&ext_latency::run(&cfg)));
        }
        "scalability" => {
            let cfg = if fast {
                ext_scalability::Config::fast()
            } else {
                ext_scalability::Config::default()
            };
            print!("{}", ext_scalability::render(&ext_scalability::run(&cfg)));
        }
        "stability" => {
            let cfg =
                if fast { ext_stability::Config::fast() } else { ext_stability::Config::default() };
            print!("{}", ext_stability::render(&ext_stability::run(&cfg)));
        }
        "solvers" => {
            let cfg =
                if fast { ext_solvers::Config::fast() } else { ext_solvers::Config::default() };
            print!("{}", ext_solvers::render(&ext_solvers::run(&cfg)));
        }
        "spatial" => {
            let cfg =
                if fast { ext_spatial::Config::fast() } else { ext_spatial::Config::default() };
            print!("{}", ext_spatial::render(&ext_spatial::run(&cfg)));
        }
        "drift" => {
            let cfg = if fast { ext_drift::Config::fast() } else { ext_drift::Config::default() };
            print!("{}", ext_drift::render(&ext_drift::run(&cfg)));
        }
        "faults" => {
            let cfg = if fast { ext_faults::Config::fast() } else { ext_faults::Config::default() };
            print!("{}", ext_faults::render(&ext_faults::run(&cfg)));
        }
        "ablation" => {
            let (instances, rounds) = if fast { (4, 15) } else { (20, 60) };
            print!("{}", ablation::render_removal(&ablation::removal_policy(instances, 1234)));
            println!();
            print!("{}", ablation::render_ilu(&ablation::ilu_improving_links(rounds, 77)));
        }
        "bench-perf" => {
            let cfg = if smoke || fast {
                bench_perf::Config::smoke()
            } else {
                bench_perf::Config::default()
            };
            let cases = bench_perf::run(&cfg);
            print!("{}", bench_perf::render(&cases));
            let json = bench_perf::to_json(&cases, cfg.smoke);
            match std::fs::write(&out_path, &json) {
                Ok(()) => println!("wrote {out_path}"),
                Err(e) => {
                    eprintln!("cannot write {out_path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown figure `{other}`");
            eprintln!(
                "usage: mrlc-experiments [all|fig1..fig13|ablation|pareto|optgap|latency|drift|spatial|solvers|stability|scalability|faults|bench-perf] [--fast|--smoke] [--out=PATH]"
            );
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablation",
            "pareto",
            "optgap",
            "latency",
            "drift",
            "spatial",
            "solvers",
            "stability",
            "scalability",
            "faults",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(&which);
    }
}

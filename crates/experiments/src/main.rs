//! `mrlc-experiments` — regenerates every figure of the MRLC evaluation.
//!
//! ```text
//! mrlc-experiments all [--fast]
//! mrlc-experiments fig1|fig2|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|fig13 [--fast]
//! mrlc-experiments ablation [--fast]
//! mrlc-experiments bench-perf [--smoke] [--out=PATH]   # writes BENCH_ira.json
//! mrlc-experiments serve-storm [--fast] [--json]   # solve-service fleet throughput/p99
//! mrlc-experiments serve-chaos            # seeded worker-kill storm (CI smoke)
//! mrlc-experiments bench-check <baseline.json> <current.json>  # CI perf gate
//! mrlc-experiments bench-check trend <baseline.json> <current.json> [--history=H.jsonl]
//! mrlc-experiments fig8 --trace t.jsonl --metrics m.json   # instrumented run
//! mrlc-experiments obs-report t.jsonl [w2.jsonl ...] [--metrics=m.json] [--top=N]  # summarize (merges >1)
//! mrlc-experiments obs-report hotspots t.jsonl [w2.jsonl ...] [--top=N] [--folded]
//! mrlc-experiments obs-report postmortem dump.jsonl   # render a black-box dump
//! mrlc-experiments serve-chaos [--dump-dir=DIR]       # write incident black boxes
//! ```
//!
//! `--trace PATH` installs a virtual-clock collector for the run and writes
//! a deterministic JSONL trace (byte-identical across runs under a fixed
//! seed); `--metrics PATH` writes the metrics registry as JSON. Both accept
//! `--flag PATH` and `--flag=PATH` forms and apply to any figure.

use wsn_experiments::*;

/// Parsed command line: positional words plus the handful of flags.
struct Cli {
    fast: bool,
    smoke: bool,
    json: bool,
    folded: bool,
    out_path: String,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    history_path: Option<String>,
    dump_dir: Option<String>,
    top_k: usize,
    positional: Vec<String>,
}

fn parse_cli(raw: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        fast: false,
        smoke: false,
        json: false,
        folded: false,
        out_path: "BENCH_ira.json".to_string(),
        trace_path: None,
        metrics_path: None,
        history_path: None,
        dump_dir: None,
        top_k: 20,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < raw.len() {
        let arg = &raw[i];
        // A flag's value may be glued (`--trace=t.jsonl`) or the next word.
        let value_of = |name: &str, i: &mut usize| -> Result<String, String> {
            if let Some(v) = arg.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
                return Ok(v.to_string());
            }
            *i += 1;
            raw.get(*i).cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        if arg == "--fast" {
            cli.fast = true;
        } else if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--json" {
            cli.json = true;
        } else if arg == "--folded" {
            cli.folded = true;
        } else if arg == "--history" || arg.starts_with("--history=") {
            cli.history_path = Some(value_of("--history", &mut i)?);
        } else if arg == "--dump-dir" || arg.starts_with("--dump-dir=") {
            cli.dump_dir = Some(value_of("--dump-dir", &mut i)?);
        } else if arg == "--out" || arg.starts_with("--out=") {
            cli.out_path = value_of("--out", &mut i)?;
        } else if arg == "--trace" || arg.starts_with("--trace=") {
            cli.trace_path = Some(value_of("--trace", &mut i)?);
        } else if arg == "--metrics" || arg.starts_with("--metrics=") {
            cli.metrics_path = Some(value_of("--metrics", &mut i)?);
        } else if arg == "--top" || arg.starts_with("--top=") {
            let v = value_of("--top", &mut i)?;
            cli.top_k = v.parse().map_err(|_| format!("--top expects a number, got `{v}`"))?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            cli.positional.push(arg.clone());
        }
        i += 1;
    }
    Ok(cli)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&raw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let fast = cli.fast;
    let smoke = cli.smoke;
    let json_out = cli.json;
    let out_path = cli.out_path.clone();
    let which = cli.positional.first().cloned().unwrap_or_else(|| "all".to_string());

    if which == "bench-check" {
        // `bench-check trend` is the perf-regression sentinel; without the
        // subcommand this is the classic two-file gate.
        let trend = cli.positional.get(1).map(String::as_str) == Some("trend");
        let first = if trend { 2 } else { 1 };
        let (Some(baseline), Some(current)) =
            (cli.positional.get(first), cli.positional.get(first + 1))
        else {
            eprintln!(
                "usage: mrlc-experiments bench-check [trend] <baseline.json> <current.json> \
                 [--history=H.jsonl]"
            );
            std::process::exit(2);
        };
        let result = if trend {
            bench_check::run_trend(baseline, current, cli.history_path.as_deref())
        } else {
            bench_check::run(baseline, current)
        };
        match result {
            Ok((text, passed)) => {
                print!("{text}");
                if !passed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if which == "obs-report" {
        match cli.positional.get(1).map(String::as_str) {
            Some("postmortem") => {
                let Some(dump) = cli.positional.get(2) else {
                    eprintln!("usage: mrlc-experiments obs-report postmortem <dump.jsonl>");
                    std::process::exit(2);
                };
                match obs_report::run_postmortem(dump) {
                    Ok(text) => print!("{text}"),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
                return;
            }
            Some("hotspots") => {
                let traces = &cli.positional[2..];
                if traces.is_empty() {
                    eprintln!(
                        "usage: mrlc-experiments obs-report hotspots <trace.jsonl>... \
                         [--top=N] [--folded]"
                    );
                    std::process::exit(2);
                }
                match obs_report::run_hotspots(traces, cli.top_k, cli.folded) {
                    Ok(text) => print!("{text}"),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
                return;
            }
            _ => {}
        }
        let traces = &cli.positional[1..];
        if traces.is_empty() && cli.metrics_path.is_none() {
            eprintln!(
                "usage: mrlc-experiments obs-report [<trace.jsonl>...] [--metrics=m.json] [--top=N]"
            );
            std::process::exit(2);
        }
        if !traces.is_empty() {
            // One trace reports directly; several (a fleet's per-worker
            // traces) are merged into a single timeline first.
            let result = if traces.len() == 1 {
                obs_report::run(&traces[0], cli.top_k)
            } else {
                obs_report::run_merged(traces, cli.top_k)
            };
            match result {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &cli.metrics_path {
            match obs_report::run_metrics(path) {
                Ok(text) => {
                    if !traces.is_empty() {
                        println!();
                    }
                    print!("{text}");
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    // `--trace` needs the deterministic virtual clock; `--metrics` alone
    // only needs counters, so a detached (metrics-only) collector suffices.
    let obs = if cli.trace_path.is_some() {
        Some(wsn_obs::Obs::with_trace(wsn_obs::Clock::virtual_ticks()))
    } else if cli.metrics_path.is_some() {
        Some(wsn_obs::Obs::detached())
    } else {
        None
    };
    let ambient = obs.clone().map(wsn_obs::install);

    let run_one = |name: &str| match name {
        "fig1" => {
            let cfg = if fast { fig1::Config::fast() } else { fig1::Config::default() };
            print!("{}", fig1::render(&fig1::run(&cfg)));
        }
        "fig2" => {
            let cfg = if fast { fig2::Config::fast() } else { fig2::Config::default() };
            print!("{}", fig2::render(&fig2::run(&cfg)));
        }
        "fig3" => {
            let cfg = if fast { fig3::Config::fast() } else { fig3::Config::default() };
            print!("{}", fig3::render(&fig3::run(&cfg)));
        }
        "fig4" => print!("{}", fig4::render(&fig4::run())),
        "fig6" => print!("{}", fig6::render(&fig6::run(2015))),
        "fig5" => print!("{}", fig5::render(&fig5::run())),
        "fig7" => {
            let cfg = if fast { fig7::Config::fast() } else { fig7::Config::default() };
            print!("{}", fig7::render(&fig7::run(&cfg)));
        }
        "fig8" => {
            let cfg = if fast { fig8::Config::fast() } else { fig8::Config::default() };
            print!(
                "{}",
                fig8::render(&fig8::run(&cfg), "Fig. 8 — random graphs, equal energy (3000 J)")
            );
        }
        "fig9" => {
            let cfg = if fast { fig9::fast_config() } else { fig9::paper_config() };
            print!("{}", fig9::render(&fig9::run(&cfg)));
        }
        "fig10" => {
            let cfg = if fast { fig10::Config::fast() } else { fig10::Config::default() };
            print!("{}", fig10::render(&fig10::run(&cfg)));
        }
        "fig11" | "fig12" | "fig13" => {
            let cfg = if fast { fig11_13::Config::fast() } else { fig11_13::Config::default() };
            let records = fig11_13::run(&cfg);
            match name {
                "fig11" => print!("{}", fig11_13::render_fig11(&records)),
                "fig12" => print!("{}", fig11_13::render_fig12(&records)),
                _ => print!("{}", fig11_13::render_fig13(&records)),
            }
        }
        "pareto" => {
            let cfg = if fast { ext_pareto::Config::fast() } else { ext_pareto::Config::default() };
            let (all, dominant) = ext_pareto::run(&cfg);
            print!("{}", ext_pareto::render(&all, &dominant));
        }
        "optgap" => {
            let cfg = if fast { ext_optgap::Config::fast() } else { ext_optgap::Config::default() };
            print!("{}", ext_optgap::render(&ext_optgap::run(&cfg)));
        }
        "latency" => {
            let cfg =
                if fast { ext_latency::Config::fast() } else { ext_latency::Config::default() };
            print!("{}", ext_latency::render(&ext_latency::run(&cfg)));
        }
        "scalability" => {
            let cfg = if fast {
                ext_scalability::Config::fast()
            } else {
                ext_scalability::Config::default()
            };
            print!("{}", ext_scalability::render(&ext_scalability::run(&cfg)));
        }
        "stability" => {
            let cfg =
                if fast { ext_stability::Config::fast() } else { ext_stability::Config::default() };
            print!("{}", ext_stability::render(&ext_stability::run(&cfg)));
        }
        "solvers" => {
            let cfg =
                if fast { ext_solvers::Config::fast() } else { ext_solvers::Config::default() };
            print!("{}", ext_solvers::render(&ext_solvers::run(&cfg)));
        }
        "spatial" => {
            let cfg =
                if fast { ext_spatial::Config::fast() } else { ext_spatial::Config::default() };
            print!("{}", ext_spatial::render(&ext_spatial::run(&cfg)));
        }
        "drift" => {
            let cfg = if fast { ext_drift::Config::fast() } else { ext_drift::Config::default() };
            print!("{}", ext_drift::render(&ext_drift::run(&cfg)));
        }
        "faults" => {
            let cfg = if fast { ext_faults::Config::fast() } else { ext_faults::Config::default() };
            print!("{}", ext_faults::render(&ext_faults::run(&cfg)));
        }
        "resilience" => {
            let cfg = if fast {
                ext_resilience::Config::fast()
            } else {
                ext_resilience::Config::default()
            };
            print!("{}", ext_resilience::render(&ext_resilience::run(&cfg)));
        }
        "ablation" => {
            let (instances, rounds) = if fast { (4, 15) } else { (20, 60) };
            print!("{}", ablation::render_removal(&ablation::removal_policy(instances, 1234)));
            println!();
            print!("{}", ablation::render_ilu(&ablation::ilu_improving_links(rounds, 77)));
        }
        "serve-storm" => {
            let cfg = if fast || smoke {
                serve_storm::Config::fast()
            } else {
                serve_storm::Config::default()
            };
            let stats = serve_storm::run(&cfg);
            if json_out {
                println!("{}", serve_storm::to_json(&stats));
            } else {
                print!("{}", serve_storm::render(&stats));
            }
        }
        "serve-chaos" => {
            // The CI smoke job's entry point: the fast storm with the
            // seeded worker-kill schedule on. A non-typed outcome or a
            // leaked worker fails the process.
            let stats = serve_storm::run(&serve_storm::Config::chaos());
            print!("{}", serve_storm::render(&stats));
            if let Some(dir) = &cli.dump_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {dir}: {e}");
                    std::process::exit(1);
                }
                for (i, b) in stats.black_boxes.iter().enumerate() {
                    let path = format!("{dir}/blackbox-{i:02}-{}.jsonl", b.reason);
                    if let Err(e) = std::fs::write(&path, &b.jsonl) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            if !stats.all_typed || !stats.no_leaked_workers {
                eprintln!("serve-chaos: invariant violated (typed outcomes / leaked workers)");
                std::process::exit(1);
            }
            // A seeded kill schedule that left no black box means the
            // flight recorder is broken — fail the smoke, not just the
            // unit suite.
            if !stats.black_boxes.iter().any(|b| b.reason == "worker-crash") {
                eprintln!("serve-chaos: no worker-crash black box was cut");
                std::process::exit(1);
            }
        }
        "bench-perf" => {
            let cfg = if smoke || fast {
                bench_perf::Config::smoke()
            } else {
                bench_perf::Config::default()
            };
            let results = bench_perf::run(&cfg);
            print!("{}", bench_perf::render(&results));
            let json = bench_perf::to_json(&results, cfg.smoke);
            match std::fs::write(&out_path, &json) {
                Ok(()) => println!("wrote {out_path}"),
                Err(e) => {
                    eprintln!("cannot write {out_path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown figure `{other}`");
            eprintln!(
                "usage: mrlc-experiments [all|fig1..fig13|ablation|pareto|optgap|latency|drift|spatial|solvers|stability|scalability|faults|resilience|serve-storm|serve-chaos|bench-perf|bench-check|obs-report] [--fast|--smoke] [--out=PATH] [--trace=PATH] [--metrics=PATH] [--history=PATH] [--dump-dir=DIR] [--folded]"
            );
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablation",
            "pareto",
            "optgap",
            "latency",
            "drift",
            "spatial",
            "solvers",
            "stability",
            "scalability",
            "faults",
            "resilience",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(&which);
    }

    // Close every span before exporting (the guard pops the collector).
    drop(ambient);
    if let Some(obs) = obs {
        if let Some(path) = &cli.trace_path {
            if let Err(e) = std::fs::write(path, obs.trace_jsonl()) {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote trace {path}");
        }
        if let Some(path) = &cli.metrics_path {
            if let Err(e) = std::fs::write(path, obs.registry().to_json()) {
                eprintln!("cannot write metrics {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote metrics {path}");
        }
    }
}

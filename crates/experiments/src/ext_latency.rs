//! Extension: the latency cost of lifetime/reliability optimization.
//!
//! Related work (Shen et al., §II) constrains delay; MRLC does not. This
//! experiment quantifies what IRA's trees give up in aggregation latency
//! (tree depth under ideal scheduling) relative to SPT/MST/AAML across
//! random instances.

use crate::parallel::parallel_map;
use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_baselines::{mst, spt};
use wsn_model::EnergyModel;
use wsn_sim::{greedy_schedule, mean_hop_distance, round_latency_slots};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Instances.
    pub instances: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { instances: 40, base_seed: 5100 }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { instances: 6, ..Config::default() }
    }
}

/// Mean latency metrics per scheme.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scheme name.
    pub scheme: String,
    /// Mean tree depth (ideal round latency in slots).
    pub mean_depth: f64,
    /// Mean of per-node hop distances.
    pub mean_hops: f64,
    /// Mean interference-aware TDMA schedule length.
    pub mean_tdma: f64,
}

/// Runs the comparison.
pub fn run(config: &Config) -> Vec<Row> {
    let cfg = *config;
    let per_instance = parallel_map(cfg.instances, move |i| {
        let mut rng = StdRng::seed_from_u64(cfg.base_seed + i as u64);
        let net = random_graph(&RandomGraphConfig::default(), &mut rng).expect("connected");
        let model = EnergyModel::PAPER;
        let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
        let ira = ira_at(&net, model, aaml.lifetime).expect("feasible at L_AAML");
        let mst_t = mst(&net).expect("connected");
        let spt_t = spt(&net).expect("connected");
        [("AAML", aaml.tree), ("IRA", ira.tree), ("MST", mst_t), ("SPT", spt_t)].map(|(name, t)| {
            (
                name,
                round_latency_slots(&t) as f64,
                mean_hop_distance(&t),
                greedy_schedule(&net, &t).length() as f64,
            )
        })
    });
    let schemes = ["AAML", "IRA", "MST", "SPT"];
    schemes
        .iter()
        .enumerate()
        .map(|(k, &scheme)| {
            let depth: f64 =
                per_instance.iter().map(|r| r[k].1).sum::<f64>() / cfg.instances as f64;
            let hops: f64 = per_instance.iter().map(|r| r[k].2).sum::<f64>() / cfg.instances as f64;
            let tdma: f64 = per_instance.iter().map(|r| r[k].3).sum::<f64>() / cfg.instances as f64;
            Row { scheme: scheme.to_string(), mean_depth: depth, mean_hops: hops, mean_tdma: tdma }
        })
        .collect()
}

/// Renders the latency table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["scheme", "mean depth (slots)", "mean hops", "mean TDMA length"]);
    for r in rows {
        t.push([r.scheme.clone(), f(r.mean_depth, 2), f(r.mean_hops, 2), f(r.mean_tdma, 2)]);
    }
    format!("Extension — aggregation latency of the candidate trees\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spt_is_the_latency_winner_and_ira_pays_for_lifetime() {
        let rows = run(&Config { instances: 10, ..Config::default() });
        let by = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
        // SPT minimizes path costs and, on q ∈ (0.95, 1) graphs, is shallow.
        assert!(by("SPT").mean_depth <= by("IRA").mean_depth + 1e-9);
        // IRA at L_AAML spreads children thin, which deepens the tree.
        assert!(by("IRA").mean_depth >= by("MST").mean_depth - 1e-9);
        for r in &rows {
            assert!(r.mean_depth >= 1.0);
            assert!(r.mean_hops > 0.0);
            // The interference-aware schedule is never shorter than the
            // causality floor (tree depth).
            assert!(r.mean_tdma >= r.mean_depth - 1e-9);
        }
    }

    #[test]
    fn render_lists_all_schemes() {
        let text = render(&run(&Config::fast()));
        for s in ["AAML", "IRA", "MST", "SPT"] {
            assert!(text.contains(s));
        }
    }
}

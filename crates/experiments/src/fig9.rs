//! Fig. 9 — random graphs with heterogeneous initial energy
//! (`I(v) ∈ [1500 J, 5000 J]`): per-instance cost of AAML, IRA, MST.
//!
//! The paper's observations: IRA and MST run even closer together than with
//! equal energy (weak nodes become leaves, strong nodes carry the load),
//! while AAML stays unstable — "the cost of AAML is at least 50% higher
//! than that of IRA" in most situations.

use crate::fig8::{self, Row};
use wsn_testbed::EnergyDistribution;

/// Experiment parameters (a Fig. 8 configuration with heterogeneous
/// energy).
pub type Config = fig8::Config;

/// The paper's Fig. 9 configuration.
pub fn paper_config() -> Config {
    Config {
        energy: EnergyDistribution::Heterogeneous { lo: 1500.0, hi: 5000.0 },
        base_seed: 900,
        ..Config::default()
    }
}

/// Reduced workload for tests.
pub fn fast_config() -> Config {
    Config { instances: 8, ..paper_config() }
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    fig8::run(config)
}

/// Renders the figure.
pub fn render(rows: &[Row]) -> String {
    fig8::render(rows, "Fig. 9 — random graphs, heterogeneous initial energy [1500 J, 5000 J]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_energy_keeps_ira_near_mst() {
        let rows = run(&Config { instances: 10, ..paper_config() });
        let mean_ira: f64 = rows.iter().map(|r| r.ira_cost).sum::<f64>() / 10.0;
        let mean_mst: f64 = rows.iter().map(|r| r.mst_cost).sum::<f64>() / 10.0;
        let mean_aaml: f64 = rows.iter().map(|r| r.aaml_cost).sum::<f64>() / 10.0;
        // "the IRA and MST curves are more closer" — small absolute gap.
        assert!(mean_ira - mean_mst < 30.0, "IRA {mean_ira} should hug MST {mean_mst}");
        // "the cost of AAML is at least 50% higher than that of IRA in most
        // situations" — check on the mean.
        assert!(mean_aaml > 1.5 * mean_ira, "AAML {mean_aaml} vs IRA {mean_ira}");
    }

    #[test]
    fn render_labels_the_figure() {
        let rows = run(&fast_config());
        assert!(render(&rows).contains("Fig. 9"));
    }
}

//! Fig. 6 — the DFL system. The paper shows a photograph; we render the
//! deployment the simulator builds instead: an ASCII map of the 16 tripods
//! on the square perimeter plus a link-quality census, so a reader can see
//! the scenario every DFL experiment runs on.

use crate::table::{f, Table};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

/// The rendered map plus link census.
pub struct Artifacts {
    /// ASCII map of node positions.
    pub map: String,
    /// (quality bucket label, link count).
    pub census: Vec<(String, usize)>,
    /// Total links after estimation/pruning.
    pub total_links: usize,
}

/// Builds the map and census from the default DFL trace.
pub fn run(seed: u64) -> Artifacts {
    let cfg = DflConfig::default();
    let net = dfl_network(&cfg, &LinkModel::default(), seed).expect("DFL is connected");
    let pos = cfg.positions();

    // Character grid: 0.3 m per column, 0.45 m per row.
    let cols = (cfg.side_m / 0.3) as usize + 3;
    let rows = (cfg.side_m / 0.45) as usize + 2;
    let mut grid = vec![vec![' '; cols]; rows];
    for (i, &(x, y)) in pos.iter().enumerate() {
        let c = (x / 0.3).round() as usize;
        let r = rows - 1 - (y / 0.45).round() as usize;
        let label: Vec<char> = i.to_string().chars().collect();
        for (k, &ch) in label.iter().enumerate() {
            if c + k < cols {
                grid[r][c + k] = ch;
            }
        }
    }
    let map = grid
        .into_iter()
        .map(|row| row.into_iter().collect::<String>().trim_end().to_string())
        .collect::<Vec<_>>()
        .join("\n");

    let buckets = [
        ("q >= 0.99", 0.99..=1.0),
        ("0.95 <= q < 0.99", 0.95..=0.99),
        ("0.50 <= q < 0.95", 0.50..=0.95),
        ("q < 0.50", 0.0..=0.50),
    ];
    let census = buckets
        .iter()
        .map(|(label, range)| {
            let count = net
                .links()
                .iter()
                .filter(|l| {
                    let q = l.prr().value();
                    // Half-open buckets, closed at the top for the first.
                    if *label == "q >= 0.99" {
                        q >= 0.99
                    } else {
                        q >= *range.start() && q < *range.end()
                    }
                })
                .count();
            (label.to_string(), count)
        })
        .collect();
    Artifacts { map, census, total_links: net.num_edges() }
}

/// Renders the figure.
pub fn render(a: &Artifacts) -> String {
    let mut t = Table::new(["link quality", "count", "share"]);
    for (label, count) in &a.census {
        t.push([
            label.clone(),
            count.to_string(),
            f(*count as f64 / a.total_links as f64 * 100.0, 1) + "%",
        ]);
    }
    format!(
        "Fig. 6 — the DFL deployment (16 tripods, 3.6 m square, sink = node 0)\n\n{}\n\n\
         estimated links: {}\n{}",
        a.map,
        a.total_links,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_places_all_sixteen_nodes() {
        let a = run(2015);
        for i in 0..16 {
            assert!(a.map.contains(&i.to_string()), "node {i} missing from the map");
        }
    }

    #[test]
    fn census_covers_every_link() {
        let a = run(2015);
        let total: usize = a.census.iter().map(|(_, c)| c).sum();
        assert_eq!(total, a.total_links);
        // The DFL regime: a solid majority of strong links, some weak ones.
        let strong: usize = a
            .census
            .iter()
            .filter(|(l, _)| l.starts_with("q >= 0.99") || l.starts_with("0.95"))
            .map(|(_, c)| c)
            .sum();
        assert!(strong * 2 > a.total_links, "strong links should dominate");
        let weak = a.census.last().unwrap().1;
        assert!(weak > 0, "some weak diagonals expected");
    }

    #[test]
    fn render_includes_map_and_table() {
        let text = render(&run(2015));
        assert!(text.contains("Fig. 6"));
        assert!(text.contains("estimated links"));
        assert!(text.contains('%'));
    }
}

//! Extension: IRA's empirical optimality gap against the exact
//! branch-and-bound solver.
//!
//! The paper proves `C(IRA) ≤ OPT(L')` but never measures the gap to
//! `OPT(LC)`; with [`mrlc_core::exact`] we can. On evaluation-scale random
//! instances the gap turns out to be tiny — IRA's relaxation is nearly
//! exact in practice.

use crate::parallel::parallel_map;
use crate::table::{f, Table};
use mrlc_core::{solve_exact, solve_ira, ExactConfig, ExactOutcome, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{lifetime, EnergyModel, PaperCost};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Random instances to measure.
    pub instances: usize,
    /// Nodes per instance (branch-and-bound scale).
    pub n: usize,
    /// Link probability.
    pub link_probability: f64,
    /// Children bound that defines LC (`LC = 0.999·L(I_min, k)`).
    pub children_at_lc: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Branch-and-bound node budget per instance.
    pub node_limit: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            instances: 30,
            n: 12,
            link_probability: 0.5,
            children_at_lc: 4,
            base_seed: 4400,
            node_limit: 5_000_000,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { instances: 6, n: 10, ..Config::default() }
    }
}

/// Per-instance comparison.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Instance index.
    pub instance: usize,
    /// Whether IRA's tree met LC (gaps are only meaningful when it did —
    /// a fallback tree that violates LC solves a *relaxed* problem and may
    /// undercut the constrained optimum).
    pub meets_lc: bool,
    /// IRA cost (paper units).
    pub ira_cost: f64,
    /// Exact optimum at LC (paper units); NaN when the search hit its node
    /// budget.
    pub opt_cost: f64,
    /// Relative gap `(IRA − OPT)/OPT` (0 when OPT is 0).
    pub gap: f64,
    /// Branch-and-bound nodes explored.
    pub bnb_nodes: u64,
}

/// Runs the gap study.
pub fn run(config: &Config) -> Vec<Row> {
    let cfg = *config;
    parallel_map(cfg.instances, move |i| {
        let mut rng = StdRng::seed_from_u64(cfg.base_seed + i as u64);
        let gcfg = RandomGraphConfig {
            n: cfg.n,
            link_probability: cfg.link_probability,
            ..RandomGraphConfig::default()
        };
        let net = random_graph(&gcfg, &mut rng).expect("connected instance");
        let model = EnergyModel::PAPER;
        let lc =
            lifetime::node_lifetime(net.min_initial_energy(), &model, cfg.children_at_lc) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let ira = solve_ira(&inst, &IraConfig::default()).expect("feasible by construction");
        let (opt_cost, gap, bnb_nodes) =
            match solve_exact(&inst, &ExactConfig { node_limit: cfg.node_limit }) {
                ExactOutcome::Optimal { cost, nodes, .. } => {
                    let gap = if cost > 1e-12 { (ira.cost - cost) / cost } else { 0.0 };
                    (PaperCost::from_nat(cost).0, gap, nodes)
                }
                ExactOutcome::Infeasible { nodes } => {
                    panic!("instance {i} infeasible after {nodes} nodes — LC was chosen feasible")
                }
                ExactOutcome::NodeLimit => (f64::NAN, f64::NAN, cfg.node_limit),
            };
        Row {
            instance: i,
            meets_lc: ira.meets_lc,
            ira_cost: PaperCost::from_nat(ira.cost).0,
            opt_cost,
            gap: if ira.meets_lc { gap } else { f64::NAN },
            bnb_nodes,
        }
    })
}

/// Renders the gap table plus aggregate statistics.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(["instance", "meets LC", "IRA cost", "OPT cost", "gap %", "B&B nodes"]);
    for r in rows {
        t.push([
            r.instance.to_string(),
            r.meets_lc.to_string(),
            f(r.ira_cost, 2),
            f(r.opt_cost, 2),
            f(r.gap * 100.0, 3),
            r.bnb_nodes.to_string(),
        ]);
    }
    let closed: Vec<&Row> = rows.iter().filter(|r| r.gap.is_finite()).collect();
    let mean_gap = closed.iter().map(|r| r.gap).sum::<f64>() / closed.len().max(1) as f64;
    let max_gap = closed.iter().map(|r| r.gap).fold(0.0, f64::max);
    format!(
        "Extension — IRA optimality gap vs. exact branch-and-bound\n{}\n\
         closed: {}/{}  mean gap {:.3}%  max gap {:.3}%\n",
        t.render(),
        closed.len(),
        rows.len(),
        mean_gap * 100.0,
        max_gap * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_small_and_never_negative() {
        let rows = run(&Config::fast());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            if r.gap.is_finite() {
                assert!(r.meets_lc);
                assert!(r.gap >= -1e-9, "IRA beat the exact optimum?! gap {}", r.gap);
                assert!(
                    r.gap < 0.5,
                    "instance {}: gap {:.1}% is implausibly large",
                    r.instance,
                    r.gap * 100.0
                );
            }
        }
        // At this LC (children bound 4, so L' keeps 2 of slack) the strict
        // solve succeeds and most instances yield measurable gaps.
        let measured = rows.iter().filter(|r| r.gap.is_finite()).count();
        assert!(measured >= 4, "only {measured}/6 gaps measured");
    }

    #[test]
    fn render_reports_aggregates() {
        let rows = run(&Config { instances: 3, ..Config::fast() });
        let text = render(&rows);
        assert!(text.contains("mean gap"));
        assert!(text.contains("closed: "));
    }
}

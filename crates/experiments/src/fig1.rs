//! Fig. 1 — average packets per aggregation round vs. average link quality
//! under retransmit-until-success, for several network sizes.
//!
//! The paper's anchor: at 16 nodes the per-round packet count grows from 15
//! (q = 1.0) to 150 (q = 0.1) — "nodes spend 90% of energy in
//! retransmission".

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_graph::random_spanning_tree;
use wsn_model::EnergyModel;
use wsn_sim::energy_accounting::retransmission_ledger;
use wsn_sim::retransmission::{average_packets_per_round, expected_packets_per_round};
use wsn_testbed::{random_graph, RandomGraphConfig};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network sizes (paper shows 16 plus larger networks).
    pub sizes: Vec<usize>,
    /// Average link qualities swept from good to terrible.
    pub qualities: Vec<f64>,
    /// Simulated rounds per data point.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes: vec![16, 32, 64],
            qualities: (1..=10).rev().map(|i| i as f64 / 10.0).collect(),
            rounds: 2000,
            seed: 1,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { sizes: vec![16, 32], qualities: vec![1.0, 0.5, 0.1], rounds: 300, seed: 1 }
    }
}

/// One data point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Network size.
    pub n: usize,
    /// Average link quality.
    pub quality: f64,
    /// Analytic expectation `Σ 1/q = (n−1)/q`.
    pub expected_packets: f64,
    /// Simulated average.
    pub simulated_packets: f64,
    /// Fraction of transmit energy spent on retransmissions (the paper's
    /// "nodes spend 90% of energy in retransmission" at q = 0.1).
    pub retx_energy_fraction: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Point> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for &n in &config.sizes {
        for &q in &config.qualities {
            let gcfg = RandomGraphConfig {
                n,
                link_probability: 0.4,
                prr_range: (q, q),
                ..RandomGraphConfig::default()
            };
            let net = random_graph(&gcfg, &mut rng).expect("connected sample");
            let tree = random_spanning_tree(&net, &mut rng).expect("spanning tree");
            let expected = expected_packets_per_round(&net, &tree);
            let simulated = average_packets_per_round(&net, &tree, config.rounds, &mut rng);
            let ledger = retransmission_ledger(
                &net,
                &tree,
                &EnergyModel::PAPER,
                config.rounds.min(500),
                10_000,
                &mut rng,
            );
            out.push(Point {
                n,
                quality: q,
                expected_packets: expected,
                simulated_packets: simulated,
                retx_energy_fraction: ledger.retx_fraction(),
            });
        }
    }
    out
}

/// Renders the paper-style series.
pub fn render(points: &[Point]) -> String {
    let mut t =
        Table::new(["n", "avg quality", "expected pkts", "simulated pkts", "retx energy %"]);
    for p in points {
        t.push([
            p.n.to_string(),
            f(p.quality, 1),
            f(p.expected_packets, 1),
            f(p.simulated_packets, 1),
            f(p.retx_energy_fraction * 100.0, 1),
        ]);
    }
    format!(
        "Fig. 1 — packets per aggregation round vs. link quality (retransmission mode)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_at_16_nodes() {
        let pts = run(&Config { sizes: vec![16], qualities: vec![1.0, 0.1], rounds: 500, seed: 2 });
        let perfect = &pts[0];
        let terrible = &pts[1];
        assert!((perfect.expected_packets - 15.0).abs() < 1e-9);
        assert!((terrible.expected_packets - 150.0).abs() < 1e-9);
        // Simulation tracks expectation within a few percent.
        assert!((terrible.simulated_packets - 150.0).abs() < 10.0);
        // "nodes spend 90% of energy in retransmission" at q = 0.1.
        assert!((terrible.retx_energy_fraction - 0.9).abs() < 0.02);
        assert_eq!(perfect.retx_energy_fraction, 0.0);
    }

    #[test]
    fn larger_networks_cost_more() {
        let pts = run(&Config::fast());
        for q in [1.0, 0.5, 0.1] {
            let p16 = pts.iter().find(|p| p.n == 16 && p.quality == q).unwrap();
            let p32 = pts.iter().find(|p| p.n == 32 && p.quality == q).unwrap();
            assert!(p32.expected_packets > p16.expected_packets);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let pts = run(&Config::fast());
        let text = render(&pts);
        assert_eq!(text.lines().count(), pts.len() + 3);
    }
}

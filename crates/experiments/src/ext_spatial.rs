//! Extension: the schemes on *spatially embedded* networks.
//!
//! §VII-B's `G(n, p)` draws link quality independently of topology; in a
//! geometric deployment long links are weak links, which punishes
//! quality-blind tree construction even harder. This experiment reruns the
//! Fig. 8 comparison on random geometric deployments.

use crate::parallel::parallel_map;
use crate::table::{f, Table};
use crate::workloads::{aaml_paper_protocol, ira_at, paper_cost};
use wsn_model::{reliability, EnergyModel};
use wsn_radio::LinkModel;
use wsn_testbed::{geometric_deployment, GeometricConfig};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Deployments to sample.
    pub instances: usize,
    /// Geometric scenario parameters.
    pub geometry: GeometricConfig,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            instances: 40,
            // A wider area than the default pushes more links into the
            // transitional region, where quality-blindness really hurts.
            geometry: GeometricConfig { side_m: 9.0, ..GeometricConfig::default() },
            base_seed: 6200,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { instances: 6, ..Config::default() }
    }
}

/// Per-instance results.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Instance index.
    pub instance: usize,
    /// AAML cost (paper units) and reliability.
    pub aaml: (f64, f64),
    /// IRA (at `L_AAML`) cost and reliability.
    pub ira: (f64, f64),
    /// MST cost and reliability.
    pub mst: (f64, f64),
}

/// Runs the spatial comparison.
pub fn run(config: &Config) -> Vec<Row> {
    let cfg = *config;
    parallel_map(cfg.instances, move |i| {
        let dep =
            geometric_deployment(&cfg.geometry, &LinkModel::default(), cfg.base_seed + i as u64)
                .expect("connected deployment");
        let net = dep.network;
        let model = EnergyModel::PAPER;
        let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
        let ira = ira_at(&net, model, aaml.lifetime).expect("feasible at LC");
        let mst = wsn_baselines::mst(&net).expect("connected");
        Row {
            instance: i,
            aaml: (paper_cost(&net, &aaml.tree), reliability::tree_reliability(&net, &aaml.tree)),
            ira: (paper_cost(&net, &ira.tree), ira.reliability),
            mst: (paper_cost(&net, &mst), reliability::tree_reliability(&net, &mst)),
        }
    })
}

/// Renders the spatial table plus means.
pub fn render(rows: &[Row]) -> String {
    let mut t =
        Table::new(["instance", "AAML cost", "IRA cost", "MST cost", "AAML rel", "IRA rel"]);
    for r in rows {
        t.push([
            r.instance.to_string(),
            f(r.aaml.0, 1),
            f(r.ira.0, 1),
            f(r.mst.0, 1),
            f(r.aaml.1, 3),
            f(r.ira.1, 3),
        ]);
    }
    let mean = |sel: fn(&Row) -> f64| rows.iter().map(sel).sum::<f64>() / rows.len().max(1) as f64;
    format!(
        "Extension — geometric deployments (quality follows distance)\n{}\n\
         means: AAML rel {:.3} vs IRA rel {:.3} (cost ratio IRA/AAML = {:.2})\n",
        t.render(),
        mean(|r| r.aaml.1),
        mean(|r| r.ira.1),
        mean(|r| r.ira.0) / mean(|r| r.aaml.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_gap_is_at_least_as_dramatic() {
        let rows = run(&Config { instances: 8, ..Config::default() });
        let mean_aaml_rel: f64 = rows.iter().map(|r| r.aaml.1).sum::<f64>() / 8.0;
        let mean_ira_rel: f64 = rows.iter().map(|r| r.ira.1).sum::<f64>() / 8.0;
        // On geometric networks AAML's quality-blindness costs real
        // reliability even though the paper's q ≥ 0.95 pre-filter shields
        // it from the worst links; IRA keeps a consistent lead.
        assert!(
            mean_ira_rel > mean_aaml_rel + 0.01,
            "IRA {mean_ira_rel:.3} vs AAML {mean_aaml_rel:.3}"
        );
        let mean_ira_cost: f64 = rows.iter().map(|r| r.ira.0).sum::<f64>() / 8.0;
        let mean_aaml_cost: f64 = rows.iter().map(|r| r.aaml.0).sum::<f64>() / 8.0;
        assert!(
            mean_ira_cost < 0.5 * mean_aaml_cost,
            "cost ratio {:.2}",
            mean_ira_cost / mean_aaml_cost
        );
        for r in &rows {
            assert!(r.mst.0 <= r.ira.0 + 1e-6, "MST is the cost floor");
        }
    }

    #[test]
    fn render_reports_means() {
        let text = render(&run(&Config::fast()));
        assert!(text.contains("means:"));
        assert!(text.contains("geometric"));
    }
}

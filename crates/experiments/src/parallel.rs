//! Crossbeam-scoped parallel sweeps for the 100-instance experiments.

use parking_lot::Mutex;

/// Maps `f` over `0..count` in parallel (one logical task per index,
/// work-split across the machine's cores with crossbeam scoped threads)
/// and returns the results in index order.
///
/// `f` must be deterministic in its index — every experiment seeds its RNG
/// from the index — so parallel and serial runs produce identical output.
pub fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                results.lock().push((i, value));
            });
        }
    })
    .expect("worker panicked during a parallel sweep");
    let mut collected = results.into_inner();
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_serial_execution() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        let par = parallel_map(37, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(serial, par);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        parallel_map(8, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}

//! Parallel sweep utilities, re-exported from [`wsn_util`].
//!
//! The implementation moved to the shared `wsn-util` crate so the LP
//! separation oracle (`mrlc-core`) can fan min-cut queries across cores
//! with the same deterministic collect-by-index contract the experiment
//! sweeps rely on. This module remains the experiments-local name.

pub use wsn_util::{parallel_map, parallel_map_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_serial_execution() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        let par = parallel_map(37, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(serial, par);
    }
}

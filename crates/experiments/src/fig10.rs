//! Fig. 10 — average cost vs. link connection probability.
//!
//! The paper's observation: AAML's cost *grows* with density (more links ⇒
//! more forwarding choices it exploits without regard for quality), while
//! IRA and MST stay essentially flat (they only care about the cheap links,
//! which exist at every density).

use crate::fig8;
use crate::table::{f, Table};
use wsn_sim::mean;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Link probabilities to sweep.
    pub probabilities: Vec<f64>,
    /// Graphs per probability (paper: 100).
    pub instances: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            probabilities: vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            instances: 100,
            base_seed: 1000,
        }
    }
}

impl Config {
    /// Reduced workload for tests.
    pub fn fast() -> Self {
        Config { probabilities: vec![0.3, 0.6, 0.9], instances: 6, ..Config::default() }
    }
}

/// One density point (averages over the instances).
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Link probability.
    pub probability: f64,
    /// Mean AAML cost.
    pub aaml: f64,
    /// Mean IRA cost.
    pub ira: f64,
    /// Mean MST cost.
    pub mst: f64,
}

/// Runs the density sweep.
pub fn run(config: &Config) -> Vec<Point> {
    config
        .probabilities
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let sub = fig8::Config {
                instances: config.instances,
                link_probability: p,
                base_seed: config.base_seed + 10_000 * k as u64,
                ..fig8::Config::default()
            };
            let rows = fig8::run(&sub);
            Point {
                probability: p,
                aaml: mean(&rows.iter().map(|r| r.aaml_cost).collect::<Vec<_>>()),
                ira: mean(&rows.iter().map(|r| r.ira_cost).collect::<Vec<_>>()),
                mst: mean(&rows.iter().map(|r| r.mst_cost).collect::<Vec<_>>()),
            }
        })
        .collect()
}

/// Renders the figure's series.
pub fn render(points: &[Point]) -> String {
    let mut t = Table::new(["link prob", "AAML", "IRA", "MST"]);
    for p in points {
        t.push([f(p.probability, 1), f(p.aaml, 1), f(p.ira, 1), f(p.mst, 1)]);
    }
    format!("Fig. 10 — average cost vs. link connection probability\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aaml_grows_with_density_while_ira_stays_flat() {
        let pts = run(&Config { probabilities: vec![0.3, 0.9], instances: 10, base_seed: 1000 });
        let sparse = &pts[0];
        let dense = &pts[1];
        // AAML is insensitive to density in the right way: it keeps paying
        // full price (its level stays within ±30% while the others halve).
        assert!(
            (dense.aaml - sparse.aaml).abs() < 0.3 * sparse.aaml,
            "AAML should stay level: {} -> {}",
            sparse.aaml,
            dense.aaml
        );
        // The AAML-vs-IRA gap widens with density — the paper's headline
        // for this figure (more links help quality-aware trees only).
        let gap_sparse = sparse.aaml - sparse.ira;
        let gap_dense = dense.aaml - dense.ira;
        assert!(gap_dense > gap_sparse, "gap must widen: {gap_sparse} -> {gap_dense}");
        // Ordering at every density, and IRA hugging the MST bound.
        for p in &pts {
            assert!(p.mst <= p.ira + 1e-6);
            assert!(p.ira < 0.7 * p.aaml);
            assert!(p.ira - p.mst < 60.0, "IRA {} vs MST {}", p.ira, p.mst);
        }
    }

    #[test]
    fn render_has_one_row_per_probability() {
        let cfg = Config::fast();
        let pts = run(&cfg);
        let text = render(&pts);
        assert_eq!(text.lines().count(), cfg.probabilities.len() + 3);
    }
}

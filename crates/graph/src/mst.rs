//! Minimum spanning trees: Kruskal and Prim.
//!
//! Both operate on plain weighted edge lists so the cutting-plane driver can
//! run them on arbitrary support subsets; [`mst_tree`] is the convenience
//! wrapper producing a rooted [`AggregationTree`] from a [`Network`] using
//! the paper's `c_e = −log q_e` edge costs (i.e. the MST baseline \[18\]).

use crate::unionfind::UnionFind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wsn_model::{AggregationTree, ModelError, Network, NodeId};

/// A weighted undirected edge tagged with a caller-chosen id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedEdge {
    /// One endpoint (dense index).
    pub u: usize,
    /// Other endpoint (dense index).
    pub v: usize,
    /// Edge weight; must be finite.
    pub w: f64,
    /// Caller-chosen tag, reported back for chosen edges.
    pub id: usize,
}

/// Kruskal's algorithm. Returns the ids of the `n − 1` chosen edges, or
/// `None` if the edges do not connect all `n` nodes.
///
/// Ties are broken by input order (stable sort), which makes results
/// deterministic.
pub fn kruskal(n: usize, edges: &[WeightedEdge]) -> Option<Vec<usize>> {
    if n == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| edges[a].w.partial_cmp(&edges[b].w).unwrap_or(Ordering::Equal));
    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    for i in order {
        let e = &edges[i];
        if uf.union(e.u, e.v) {
            chosen.push(e.id);
            if chosen.len() == n - 1 {
                return Some(chosen);
            }
        }
    }
    if n == 1 {
        Some(chosen)
    } else {
        None
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    w: f64,
    edge_index: usize,
    to: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on weight; tie-break on edge index for
        // determinism.
        other
            .w
            .partial_cmp(&self.w)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.edge_index.cmp(&self.edge_index))
    }
}

/// Prim's algorithm starting from node 0 (the paper's Section VII baseline:
/// "initializes a tree with the root node" and repeatedly adds the cheapest
/// crossing edge). Returns chosen edge ids or `None` if disconnected.
pub fn prim(n: usize, edges: &[WeightedEdge]) -> Option<Vec<usize>> {
    if n == 0 {
        return None;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        if e.u >= n || e.v >= n {
            return None;
        }
        adj[e.u].push(i);
        adj[e.v].push(i);
    }
    let mut in_tree = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));

    let add_node = |node: usize, in_tree: &mut Vec<bool>, heap: &mut BinaryHeap<HeapEntry>| {
        in_tree[node] = true;
        for &ei in &adj[node] {
            let e = &edges[ei];
            let other = if e.u == node { e.v } else { e.u };
            if !in_tree[other] {
                heap.push(HeapEntry { w: e.w, edge_index: ei, to: other });
            }
        }
    };

    add_node(0, &mut in_tree, &mut heap);
    while let Some(HeapEntry { edge_index, to, .. }) = heap.pop() {
        if in_tree[to] {
            continue;
        }
        chosen.push(edges[edge_index].id);
        add_node(to, &mut in_tree, &mut heap);
        if chosen.len() == n - 1 {
            return Some(chosen);
        }
    }
    if n == 1 {
        Some(chosen)
    } else {
        None
    }
}

/// Builds the minimum-cost spanning tree of a network under the paper's
/// `c_e = −log q_e` costs, rooted at the sink. This is the MST baseline.
pub fn mst_tree(net: &Network) -> Result<AggregationTree, ModelError> {
    let edges: Vec<WeightedEdge> = net
        .edges()
        .map(|(e, l)| WeightedEdge {
            u: l.u().index(),
            v: l.v().index(),
            w: l.cost(),
            id: e.index(),
        })
        .collect();
    let chosen = prim(net.n(), &edges)
        .ok_or(ModelError::Disconnected { component_of_root: 0, n: net.n() })?;
    let tree_edges: Vec<(NodeId, NodeId)> =
        chosen.iter().map(|&id| net.links()[id].endpoints()).collect();
    AggregationTree::from_edges(NodeId::SINK, net.n(), &tree_edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn we(u: usize, v: usize, w: f64, id: usize) -> WeightedEdge {
        WeightedEdge { u, v, w, id }
    }

    fn total(edges: &[WeightedEdge], ids: &[usize]) -> f64 {
        ids.iter().map(|&id| edges.iter().find(|e| e.id == id).unwrap().w).sum()
    }

    fn square_with_diagonal() -> Vec<WeightedEdge> {
        vec![
            we(0, 1, 1.0, 0),
            we(1, 2, 2.0, 1),
            we(2, 3, 1.0, 2),
            we(3, 0, 3.0, 3),
            we(0, 2, 2.5, 4),
        ]
    }

    #[test]
    fn kruskal_picks_minimum() {
        let edges = square_with_diagonal();
        let ids = kruskal(4, &edges).unwrap();
        assert_eq!(ids.len(), 3);
        assert!((total(&edges, &ids) - 4.0).abs() < 1e-12); // 1 + 1 + 2
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        let edges = square_with_diagonal();
        let k = kruskal(4, &edges).unwrap();
        let p = prim(4, &edges).unwrap();
        assert!((total(&edges, &k) - total(&edges, &p)).abs() < 1e-12);
    }

    #[test]
    fn disconnected_returns_none() {
        let edges = vec![we(0, 1, 1.0, 0), we(2, 3, 1.0, 1)];
        assert!(kruskal(4, &edges).is_none());
        assert!(prim(4, &edges).is_none());
    }

    #[test]
    fn single_node() {
        assert_eq!(kruskal(1, &[]).unwrap(), Vec::<usize>::new());
        assert_eq!(prim(1, &[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(kruskal(0, &[]).is_none());
        assert!(prim(0, &[]).is_none());
    }

    #[test]
    fn mst_tree_on_network() {
        use wsn_model::NetworkBuilder;
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(1, 2, 0.50).unwrap(); // expensive
        b.add_edge(0, 2, 0.98).unwrap();
        b.add_edge(2, 3, 0.97).unwrap();
        b.add_edge(1, 3, 0.60).unwrap(); // expensive
        let net = b.build().unwrap();
        let t = mst_tree(&net).unwrap();
        assert_eq!(t.root(), NodeId::SINK);
        // Cheap edges (0,1), (0,2), (2,3) must be chosen.
        assert!(t.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(t.contains_edge(NodeId::new(0), NodeId::new(2)));
        assert!(t.contains_edge(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn prim_handles_parallel_weights_deterministically() {
        // All weights equal: result must still be a spanning tree and the
        // same one on repeated runs.
        let edges: Vec<WeightedEdge> =
            (0..6).flat_map(|u| (u + 1..6).map(move |v| we(u, v, 1.0, u * 10 + v))).collect();
        let a = prim(6, &edges).unwrap();
        let b = prim(6, &edges).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_connected_graph() -> impl Strategy<Value = (usize, Vec<WeightedEdge>)> {
            (2usize..9).prop_flat_map(|n| {
                // A random path guarantees connectivity; extra random edges on
                // top.
                let extra = proptest::collection::vec((0..n, 0..n, 1u32..1000), 0..12);
                let spine = proptest::collection::vec(1u32..1000, n - 1);
                (Just(n), spine, extra).prop_map(|(n, spine, extra)| {
                    let mut edges = Vec::new();
                    for (i, w) in spine.into_iter().enumerate() {
                        edges.push(we(i, i + 1, w as f64, edges.len()));
                    }
                    for (u, v, w) in extra {
                        if u != v {
                            edges.push(we(u, v, w as f64, edges.len()));
                        }
                    }
                    (n, edges)
                })
            })
        }

        proptest! {
            #[test]
            fn prim_and_kruskal_agree_on_weight((n, edges) in arb_connected_graph()) {
                let k = kruskal(n, &edges).unwrap();
                let p = prim(n, &edges).unwrap();
                prop_assert_eq!(k.len(), n - 1);
                prop_assert_eq!(p.len(), n - 1);
                prop_assert!((total(&edges, &k) - total(&edges, &p)).abs() < 1e-9);
            }

            #[test]
            fn mst_is_spanning((n, edges) in arb_connected_graph()) {
                let k = kruskal(n, &edges).unwrap();
                let mut uf = UnionFind::new(n);
                for id in k {
                    let e = edges.iter().find(|e| e.id == id).unwrap();
                    prop_assert!(uf.union(e.u, e.v), "MST must be acyclic");
                }
                prop_assert_eq!(uf.num_components(), 1);
            }
        }
    }
}

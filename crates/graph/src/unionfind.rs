//! Disjoint-set union with path halving and union by size.

/// A union-find structure over dense indices `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(1), 3);
    }

    #[test]
    fn chain_all_connected() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_size(42), 100);
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}

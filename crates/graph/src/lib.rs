//! Graph-algorithm substrate for the MRLC reproduction.
//!
//! The paper's algorithms lean on a handful of classical building blocks:
//!
//! * **minimum spanning trees** (the MST baseline \[18\] and the final
//!   integral step of IRA),
//! * **max-flow / min-cut** (the polynomial-time separation oracle for the
//!   subtour constraints, Theorem 1),
//! * **union-find, traversal, components** (support-graph bookkeeping in the
//!   cutting-plane loop),
//! * **reference spanning trees** (random / BFS / shortest-path trees used
//!   as AAML starting points and simulation workloads).
//!
//! All algorithms here are deterministic given their inputs (randomized
//! builders take an explicit RNG), which keeps experiments reproducible.

pub mod gomory_hu;
pub mod maxflow;
pub mod mst;
pub mod spanning;
pub mod traversal;
pub mod unionfind;

pub use gomory_hu::GomoryHuTree;
pub use maxflow::{FlowEdgeId, FlowNetwork};
pub use mst::{kruskal, mst_tree, prim, WeightedEdge};
pub use spanning::{bfs_tree, random_spanning_tree, shortest_path_tree};
pub use traversal::components;
pub use unionfind::UnionFind;

//! Dinic's maximum-flow algorithm with min-cut extraction.
//!
//! This is the engine behind the subtour-constraint separation oracle
//! (Theorem 1 / \[12\]): each separation query becomes a small s-t min-cut on
//! an auxiliary network with real-valued capacities.

/// Floating-point slack for capacity comparisons.
const EPS: f64 = 1e-12;

#[derive(Clone, Debug)]
struct FlowEdge {
    to: usize,
    cap: f64,
    /// Capacity as originally declared — [`FlowNetwork::reset`] restores it.
    cap0: f64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// Handle to an edge added with [`FlowNetwork::add_edge`] /
/// [`FlowNetwork::add_undirected_edge`], usable with
/// [`FlowNetwork::set_cap`] to re-aim a reusable network between solves.
pub type FlowEdgeId = usize;

/// A directed flow network over dense node indices with `f64` capacities.
///
/// The network doubles as a reusable **scratch arena**: after a
/// [`FlowNetwork::max_flow`] call consumed the capacities,
/// [`FlowNetwork::reset`] restores them in place (no allocation), so one
/// network can serve many flow queries — the pattern both the separation
/// oracle and the Gomory–Hu builder rely on. All working buffers
/// (BFS level/queue, DFS cursors, cut marks) are preallocated once.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    adj: Vec<Vec<usize>>,
    edges: Vec<FlowEdge>,
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: Vec<usize>,
}

impl FlowNetwork {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u → v` with the given capacity (and a zero
    /// capacity reverse edge). Returns a handle for [`FlowNetwork::set_cap`].
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> FlowEdgeId {
        debug_assert!(cap >= 0.0 && (cap.is_finite() || cap == f64::INFINITY));
        let e1 = self.edges.len();
        self.edges.push(FlowEdge { to: v, cap, cap0: cap, rev: e1 + 1 });
        self.edges.push(FlowEdge { to: u, cap: 0.0, cap0: 0.0, rev: e1 });
        self.adj[u].push(e1);
        self.adj[v].push(e1 + 1);
        e1
    }

    /// Adds an undirected edge (capacity in both directions). Returns a
    /// handle for [`FlowNetwork::set_cap`] (forward direction).
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, cap: f64) -> FlowEdgeId {
        debug_assert!(cap >= 0.0);
        let e1 = self.edges.len();
        self.edges.push(FlowEdge { to: v, cap, cap0: cap, rev: e1 + 1 });
        self.edges.push(FlowEdge { to: u, cap, cap0: cap, rev: e1 });
        self.adj[u].push(e1);
        self.adj[v].push(e1 + 1);
        e1
    }

    /// Overrides the *current* capacity of edge `id` (forward direction)
    /// without touching its declared capacity: the next
    /// [`FlowNetwork::reset`] reverts the override. This is how one
    /// reusable network serves per-seed queries — declare the seed edges
    /// with capacity 0, then raise one per solve.
    pub fn set_cap(&mut self, id: FlowEdgeId, cap: f64) {
        debug_assert!(cap >= 0.0 && (cap.is_finite() || cap == f64::INFINITY));
        self.edges[id].cap = cap;
    }

    /// Restores every edge to its declared capacity, undoing both flow
    /// consumption and [`FlowNetwork::set_cap`] overrides. O(edges), no
    /// allocation — the scratch API for solving many flows on one network.
    pub fn reset(&mut self) {
        for e in &mut self.edges {
            e.cap = e.cap0;
        }
    }

    /// Re-declares the capacity of edge `id` (forward direction): both the
    /// current and the declared capacity change, so the new value survives
    /// [`FlowNetwork::reset`]. This is the delta-update API — a long-lived
    /// network tracks a changing instance by re-declaring only the edges
    /// whose capacity actually moved, instead of being rebuilt.
    pub fn set_base_cap(&mut self, id: FlowEdgeId, cap: f64) {
        debug_assert!(cap >= 0.0 && (cap.is_finite() || cap == f64::INFINITY));
        self.edges[id].cap = cap;
        self.edges[id].cap0 = cap;
    }

    /// As [`FlowNetwork::set_base_cap`], but for an edge added with
    /// [`FlowNetwork::add_undirected_edge`]: both directions are
    /// re-declared.
    pub fn set_base_cap_undirected(&mut self, id: FlowEdgeId, cap: f64) {
        debug_assert!(cap >= 0.0 && cap.is_finite());
        let rev = self.edges[id].rev;
        self.edges[id].cap = cap;
        self.edges[id].cap0 = cap;
        self.edges[rev].cap = cap;
        self.edges[rev].cap0 = cap;
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push(s);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > EPS && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[u] + 1;
                    self.queue.push(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: f64) -> f64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let ei = self.adj[u][self.iter[u]];
            let (to, cap, rev) = {
                let e = &self.edges[ei];
                (e.to, e.cap, e.rev)
            };
            if cap > EPS && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > EPS {
                    self.edges[ei].cap -= d;
                    self.edges[rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    /// Computes the maximum s→t flow. Capacities are consumed (the residual
    /// network remains for [`FlowNetwork::min_cut_source_side`]); call
    /// [`FlowNetwork::reset`] to restore them for another query.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`FlowNetwork::max_flow`], returns the source side of a minimum
    /// cut: all nodes reachable from `s` in the residual network.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.n()];
        let mut queue = Vec::with_capacity(self.n());
        self.cut_search(s, &mut side, &mut queue);
        side
    }

    /// Allocation-free variant of [`FlowNetwork::min_cut_source_side`]:
    /// marks the source side into the caller's buffer (resized/cleared
    /// here) and reuses the internal BFS queue.
    pub fn min_cut_source_side_into(&mut self, s: usize, side: &mut Vec<bool>) {
        side.clear();
        side.resize(self.n(), false);
        let mut queue = std::mem::take(&mut self.queue);
        self.cut_search(s, side, &mut queue);
        self.queue = queue;
    }

    fn cut_search(&self, s: usize, side: &mut [bool], queue: &mut Vec<usize>) {
        queue.clear();
        side[s] = true;
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > EPS && !side[e.to] {
                    side[e.to] = true;
                    queue.push(e.to);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_diamond() {
        // s=0 → {1,2} → t=3 with unit capacities; max flow 2.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1.0);
        f.add_edge(0, 2, 1.0);
        f.add_edge(1, 3, 1.0);
        f.add_edge(2, 3, 1.0);
        assert!((f.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_respected() {
        // 0 → 1 → 2 with capacities 5 then 3: flow 3.
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 5.0);
        f.add_edge(1, 2, 3.0);
        assert!((f.max_flow(0, 2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn needs_augmenting_path_reversal() {
        // The classic case where a naive greedy gets stuck without residual
        // edges: two crossing paths.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1.0);
        f.add_edge(0, 2, 1.0);
        f.add_edge(1, 2, 1.0);
        f.add_edge(1, 3, 1.0);
        f.add_edge(2, 3, 1.0);
        assert!((f.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates_s_from_t() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 2.0);
        f.add_edge(1, 2, 1.0); // bottleneck
        f.add_edge(2, 3, 2.0);
        let flow = f.max_flow(0, 3);
        assert!((flow - 1.0).abs() < 1e-9);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn undirected_edges_carry_both_ways() {
        let mut f = FlowNetwork::new(3);
        f.add_undirected_edge(0, 1, 1.0);
        f.add_undirected_edge(1, 2, 1.0);
        assert!((f.max_flow(0, 2) - 1.0).abs() < 1e-9);
        // And reversed direction on a fresh network.
        let mut g = FlowNetwork::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        assert!((g.max_flow(2, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_gives_zero_flow() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 5.0);
        f.add_edge(2, 3, 5.0);
        assert_eq!(f.max_flow(0, 3), 0.0);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
    }

    #[test]
    fn fractional_capacities() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 0.25);
        f.add_edge(0, 1, 0.5); // parallel edge
        f.add_edge(1, 2, 0.6);
        assert!((f.max_flow(0, 2) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_capacities_for_reuse() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 2.0);
        f.add_edge(1, 2, 1.0);
        f.add_edge(2, 3, 2.0);
        let first = f.max_flow(0, 3);
        // Residual is consumed: a second run on the same network sees none.
        assert!(f.max_flow(0, 3) < 1e-12);
        f.reset();
        let again = f.max_flow(0, 3);
        assert!((first - again).abs() < 1e-9, "{first} vs {again}");
    }

    #[test]
    fn set_cap_override_is_undone_by_reset() {
        // Seed-edge pattern: declare with capacity 0, raise per query.
        let mut f = FlowNetwork::new(3);
        let seed = f.add_edge(0, 1, 0.0);
        f.add_edge(1, 2, 5.0);
        assert_eq!(f.max_flow(0, 2), 0.0);
        f.reset();
        f.set_cap(seed, f64::INFINITY);
        assert!((f.max_flow(0, 2) - 5.0).abs() < 1e-9);
        f.reset();
        assert_eq!(f.max_flow(0, 2), 0.0);
    }

    #[test]
    fn set_base_cap_survives_reset() {
        let mut f = FlowNetwork::new(3);
        let a = f.add_edge(0, 1, 1.0);
        f.add_edge(1, 2, 5.0);
        assert!((f.max_flow(0, 2) - 1.0).abs() < 1e-9);
        f.set_base_cap(a, 3.0);
        f.reset();
        assert!((f.max_flow(0, 2) - 3.0).abs() < 1e-9);
        f.reset();
        // Still 3.0: the re-declaration is permanent, unlike set_cap.
        assert!((f.max_flow(0, 2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn set_base_cap_undirected_updates_both_directions() {
        let mut f = FlowNetwork::new(3);
        let a = f.add_undirected_edge(0, 1, 1.0);
        f.add_undirected_edge(1, 2, 5.0);
        f.set_base_cap_undirected(a, 2.0);
        f.reset();
        assert!((f.max_flow(0, 2) - 2.0).abs() < 1e-9);
        f.reset();
        assert!((f.max_flow(2, 0) - 2.0).abs() < 1e-9, "reverse direction follows");
    }

    #[test]
    fn delta_updated_network_matches_fresh_build() {
        // The separation-oracle pattern: keep one network, re-declare only
        // the capacities that moved, and get the same flows as a rebuild.
        let caps_a = [1.5, 0.5, 2.0];
        let caps_b = [1.5, 2.5, 0.25]; // edge 0 unchanged
        let mut live = FlowNetwork::new(4);
        let ids: Vec<FlowEdgeId> = (0..3).map(|i| live.add_edge(i, i + 1, caps_a[i])).collect();
        let flow_a = live.max_flow(0, 3);
        live.reset();
        for (i, &c) in caps_b.iter().enumerate() {
            if (c - caps_a[i]).abs() > 1e-12 {
                live.set_base_cap(ids[i], c);
            }
        }
        let flow_b = live.max_flow(0, 3);
        let mut fresh = FlowNetwork::new(4);
        for (i, &c) in caps_b.iter().enumerate() {
            fresh.add_edge(i, i + 1, c);
        }
        assert!((flow_a - 0.5).abs() < 1e-9);
        assert!((flow_b - fresh.max_flow(0, 3)).abs() < 1e-9);
    }

    #[test]
    fn cut_side_into_matches_allocating_variant() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 2.0);
        f.add_edge(1, 2, 1.0);
        f.add_edge(2, 3, 2.0);
        f.max_flow(0, 3);
        let side = f.min_cut_source_side(0);
        let mut buf = Vec::new();
        f.min_cut_source_side_into(0, &mut buf);
        assert_eq!(side, buf);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_panics() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 1.0);
        f.max_flow(0, 0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force min cut by enumerating all subsets containing s and
        /// excluding t (only for tiny n).
        fn brute_min_cut(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << n) {
                if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                    continue;
                }
                let mut cut = 0.0;
                for &(u, v, c) in edges {
                    if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                        cut += c;
                    }
                }
                best = best.min(cut);
            }
            best
        }

        proptest! {
            #[test]
            fn maxflow_equals_brute_mincut(
                edges in proptest::collection::vec((0usize..5, 0usize..5, 0u32..20), 1..12)
            ) {
                let n = 5;
                let dir: Vec<(usize, usize, f64)> = edges
                    .into_iter()
                    .filter(|(u, v, _)| u != v)
                    .map(|(u, v, c)| (u, v, c as f64))
                    .collect();
                let mut f = FlowNetwork::new(n);
                for &(u, v, c) in &dir {
                    f.add_edge(u, v, c);
                }
                let flow = f.max_flow(0, n - 1);
                let cut = brute_min_cut(n, &dir, 0, n - 1);
                prop_assert!((flow - cut).abs() < 1e-6, "flow {flow} vs cut {cut}");
            }

            #[test]
            fn extracted_cut_value_matches_flow(
                edges in proptest::collection::vec((0usize..6, 0usize..6, 0u32..20), 1..15)
            ) {
                let n = 6;
                let dir: Vec<(usize, usize, f64)> = edges
                    .into_iter()
                    .filter(|(u, v, _)| u != v)
                    .map(|(u, v, c)| (u, v, c as f64))
                    .collect();
                let mut f = FlowNetwork::new(n);
                for &(u, v, c) in &dir {
                    f.add_edge(u, v, c);
                }
                let flow = f.max_flow(0, n - 1);
                let side = f.min_cut_source_side(0);
                prop_assert!(side[0]);
                prop_assert!(!side[n - 1]);
                let cut: f64 = dir
                    .iter()
                    .filter(|&&(u, v, _)| side[u] && !side[v])
                    .map(|&(_, _, c)| c)
                    .sum();
                prop_assert!((flow - cut).abs() < 1e-6, "flow {flow} vs extracted cut {cut}");
            }
        }
    }
}

//! Reference spanning-tree builders: random, BFS, and shortest-path trees.
//!
//! These produce the "arbitrary initial tree" AAML starts from, the random
//! aggregation trees of the Fig. 1 retransmission study, and an SPT
//! reference comparable to CTP-style collection trees \[7\].

use rand::{Rng, RngExt};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wsn_model::{AggregationTree, ModelError, Network, NodeId};

/// Builds a uniformly shuffled spanning tree: edges are visited in random
/// order and inserted greedily (randomized Kruskal). Not uniform over all
/// spanning trees, but unbiased enough for workload generation, and cheap.
pub fn random_spanning_tree<R: Rng + ?Sized>(
    net: &Network,
    rng: &mut R,
) -> Result<AggregationTree, ModelError> {
    let mut order: Vec<usize> = (0..net.num_edges()).collect();
    // Fisher–Yates keeps us independent of rand's slice-trait churn.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut uf = crate::unionfind::UnionFind::new(net.n());
    let mut edges = Vec::with_capacity(net.n().saturating_sub(1));
    for idx in order {
        let l = &net.links()[idx];
        if uf.union(l.u().index(), l.v().index()) {
            edges.push(l.endpoints());
            if edges.len() == net.n() - 1 {
                break;
            }
        }
    }
    AggregationTree::from_edges(NodeId::SINK, net.n(), &edges)
}

/// Builds the BFS tree from the sink (minimum hop count).
pub fn bfs_tree(net: &Network) -> Result<AggregationTree, ModelError> {
    let n = net.n();
    let mut parents: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(NodeId::SINK);
    while let Some(u) = queue.pop_front() {
        for &(_, v) in net.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                parents[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    AggregationTree::from_parents(NodeId::SINK, parents)
}

#[derive(PartialEq)]
struct DijkstraEntry {
    dist: f64,
    node: usize,
}

impl Eq for DijkstraEntry {}
impl PartialOrd for DijkstraEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DijkstraEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Builds the shortest-path tree from the sink where the length of a link is
/// its cost `−log q_e` — i.e. each node routes along its most reliable path.
pub fn shortest_path_tree(net: &Network) -> Result<AggregationTree, ModelError> {
    let n = net.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parents: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[0] = 0.0;
    heap.push(DijkstraEntry { dist: 0.0, node: 0 });
    while let Some(DijkstraEntry { node, .. }) = heap.pop() {
        if done[node] {
            continue;
        }
        done[node] = true;
        for &(e, v) in net.neighbors(NodeId::new(node)) {
            let w = net.link(e).cost();
            let nd = dist[node] + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parents[v.index()] = Some(NodeId::new(node));
                heap.push(DijkstraEntry { dist: nd, node: v.index() });
            }
        }
    }
    AggregationTree::from_parents(NodeId::SINK, parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::NetworkBuilder;

    fn grid() -> Network {
        // 2x3 grid: 0-1-2 / 3-4-5 with vertical links.
        let mut b = NetworkBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn random_tree_is_spanning() {
        let net = grid();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let t = random_spanning_tree(&net, &mut rng).unwrap();
            assert_eq!(t.n(), 6);
            assert_eq!(t.edges().count(), 5);
            // every tree edge must exist in the network
            for (c, p) in t.edges() {
                assert!(net.find_edge(c, p).is_some());
            }
        }
    }

    #[test]
    fn random_trees_vary() {
        let net = grid();
        let mut rng = StdRng::seed_from_u64(42);
        let t1 = random_spanning_tree(&net, &mut rng).unwrap();
        let mut saw_different = false;
        for _ in 0..10 {
            let t2 = random_spanning_tree(&net, &mut rng).unwrap();
            let e1: std::collections::BTreeSet<_> = t1.edges().collect();
            let e2: std::collections::BTreeSet<_> = t2.edges().collect();
            if e1 != e2 {
                saw_different = true;
                break;
            }
        }
        assert!(saw_different, "random trees should not all coincide");
    }

    #[test]
    fn bfs_tree_minimizes_depth() {
        let net = grid();
        let t = bfs_tree(&net).unwrap();
        // node 5 is 2 hops away (0-1-2 / 0-3 then +1...): grid distances:
        // 5 is reachable via 2-5 or 4-5: depth 3 via (0,1),(1,2),(2,5) or
        // (0,1),(1,4),(4,5); BFS depth must be 3.
        assert_eq!(t.depth(NodeId::new(5)), 3);
        assert_eq!(t.depth(NodeId::new(1)), 1);
        assert_eq!(t.depth(NodeId::new(3)), 1);
    }

    #[test]
    fn spt_prefers_reliable_paths() {
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 2, 0.5).unwrap(); // direct but weak
        b.add_edge(0, 1, 0.95).unwrap();
        b.add_edge(1, 2, 0.95).unwrap();
        let net = b.build().unwrap();
        let t = shortest_path_tree(&net).unwrap();
        // 0.95 * 0.95 = 0.9025 > 0.5, so node 2 routes through node 1.
        assert_eq!(t.parent(NodeId::new(2)), Some(NodeId::new(1)));
    }

    #[test]
    fn spt_on_grid_is_spanning() {
        let t = shortest_path_tree(&grid()).unwrap();
        assert_eq!(t.edges().count(), 5);
    }
}

//! Connected components over edge subsets.

/// Labels each node `0..n` with a dense component id, given an undirected
/// edge list. Returns `(labels, num_components)`.
pub fn components(
    n: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
) -> (Vec<usize>, usize) {
    let mut uf = crate::unionfind::UnionFind::new(n);
    for (u, v) in edges {
        uf.union(u, v);
    }
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut out = vec![0usize; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let r = uf.find(i);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        *slot = label[r];
    }
    (out, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_isolated() {
        let (labels, k) = components(4, std::iter::empty());
        assert_eq!(k, 4);
        // labels are dense and distinct
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_components() {
        let (labels, k) = components(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn fully_connected() {
        let (_, k) = components(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(k, 1);
    }

    #[test]
    fn labels_are_dense_from_zero() {
        let (labels, k) = components(3, [(1, 2)]);
        assert_eq!(k, 2);
        assert!(labels.iter().all(|&l| l < k));
        assert!(labels.contains(&0));
        assert!(labels.contains(&1));
    }
}

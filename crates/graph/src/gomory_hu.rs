//! Gomory–Hu cut trees (Gusfield's simplification).
//!
//! A Gomory–Hu tree encodes all `n·(n−1)/2` pairwise min-cut values of an
//! undirected capacitated graph in a single weighted tree using only
//! `n − 1` max-flow computations: the min cut between `u` and `v` equals
//! the smallest edge weight on the tree path between them. It is the
//! standard tool for batched cut queries — e.g. analyzing how robust each
//! pair's connectivity is, or amortizing families of separation queries.

use crate::maxflow::FlowNetwork;

/// A Gomory–Hu tree over dense node indices `0..n`.
#[derive(Clone, Debug)]
pub struct GomoryHuTree {
    /// `parent[v]` for `v ≥ 1`; node 0 is the root.
    parent: Vec<usize>,
    /// `weight[v]` = min-cut value between `v` and `parent[v]`.
    weight: Vec<f64>,
}

impl GomoryHuTree {
    /// Builds the tree with Gusfield's algorithm from an undirected
    /// capacitated edge list. `O(n)` max-flows on the original graph.
    pub fn build(n: usize, edges: &[(usize, usize, f64)]) -> GomoryHuTree {
        assert!(n >= 1);
        let mut parent = vec![0usize; n];
        let mut weight = vec![f64::INFINITY; n];
        // One reusable network for all n − 1 flows: `reset` restores the
        // consumed capacities between queries instead of rebuilding the
        // adjacency structure from scratch.
        let mut fnet = FlowNetwork::new(n);
        for &(u, v, c) in edges {
            fnet.add_undirected_edge(u, v, c);
        }
        let mut side = Vec::with_capacity(n);
        for s in 1..n {
            let t = parent[s];
            fnet.reset();
            let f = fnet.max_flow(s, t);
            weight[s] = f;
            fnet.min_cut_source_side_into(s, &mut side);
            for v in s + 1..n {
                if side[v] && parent[v] == t {
                    parent[v] = s;
                }
            }
        }
        GomoryHuTree { parent, weight }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Min-cut value between `u` and `v`: the lightest edge on the tree
    /// path (computed by walking both nodes to their common ancestor).
    pub fn min_cut(&self, u: usize, v: usize) -> f64 {
        assert_ne!(u, v, "min cut requires distinct nodes");
        // Depths via parent pointers (the tree is shallow for our sizes).
        let depth = |mut x: usize| {
            let mut d = 0usize;
            while x != 0 {
                x = self.parent[x];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (u, v);
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = f64::INFINITY;
        while da > db {
            best = best.min(self.weight[a]);
            a = self.parent[a];
            da -= 1;
        }
        while db > da {
            best = best.min(self.weight[b]);
            b = self.parent[b];
            db -= 1;
        }
        while a != b {
            best = best.min(self.weight[a].min(self.weight[b]));
            a = self.parent[a];
            b = self.parent[b];
        }
        best
    }

    /// The global minimum cut value of the graph (the lightest tree edge).
    pub fn global_min_cut(&self) -> f64 {
        self.weight[1..].iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_min_cut(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let cut: f64 = edges
                .iter()
                .filter(|&&(u, v, _)| (mask & (1 << u) != 0) != (mask & (1 << v) != 0))
                .map(|&(_, _, c)| c)
                .sum();
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn path_graph_cuts() {
        // 0 -2- 1 -1- 2 -3- 3: min cut between ends is 1.
        let edges = vec![(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0)];
        let t = GomoryHuTree::build(4, &edges);
        assert!((t.min_cut(0, 3) - 1.0).abs() < 1e-9);
        assert!((t.min_cut(0, 1) - 2.0).abs() < 1e-9);
        assert!((t.min_cut(2, 3) - 3.0).abs() < 1e-9);
        assert!((t.global_min_cut() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic pseudo-random small graphs.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 4 + (trial % 3);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 100 < 70 {
                        edges.push((u, v, (next() % 9 + 1) as f64));
                    }
                }
            }
            let tree = GomoryHuTree::build(n, &edges);
            for s in 0..n {
                for t in s + 1..n {
                    let gh = tree.min_cut(s, t);
                    let brute = brute_min_cut(n, &edges, s, t);
                    assert!(
                        (gh - brute).abs() < 1e-9,
                        "trial {trial}: cut({s},{t}) GH {gh} vs brute {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_have_zero_cut() {
        let edges = vec![(0, 1, 5.0), (2, 3, 5.0)];
        let t = GomoryHuTree::build(4, &edges);
        assert_eq!(t.min_cut(0, 2), 0.0);
        assert!((t.min_cut(0, 1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn single_node() {
        let t = GomoryHuTree::build(1, &[]);
        assert_eq!(t.n(), 1);
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn same_node_query_panics() {
        let t = GomoryHuTree::build(2, &[(0, 1, 1.0)]);
        t.min_cut(1, 1);
    }
}

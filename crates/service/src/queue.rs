//! Bounded admission queue with retry-backoff scheduling.
//!
//! A plain FIFO would be enough for happy-path dispatch; the fleet also
//! needs (a) a hard capacity so backpressure is a shed, not an unbounded
//! pileup, (b) `not_before` timestamps so a retried job waits out its
//! backoff without blocking a worker, and (c) a drain mode where workers
//! stop taking work while the still-queued jobs are handed back for
//! parking. Retries and supervisor-recovered jobs re-enter past the
//! capacity check — admission already charged them once, and dropping a
//! recovered job would break the every-request-resolves guarantee.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use wsn_obs::TimeSource;

use crate::service::Job;

/// How long a worker waits between schedule scans while jobs exist but
/// none is runnable yet (all in backoff). Real time even under a manual
/// service clock, so a test advancing the clock is observed promptly.
const SCHEDULE_POLL: Duration = Duration::from_millis(1);

pub(crate) struct AdmissionQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// What a blocking pop produced.
pub(crate) enum Popped {
    /// A runnable job (its `not_before` has passed).
    Job(Box<Job>),
    /// The queue is closed: the service is draining, stop taking work.
    Closed,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { jobs: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission push: fails when at capacity or closed, returning the job
    /// to the caller for shedding.
    #[allow(clippy::result_large_err)] // Err hands the rejected job back by design
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut g = self.lock();
        if g.closed || g.jobs.len() >= self.capacity {
            return Err(job);
        }
        g.jobs.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Re-entry push for retries and supervisor-recovered jobs: ignores
    /// capacity (the job was already admitted) but still respects close —
    /// a closed queue's jobs are about to be parked, so the job is
    /// returned for the caller to park instead.
    #[allow(clippy::result_large_err)] // Err hands the rejected job back by design
    pub(crate) fn push_again(&self, job: Job) -> Result<(), Job> {
        let mut g = self.lock();
        if g.closed {
            return Err(job);
        }
        g.jobs.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a runnable job is available (FIFO among runnable) or
    /// the queue closes.
    pub(crate) fn pop(&self, clock: &TimeSource) -> Popped {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Popped::Closed;
            }
            let now = clock.now_ns();
            if let Some(idx) = g.jobs.iter().position(|j| j.not_before_ns <= now) {
                let job = g.jobs.remove(idx).expect("position came from this deque");
                return Popped::Job(Box::new(job));
            }
            g = if g.jobs.is_empty() {
                // Nothing scheduled at all: sleep until a push or close.
                self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
            } else {
                // Jobs exist but are all in backoff: timed scan.
                self.cv.wait_timeout(g, SCHEDULE_POLL).unwrap_or_else(|e| e.into_inner()).0
            };
        }
    }

    /// Closes the queue (wakes every blocked worker) and hands back
    /// whatever was still queued, for parking.
    pub(crate) fn close_and_drain(&self) -> Vec<Job> {
        let mut g = self.lock();
        g.closed = true;
        let jobs = g.jobs.drain(..).collect();
        self.cv.notify_all();
        jobs
    }

    /// Jobs currently queued (runnable or in backoff).
    pub(crate) fn len(&self) -> usize {
        self.lock().jobs.len()
    }
}

//! Request/outcome vocabulary of the solve service.
//!
//! Every submission resolves to exactly one [`ServiceOutcome`] — there is
//! no silent-drop path anywhere in the fleet. The [`Ticket`] is the
//! caller's handle on that promise: a one-shot slot the worker (or the
//! admission path itself) fills with a [`Completion`].

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mrlc_core::{MrlcInstance, SolveOutcome};
use wsn_lp::SolveBudget;

/// One tenant request: an MRLC instance (graph + LC + energy profile is
/// all inside [`MrlcInstance`]), the work budget for its solve, and an
/// optional end-to-end deadline used for admission-time shedding.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The instance to solve.
    pub instance: MrlcInstance,
    /// Per-request work limits handed to the degradation ladder.
    pub budget: SolveBudget,
    /// End-to-end latency bound (queue wait + solve). Requests whose
    /// projected wait already exceeds it are shed at admission; requests
    /// that silently aged past it in the queue are shed at dequeue.
    pub deadline: Option<Duration>,
}

impl SolveRequest {
    /// A request with an unlimited budget and no deadline.
    pub fn new(instance: MrlcInstance) -> Self {
        SolveRequest { instance, budget: SolveBudget::unlimited(), deadline: None }
    }
}

/// FNV-1a over the full instance identity: node count, per-node energy,
/// every link (endpoints + PRR bits) and the lifetime bound. Two
/// submissions with equal hashes are the same tenant problem, which is
/// what the duplicate cache and the quarantine breaker key on.
pub fn instance_hash(inst: &MrlcInstance) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    let net = inst.network();
    eat(&(net.n() as u64).to_le_bytes());
    for v in 0..net.n() {
        eat(&net.initial_energy(wsn_model::NodeId::new(v)).to_bits().to_le_bytes());
    }
    for (_, link) in net.edges() {
        let (u, v) = link.endpoints();
        eat(&(u.index() as u64).to_le_bytes());
        eat(&(v.index() as u64).to_le_bytes());
        eat(&link.prr().value().to_bits().to_le_bytes());
    }
    let model = inst.model();
    eat(&model.tx.to_bits().to_le_bytes());
    eat(&model.rx.to_bits().to_le_bytes());
    eat(&model.idle_power.to_bits().to_le_bytes());
    eat(&inst.lc().to_bits().to_le_bytes());
    h
}

/// Why admission (or dequeue) refused to run a request.
#[derive(Clone, Debug, PartialEq)]
pub enum ShedReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// Projected queue wait already exceeds the request deadline.
    ProjectedWait {
        /// Estimated wait in milliseconds at admission time.
        projected_ms: f64,
        /// The request's deadline in milliseconds.
        deadline_ms: f64,
    },
    /// The deadline passed while the request sat in the queue.
    ExpiredInQueue,
    /// The service is draining and accepts no new work.
    Draining,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::ProjectedWait { projected_ms, deadline_ms } => {
                write!(f, "projected wait {projected_ms:.1}ms exceeds deadline {deadline_ms:.1}ms")
            }
            ShedReason::ExpiredInQueue => write!(f, "deadline expired while queued"),
            ShedReason::Draining => write!(f, "service draining"),
        }
    }
}

/// The typed end state of a submission. Exhaustive: chaos testing asserts
/// that every request lands in exactly one of these.
#[derive(Clone, Debug)]
pub enum ServiceOutcome {
    /// The degradation ladder produced a tree (tier inside says which rung).
    Solved(SolveOutcome),
    /// Admission control refused the request, with the reason.
    Shed(ShedReason),
    /// The instance hash tripped the circuit breaker; `why` records the
    /// last failure. Never retried hot — see the quarantine list on drain.
    Quarantined {
        /// Last failure before the breaker opened.
        why: String,
    },
    /// The instance provably has no LC-feasible tree.
    Infeasible {
        /// The requested lifetime bound.
        lc: f64,
        /// Which rung established infeasibility.
        reason: String,
    },
    /// The service drained before this request finished; its checkpoint
    /// (if the solve had started) is in the [`crate::DrainReport`].
    Parked,
}

impl ServiceOutcome {
    /// Short label for counters and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceOutcome::Solved(out) => match out.tier {
                mrlc_core::SolveTier::Exact => "exact",
                mrlc_core::SolveTier::Resumed => "resumed",
                mrlc_core::SolveTier::Approximate => "approximate",
            },
            ServiceOutcome::Shed(_) => "shed",
            ServiceOutcome::Quarantined { .. } => "quarantined",
            ServiceOutcome::Infeasible { .. } => "infeasible",
            ServiceOutcome::Parked => "parked",
        }
    }

    /// True for any outcome that carries a tree.
    pub fn is_solved(&self) -> bool {
        matches!(self, ServiceOutcome::Solved(_))
    }
}

/// A resolved request: the outcome plus fleet-side accounting.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Submission id (monotone per service).
    pub id: u64,
    /// Instance hash (cache/quarantine key).
    pub hash: u64,
    /// The typed end state.
    pub outcome: ServiceOutcome,
    /// Submission-to-resolution latency against the service clock.
    pub latency_ms: f64,
    /// Solve attempts consumed (0 when resolved at admission).
    pub attempts: u32,
}

#[derive(Default)]
pub(crate) struct TicketSlot {
    state: Mutex<Option<Completion>>,
    cv: Condvar,
}

impl TicketSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketSlot::default())
    }

    pub(crate) fn fill(&self, completion: Completion) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // First resolution wins; a double-fill would mean a request ran
        // twice, which the supervisor's recovery path must never allow.
        if g.is_none() {
            *g = Some(completion);
            self.cv.notify_all();
        }
    }
}

/// The caller's handle on one submission: blocks (or polls) for the
/// [`Completion`]. Every ticket resolves — shed and drain paths fill it
/// just like a finished solve does.
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) slot: Arc<TicketSlot>,
}

impl Ticket {
    /// Submission id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request resolves.
    pub fn wait(&self) -> Completion {
        let mut g = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(c) = g.as_ref() {
                return c.clone();
            }
            g = self.slot.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout`; `None` if the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Completion> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(c) = g.as_ref() {
                return Some(c.clone());
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self.slot.cv.wait_timeout(g, left).unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    /// Non-blocking peek.
    pub fn try_get(&self) -> Option<Completion> {
        self.slot.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::{lifetime, EnergyModel, NetworkBuilder};

    fn tiny(seed_prr: f64) -> MrlcInstance {
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, seed_prr).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.91).unwrap();
        b.add_edge(0, 3, 0.92).unwrap();
        let net = b.build().unwrap();
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.5;
        MrlcInstance::new(net, model, lc).unwrap()
    }

    #[test]
    fn equal_instances_hash_equal() {
        assert_eq!(instance_hash(&tiny(0.85)), instance_hash(&tiny(0.85)));
    }

    #[test]
    fn different_prr_changes_the_hash() {
        assert_ne!(instance_hash(&tiny(0.85)), instance_hash(&tiny(0.86)));
    }

    #[test]
    fn different_lc_changes_the_hash() {
        let a = tiny(0.85);
        let b = MrlcInstance::new(a.network().clone(), *a.model(), a.lc() * 0.9).unwrap();
        assert_ne!(instance_hash(&a), instance_hash(&b));
    }

    #[test]
    fn ticket_resolves_once_and_sticks() {
        let slot = TicketSlot::new();
        let ticket = Ticket { id: 1, slot: slot.clone() };
        assert!(ticket.try_get().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(1)).is_none());
        let fill = |outcome: ServiceOutcome, ms: f64| Completion {
            id: 1,
            hash: 42,
            outcome,
            latency_ms: ms,
            attempts: 0,
        };
        slot.fill(fill(ServiceOutcome::Shed(ShedReason::QueueFull), 1.0));
        slot.fill(fill(ServiceOutcome::Parked, 9.0));
        let c = ticket.wait();
        assert_eq!(c.kindstr(), "shed");
        assert_eq!(c.latency_ms, 1.0, "first fill wins");
    }

    impl Completion {
        fn kindstr(&self) -> &'static str {
            self.outcome.kind()
        }
    }

    #[test]
    fn shed_reasons_render() {
        let s = ShedReason::ProjectedWait { projected_ms: 12.5, deadline_ms: 10.0 }.to_string();
        assert!(s.contains("12.5"), "{s}");
        assert_eq!(ShedReason::QueueFull.to_string(), "queue full");
        assert_eq!(ShedReason::Draining.to_string(), "service draining");
    }
}

//! `wsn-service` — a supervised, crash-isolated, multi-tenant solve
//! service over the MRLC degradation ladder.
//!
//! The ROADMAP's "solver-as-a-service fleet mode": long-running worker
//! threads accept [`SolveRequest`]s (instance + per-request budget +
//! optional deadline) through a bounded admission queue and resolve every
//! single one to a typed [`ServiceOutcome`] — solved (exact / resumed /
//! approximate per the PR 6 ladder), shed-with-reason, quarantined,
//! infeasible, or parked by a drain. Built on vendored `crossbeam`
//! channels and plain threads: no async runtime.
//!
//! See [`SolveService`] for the fleet lifecycle and [`ChaosConfig`] for
//! the seeded failure injection the chaos suite drives.

mod queue;
mod request;
mod service;

pub use request::{instance_hash, Completion, ServiceOutcome, ShedReason, SolveRequest, Ticket};
pub use service::{
    BlackBox, ChaosConfig, DrainReport, ParkedSolve, QuarantineEntry, ServiceConfig, SolveService,
};

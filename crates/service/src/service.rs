//! The supervised solve fleet.
//!
//! ```text
//!                    submit() ──► admission ──► bounded queue ──► workers (N)
//!                                   │  ▲                            │   │
//!      shed (full / projected wait /│  │ retry w/ backoff + jitter  │   │ epitaphs
//!      draining / quarantine hit)   │  └────────────────────────────┘   ▼
//!                                   ▼                               supervisor
//!                                ticket ◄── typed outcome ◄── (respawn, recover job)
//! ```
//!
//! Robustness invariants, each chaos-tested:
//!
//! * **Crash isolation.** A solve runs under `catch_unwind`; a panic is a
//!   retry/quarantine decision, never fleet death. A panic *outside* the
//!   per-job guard (the chaos worker-kill) unwinds the worker thread,
//!   whose epitaph wakes the supervisor to recover the in-flight job from
//!   the worker's slot and respawn a replacement.
//! * **Backpressure.** The queue is bounded; admission sheds with a typed
//!   reason (`QueueFull`, or `ProjectedWait` when the EWMA-projected wait
//!   already blows the request deadline) instead of queueing hopeless work.
//! * **Circuit breaker.** An instance hash that fails `quarantine_after`
//!   times is parked with its latest checkpoint and a typed `why`; later
//!   submissions of the same hash resolve `Quarantined` immediately.
//! * **Drain.** `drain()` stops admission, requests a checkpoint handback
//!   from every in-flight solve, parks the still-queued jobs, and joins
//!   every thread — the report carries the parked checkpoints so a
//!   restarted service continues via `resume_ira` instead of re-solving.
//! * **Every request resolves.** Each path above fills the ticket with a
//!   typed [`ServiceOutcome`]; there is no drop, hang, or panic escape.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use mrlc_core::{
    IraCheckpoint, MrlcInstance, ResilienceConfig, ResilienceError, ResilientRun, SolveOutcome,
};
use wsn_lp::SolveCtx;
use wsn_obs::{Clock, Counter, Gauge, Histogram, Level, Obs, TimeSource};

use crate::queue::{AdmissionQueue, Popped};
use crate::request::{
    instance_hash, Completion, ServiceOutcome, ShedReason, SolveRequest, Ticket, TicketSlot,
};

/// Seeded failure injection for the chaos harness. All hooks are off by
/// default; production configs never set them.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Panic the worker thread (outside the per-job guard) before every
    /// k-th dequeue fleet-wide — exercises supervisor recovery/respawn.
    pub kill_every: Option<u64>,
    /// Sleep `(duration)` before every k-th solve — a slow-worker stall.
    pub stall: Option<(u64, Duration)>,
    /// Instance hashes whose solve always panics (poison pills) —
    /// exercises retry exhaustion into quarantine.
    pub panic_hashes: Vec<u64>,
}

/// Fleet tuning. `Default` is a sane 4-worker production shape.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it shed `QueueFull`.
    pub queue_capacity: usize,
    /// Failures of one instance hash before the circuit breaker opens.
    pub quarantine_after: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Prior for the projected-wait estimate before any solve completes.
    pub initial_ewma_ms: f64,
    /// Serve duplicate submissions from the instance-hash result cache.
    pub cache: bool,
    /// Degradation-ladder configuration used by every solve.
    pub resilience: ResilienceConfig,
    /// Clock for deadlines, latency accounting and backoff scheduling.
    /// A [`wsn_obs::ManualClock`]-backed source makes shed/expiry tests
    /// deterministic with zero real sleeping.
    pub clock: TimeSource,
    /// Failure injection (off by default).
    pub chaos: ChaosConfig,
    /// Give each worker a virtual-clock trace, collected on drain.
    pub trace_workers: bool,
    /// Flight-recorder ring capacity (records kept per worker, plus one
    /// service-level ring on the admission path); `0` disables the
    /// recorder. When armed, a worker crash, a quarantine decision, a
    /// budget expiry, or a shed storm snapshots the relevant ring into a
    /// deterministic black-box dump carried by [`DrainReport`].
    pub flight_recorder: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            quarantine_after: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            seed: 0xC0FFEE,
            initial_ewma_ms: 50.0,
            cache: true,
            resilience: ResilienceConfig::default(),
            clock: TimeSource::wall(),
            chaos: ChaosConfig::default(),
            trace_workers: false,
            flight_recorder: 128,
        }
    }
}

/// Consecutive sheds (with no admission in between) that count as a shed
/// storm and trigger a service-ring black-box dump. One dump per storm:
/// the trigger fires when the streak *reaches* the threshold, and re-arms
/// only after an admission resets the streak.
const SHED_STORM_STREAK: u64 = 8;

/// A black-box dump snapshotted from a flight-recorder ring at an
/// incident. `jsonl` is a `blackbox_header` line plus the retained
/// records (see `wsn_obs::FlightRecorder::dump_jsonl`), renderable with
/// `obs-report postmortem`. Worker rings run on virtual clocks with
/// per-incarnation span ids, so identically-seeded runs dump
/// byte-identical black boxes.
#[derive(Clone, Debug)]
pub struct BlackBox {
    /// Worker id for worker-ring dumps; `None` for the service-level
    /// admission ring (shed storms).
    pub worker: Option<usize>,
    /// Incident kind: `worker-crash`, `quarantine`, `budget-expiry`, or
    /// `shed-storm`.
    pub reason: String,
    /// The JSONL dump.
    pub jsonl: String,
}

/// A solve the drain protocol handed back instead of finishing.
#[derive(Debug)]
pub struct ParkedSolve {
    /// Submission id at park time.
    pub id: u64,
    /// Instance hash.
    pub hash: u64,
    /// Attempts consumed before parking.
    pub attempts: u32,
    /// The original request, ready for resubmission.
    pub request: SolveRequest,
    /// Warm checkpoint when the solve had started; `None` for jobs parked
    /// straight out of the queue.
    pub checkpoint: Option<Box<IraCheckpoint>>,
}

/// A quarantined instance hash and its post-mortem.
#[derive(Clone, Debug)]
pub struct QuarantineEntry {
    /// The failure that opened the breaker.
    pub why: String,
    /// Total failures recorded for the hash.
    pub failures: u32,
    /// Latest checkpoint, when any failing attempt got far enough.
    pub checkpoint: Option<Box<IraCheckpoint>>,
}

/// What `drain()` returns: proof of a clean shutdown plus everything a
/// restarted service needs to continue.
#[derive(Debug)]
pub struct DrainReport {
    /// Interrupted/unstarted work with checkpoints, for resubmission.
    pub parked: Vec<ParkedSolve>,
    /// Open circuit breakers at shutdown, keyed by instance hash.
    pub quarantined: Vec<(u64, QuarantineEntry)>,
    /// Worker threads ever spawned (initial pool + respawns).
    pub workers_spawned: usize,
    /// Worker threads joined; equals `workers_spawned` iff nothing leaked.
    pub workers_joined: usize,
    /// Per-worker JSONL traces when `trace_workers` was set, in worker-id
    /// order (a respawned worker id appears once per incarnation).
    pub worker_traces: Vec<(usize, String)>,
    /// Black-box dumps snapshotted at incidents (crash, quarantine,
    /// budget expiry, shed storm), in incident order.
    pub black_boxes: Vec<BlackBox>,
}

impl DrainReport {
    /// True when every thread the fleet ever spawned was joined.
    pub fn no_leaked_workers(&self) -> bool {
        self.workers_spawned == self.workers_joined
    }
}

struct Metrics {
    accepted: Counter,
    shed: Counter,
    completed: Counter,
    retries: Counter,
    quarantined: Counter,
    quarantine_hits: Counter,
    worker_restarts: Counter,
    cache_hits: Counter,
    panics: Counter,
    parked: Counter,
    infeasible: Counter,
    queue_depth: Gauge,
    latency_ms: Histogram,
    latency_cached_ms: Histogram,
    latency_solved_ms: Histogram,
}

const LATENCY_BOUNDS: &[u64] =
    &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000];

impl Metrics {
    fn new(obs: &Obs) -> Self {
        let reg = obs.registry();
        Metrics {
            accepted: reg.counter("svc.accepted"),
            shed: reg.counter("svc.shed"),
            completed: reg.counter("svc.completed"),
            retries: reg.counter("svc.retries"),
            quarantined: reg.counter("svc.quarantined"),
            quarantine_hits: reg.counter("svc.quarantine_hits"),
            worker_restarts: reg.counter("svc.worker_restarts"),
            cache_hits: reg.counter("svc.cache_hits"),
            panics: reg.counter("svc.panics"),
            parked: reg.counter("svc.parked"),
            infeasible: reg.counter("svc.infeasible"),
            queue_depth: reg.gauge("svc.queue_depth"),
            latency_ms: reg.histogram("svc.latency_ms", LATENCY_BOUNDS),
            latency_cached_ms: reg.histogram("svc.latency_cached_ms", LATENCY_BOUNDS),
            latency_solved_ms: reg.histogram("svc.latency_solved_ms", LATENCY_BOUNDS),
        }
    }
}

/// One unit of queued work. Cloned only into the worker's recovery slot
/// (the checkpoint is taken out before solving, so a recovered clone
/// restarts that attempt cold — progress, not correctness, is what a
/// crashed worker loses).
#[derive(Clone)]
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) hash: u64,
    pub(crate) attempt: u32,
    pub(crate) submitted_ns: u64,
    pub(crate) not_before_ns: u64,
    pub(crate) request: SolveRequest,
    pub(crate) checkpoint: Option<Box<IraCheckpoint>>,
    pub(crate) slot: Arc<TicketSlot>,
}

struct Inflight {
    job: Job,
    ctx: Arc<SolveCtx>,
}

struct FleetState {
    ewma_ms: f64,
    fail_counts: HashMap<u64, u32>,
    quarantine: HashMap<u64, QuarantineEntry>,
    cache: HashMap<u64, SolveOutcome>,
}

struct Shared {
    cfg: ServiceConfig,
    obs: Arc<Obs>,
    metrics: Metrics,
    queue: AdmissionQueue,
    state: Mutex<FleetState>,
    inflight: Vec<Mutex<Option<Inflight>>>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    dequeues: AtomicU64,
    next_id: AtomicU64,
    parked: Mutex<Vec<ParkedSolve>>,
    traces: Mutex<Vec<(usize, String)>>,
    black_boxes: Mutex<Vec<BlackBox>>,
    /// Service-level flight ring fed by admission-path shed events; the
    /// virtual clock keeps shed-storm dumps deterministic.
    svc_ring: Option<Arc<Obs>>,
    shed_streak: AtomicU64,
}

impl Shared {
    fn state(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_ns(&self) -> u64 {
        self.cfg.clock.now_ns()
    }

    fn ms_since(&self, start_ns: u64) -> f64 {
        self.now_ns().saturating_sub(start_ns) as f64 / 1e6
    }

    fn inflight_count(&self) -> usize {
        self.inflight
            .iter()
            .filter(|s| s.lock().unwrap_or_else(|e| e.into_inner()).is_some())
            .count()
    }

    fn push_black_box(&self, worker: Option<usize>, reason: &str, jsonl: String) {
        self.black_boxes.lock().unwrap_or_else(|e| e.into_inner()).push(BlackBox {
            worker,
            reason: reason.to_string(),
            jsonl,
        });
    }

    /// Snapshot the ambient (worker) ring into a black box, when armed.
    fn dump_ambient_ring(&self, worker: Option<usize>, reason: &str) {
        if let Some(obs) = wsn_obs::current() {
            if let Some(jsonl) = obs.blackbox_jsonl(reason, worker) {
                self.push_black_box(worker, reason, jsonl);
            }
        }
    }

    /// Record a shed on the service ring and fire the shed-storm trigger
    /// when the consecutive-shed streak reaches the threshold.
    fn note_shed(&self, reason: &ShedReason) {
        let Some(ring) = &self.svc_ring else { return };
        ring.emit_event(
            Level::Warn,
            "svc.shed",
            vec![wsn_obs::field("reason", reason.to_string())],
        );
        let streak = self.shed_streak.fetch_add(1, Ordering::SeqCst) + 1;
        if streak == SHED_STORM_STREAK {
            if let Some(jsonl) = ring.blackbox_jsonl("shed-storm", None) {
                self.push_black_box(None, "shed-storm", jsonl);
            }
        }
    }

    /// An admission (or cache hit) breaks any shed streak.
    fn note_admitted(&self) {
        self.shed_streak.store(0, Ordering::SeqCst);
    }

    fn resolve(&self, job: Job, outcome: ServiceOutcome) {
        let latency_ms = self.ms_since(job.submitted_ns);
        job.slot.fill(Completion {
            id: job.id,
            hash: job.hash,
            outcome,
            latency_ms,
            attempts: job.attempt,
        });
    }
}

enum Epitaph {
    Crashed { wid: usize },
    Exited { wid: usize },
}

struct SupervisorStats {
    spawned: usize,
    joined: usize,
}

/// The running fleet. `submit` from any thread; `drain` to shut down.
/// Dropping without draining performs an implicit drain (nothing leaks
/// either way), discarding the report.
pub struct SolveService {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<SupervisorStats>>,
}

impl SolveService {
    /// Spawns the supervisor and the initial worker pool. Metric handles
    /// bind to the *calling* thread's ambient [`Obs`] (or a detached one),
    /// so install an observer first to see `svc.*` counters.
    pub fn start(cfg: ServiceConfig) -> SolveService {
        let obs = wsn_obs::current_or_detached();
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            metrics: Metrics::new(&obs),
            obs,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            state: Mutex::new(FleetState {
                ewma_ms: cfg.initial_ewma_ms.max(0.0),
                fail_counts: HashMap::new(),
                quarantine: HashMap::new(),
                cache: HashMap::new(),
            }),
            inflight: (0..workers).map(|_| Mutex::new(None)).collect(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            dequeues: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            parked: Mutex::new(Vec::new()),
            traces: Mutex::new(Vec::new()),
            black_boxes: Mutex::new(Vec::new()),
            svc_ring: (cfg.flight_recorder > 0)
                .then(|| Obs::with_flight(Clock::virtual_ticks(), cfg.flight_recorder)),
            shed_streak: AtomicU64::new(0),
            cfg: ServiceConfig { workers, ..cfg },
        });
        let sup_shared = shared.clone();
        let supervisor = std::thread::Builder::new()
            .name("wsn-svc-supervisor".into())
            .spawn(move || supervise(sup_shared))
            .expect("spawn supervisor thread");
        SolveService { shared, supervisor: Some(supervisor) }
    }

    /// Submits a request; always returns a ticket that resolves to a
    /// typed outcome (possibly immediately, on the shed/cache paths).
    pub fn submit(&self, request: SolveRequest) -> Ticket {
        self.submit_inner(request, None, 1)
    }

    /// Resubmits work parked by a previous service's drain; a parked
    /// checkpoint makes the solve continue via `resume_ira` instead of
    /// starting cold.
    pub fn submit_parked(&self, parked: ParkedSolve) -> Ticket {
        self.submit_inner(parked.request, parked.checkpoint, parked.attempts.max(1))
    }

    fn submit_inner(
        &self,
        request: SolveRequest,
        checkpoint: Option<Box<IraCheckpoint>>,
        attempt: u32,
    ) -> Ticket {
        let sh = &self.shared;
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let hash = instance_hash(&request.instance);
        let slot = TicketSlot::new();
        let ticket = Ticket { id, slot: slot.clone() };
        let now = sh.now_ns();
        let immediate = |outcome: ServiceOutcome| {
            slot.fill(Completion { id, hash, outcome, latency_ms: 0.0, attempts: 0 });
        };

        if sh.draining.load(Ordering::SeqCst) {
            sh.metrics.shed.inc();
            sh.note_shed(&ShedReason::Draining);
            immediate(ServiceOutcome::Shed(ShedReason::Draining));
            return ticket;
        }
        let quarantined_why = sh.state().quarantine.get(&hash).map(|q| q.why.clone());
        if let Some(why) = quarantined_why {
            sh.metrics.quarantine_hits.inc();
            immediate(ServiceOutcome::Quarantined { why });
            return ticket;
        }
        if sh.cfg.cache && checkpoint.is_none() {
            let cached = sh.state().cache.get(&hash).cloned();
            if let Some(out) = cached {
                sh.metrics.accepted.inc();
                sh.metrics.cache_hits.inc();
                sh.metrics.latency_cached_ms.observe(0);
                sh.note_admitted();
                immediate(ServiceOutcome::Solved(out));
                return ticket;
            }
        }
        if let Some(deadline) = request.deadline {
            let depth = sh.queue.len() + sh.inflight_count();
            let ewma = sh.state().ewma_ms.max(sh.cfg.initial_ewma_ms);
            let projected_ms = depth as f64 / sh.cfg.workers as f64 * ewma;
            let deadline_ms = deadline.as_secs_f64() * 1e3;
            if projected_ms > deadline_ms {
                sh.metrics.shed.inc();
                let reason = ShedReason::ProjectedWait { projected_ms, deadline_ms };
                sh.note_shed(&reason);
                immediate(ServiceOutcome::Shed(reason));
                return ticket;
            }
        }

        let job = Job {
            id,
            hash,
            attempt,
            submitted_ns: now,
            not_before_ns: now,
            request,
            checkpoint,
            slot: slot.clone(),
        };
        match sh.queue.try_push(job) {
            Ok(()) => {
                sh.metrics.accepted.inc();
                sh.metrics.queue_depth.set(sh.queue.len() as i64);
                sh.note_admitted();
            }
            Err(job) => {
                sh.metrics.shed.inc();
                sh.note_shed(&ShedReason::QueueFull);
                sh.resolve(job, ServiceOutcome::Shed(ShedReason::QueueFull));
            }
        }
        ticket
    }

    /// Current queue depth (runnable + backoff).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: stop admission, hand back in-flight checkpoints,
    /// park queued work, join every thread.
    pub fn drain(mut self) -> DrainReport {
        self.drain_inner()
    }

    fn drain_inner(&mut self) -> DrainReport {
        let sh = self.shared.clone();
        sh.draining.store(true, Ordering::SeqCst);
        for slot in &sh.inflight {
            if let Some(inf) = slot.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                inf.ctx.request_handback();
            }
        }
        for job in sh.queue.close_and_drain() {
            park(&sh, job, None);
        }
        sh.shutdown.store(true, Ordering::SeqCst);
        let stats = match self.supervisor.take() {
            Some(handle) => handle.join().expect("supervisor thread never panics"),
            None => SupervisorStats { spawned: 0, joined: 0 },
        };
        let quarantined: Vec<(u64, QuarantineEntry)> = {
            let mut st = sh.state();
            let mut q: Vec<_> = st.quarantine.drain().collect();
            q.sort_by_key(|(h, _)| *h);
            q
        };
        let mut worker_traces =
            std::mem::take(&mut *sh.traces.lock().unwrap_or_else(|e| e.into_inner()));
        worker_traces.sort_by_key(|(wid, _)| *wid);
        let parked = std::mem::take(&mut *sh.parked.lock().unwrap_or_else(|e| e.into_inner()));
        let black_boxes =
            std::mem::take(&mut *sh.black_boxes.lock().unwrap_or_else(|e| e.into_inner()));
        DrainReport {
            parked,
            quarantined,
            workers_spawned: stats.spawned,
            workers_joined: stats.joined,
            worker_traces,
            black_boxes,
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            let _ = self.drain_inner();
        }
    }
}

fn supervise(shared: Arc<Shared>) -> SupervisorStats {
    let (tx, rx): (Sender<Epitaph>, Receiver<Epitaph>) = channel::unbounded();
    let workers = shared.cfg.workers;
    let mut handles: Vec<Option<JoinHandle<()>>> =
        (0..workers).map(|wid| Some(spawn_worker(&shared, wid, tx.clone()))).collect();
    let mut spawned = workers;
    let mut joined = 0usize;
    let mut live = workers;

    while live > 0 || !shared.shutdown.load(Ordering::SeqCst) {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(Epitaph::Crashed { wid }) => {
                shared.metrics.worker_restarts.inc();
                if let Some(h) = handles[wid].take() {
                    let _ = h.join();
                    joined += 1;
                }
                // Recover the job the dead worker was holding: it goes
                // back through the retry/quarantine policy, so queued work
                // survives worker death.
                let recovered =
                    shared.inflight[wid].lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(inf) = recovered {
                    retry_or_quarantine(&shared, inf.job, None, "worker crashed mid-solve".into());
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    live -= 1;
                } else {
                    handles[wid] = Some(spawn_worker(&shared, wid, tx.clone()));
                    spawned += 1;
                }
            }
            Ok(Epitaph::Exited { wid }) => {
                if let Some(h) = handles[wid].take() {
                    let _ = h.join();
                    joined += 1;
                }
                live -= 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Defensive: join anything still held (cannot happen when every worker
    // sends an epitaph, but a leak must show up in the report, not hide).
    for h in handles.iter_mut().filter_map(Option::take) {
        let _ = h.join();
        joined += 1;
    }
    SupervisorStats { spawned, joined }
}

fn spawn_worker(shared: &Arc<Shared>, wid: usize, tx: Sender<Epitaph>) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("wsn-svc-worker-{wid}"))
        .spawn(move || {
            // Each incarnation gets a fresh virtual clock and span-id
            // sequence, so its trace — and any black-box dump cut from its
            // flight ring — is deterministic under a fixed seed.
            let ring = shared.cfg.flight_recorder;
            let obs = match (shared.cfg.trace_workers, ring > 0) {
                (true, true) => Some(Obs::with_trace_and_flight(Clock::virtual_ticks(), ring)),
                (true, false) => Some(Obs::with_trace(Clock::virtual_ticks())),
                (false, true) => Some(Obs::with_flight(Clock::virtual_ticks(), ring)),
                (false, false) => None,
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _guard = obs.as_ref().map(|o| wsn_obs::install(o.clone()));
                worker_loop(&shared, wid)
            }));
            if let Some(obs) = &obs {
                if shared.cfg.trace_workers {
                    shared
                        .traces
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((wid, obs.trace_jsonl()));
                }
                // An unwind that escaped the per-job guard killed this
                // worker; cut the black box before the thread is gone.
                if result.is_err() {
                    if let Some(jsonl) = obs.blackbox_jsonl("worker-crash", Some(wid)) {
                        shared.push_black_box(Some(wid), "worker-crash", jsonl);
                    }
                }
            }
            let epitaph = match result {
                Ok(()) => Epitaph::Exited { wid },
                Err(_) => Epitaph::Crashed { wid },
            };
            // The supervisor outlives every worker; a send failure means
            // it is already gone, in which case there is nobody left to
            // recover for.
            let _ = tx.send(epitaph);
        })
        .expect("spawn worker thread")
}

fn worker_loop(shared: &Arc<Shared>, wid: usize) {
    loop {
        let mut job = match shared.queue.pop(&shared.cfg.clock) {
            Popped::Closed => return,
            Popped::Job(job) => *job,
        };
        shared.metrics.queue_depth.set(shared.queue.len() as i64);
        let nth = shared.dequeues.fetch_add(1, Ordering::SeqCst) + 1;
        // Register the job immediately: it must count as in-flight for the
        // projected-wait estimate, and be recoverable the instant this
        // thread can die (the chaos kill below). The placeholder context
        // is replaced once the real one is armed.
        *shared.inflight[wid].lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Inflight { job: job.clone(), ctx: SolveCtx::unlimited() });

        if let Some(deadline) = job.request.deadline {
            let waited_ns = shared.now_ns().saturating_sub(job.submitted_ns);
            if waited_ns > u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX) {
                shared.inflight[wid].lock().unwrap_or_else(|e| e.into_inner()).take();
                shared.metrics.shed.inc();
                shared.note_shed(&ShedReason::ExpiredInQueue);
                shared.resolve(job, ServiceOutcome::Shed(ShedReason::ExpiredInQueue));
                continue;
            }
        }

        if shared.cfg.chaos.kill_every.is_some_and(|k| k > 0 && nth.is_multiple_of(k)) {
            // Die where no guard catches it: the supervisor must earn its
            // keep by recovering the job just registered above.
            panic!("chaos: worker kill on dequeue #{nth}");
        }
        if let Some((every, stall)) = shared.cfg.chaos.stall {
            if every > 0 && nth.is_multiple_of(every) {
                std::thread::sleep(stall);
            }
        }

        let checkpoint = job.checkpoint.take();
        let ctx = job.request.budget.start_with_clock(shared.cfg.clock.clone());
        *shared.inflight[wid].lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Inflight { job: job.clone(), ctx: ctx.clone() });
        // Close the race with a drain that swept the slots before this
        // job was registered: never start a solve a drain cannot stop.
        if shared.draining.load(Ordering::SeqCst) {
            ctx.request_handback();
        }

        let _span = wsn_obs::span_with(
            "svc.job",
            vec![wsn_obs::field("id", job.id), wsn_obs::field("attempt", u64::from(job.attempt))],
        );
        let outcome = {
            let instance: &MrlcInstance = &job.request.instance;
            let resilience: &ResilienceConfig = &shared.cfg.resilience;
            let budget = job.request.budget;
            let poisoned = shared.cfg.chaos.panic_hashes.contains(&job.hash);
            catch_unwind(AssertUnwindSafe(move || {
                if poisoned {
                    panic!("chaos: poisoned instance");
                }
                mrlc_core::solve_resilient_ctx(instance, resilience, budget, &ctx, checkpoint)
            }))
        };
        let expired = shared.inflight[wid]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .is_some_and(|inf| inf.ctx.is_expired());
        if expired {
            // The budget ran out mid-solve: snapshot what the worker was
            // doing when the deadline hit, whatever the ladder salvaged.
            shared.dump_ambient_ring(Some(wid), "budget-expiry");
        }

        match outcome {
            Ok(Ok(ResilientRun::Done(out))) => complete(shared, job, out),
            Ok(Ok(ResilientRun::Handback(cp))) => park(shared, job, Some(cp)),
            Ok(Err(ResilienceError::Infeasible { lc, reason })) => {
                shared.metrics.infeasible.inc();
                wsn_obs::event("svc.outcome", vec![wsn_obs::field("kind", "infeasible")]);
                shared.resolve(job, ServiceOutcome::Infeasible { lc, reason });
            }
            Err(payload) => {
                shared.metrics.panics.inc();
                retry_or_quarantine(shared, job, None, panic_message(payload));
            }
        }
    }
}

fn complete(shared: &Arc<Shared>, job: Job, out: SolveOutcome) {
    let latency_ms = shared.ms_since(job.submitted_ns);
    {
        let mut st = shared.state();
        st.fail_counts.remove(&job.hash);
        st.ewma_ms =
            if st.ewma_ms <= 0.0 { latency_ms } else { 0.8 * st.ewma_ms + 0.2 * latency_ms };
        if shared.cfg.cache {
            st.cache.insert(job.hash, out.clone());
        }
    }
    shared.metrics.completed.inc();
    shared.obs.registry().counter(&format!("svc.outcome.{}", out.tier)).inc();
    shared.metrics.latency_ms.observe(latency_ms.max(0.0) as u64);
    shared.metrics.latency_solved_ms.observe(latency_ms.max(0.0) as u64);
    wsn_obs::event("svc.outcome", vec![wsn_obs::field("kind", out.tier.to_string())]);
    shared.resolve(job, ServiceOutcome::Solved(out));
}

fn park(shared: &Arc<Shared>, job: Job, checkpoint: Option<Box<IraCheckpoint>>) {
    shared.metrics.parked.inc();
    wsn_obs::event("svc.outcome", vec![wsn_obs::field("kind", "parked")]);
    let parked = ParkedSolve {
        id: job.id,
        hash: job.hash,
        attempts: job.attempt,
        request: job.request.clone(),
        checkpoint,
    };
    shared.parked.lock().unwrap_or_else(|e| e.into_inner()).push(parked);
    shared.resolve(job, ServiceOutcome::Parked);
}

fn retry_or_quarantine(
    shared: &Arc<Shared>,
    mut job: Job,
    checkpoint: Option<Box<IraCheckpoint>>,
    why: String,
) {
    let failures = {
        let mut st = shared.state();
        let f = st.fail_counts.entry(job.hash).or_insert(0);
        *f += 1;
        *f
    };
    if failures >= shared.cfg.quarantine_after {
        let entry = QuarantineEntry { why: why.clone(), failures, checkpoint };
        {
            let mut st = shared.state();
            st.fail_counts.remove(&job.hash);
            st.quarantine.insert(job.hash, entry);
        }
        shared.metrics.quarantined.inc();
        wsn_obs::warn("svc.quarantine", vec![wsn_obs::field("failures", u64::from(failures))]);
        // On the worker-panic path the ambient ring holds the attempts
        // that opened the breaker; on the supervisor's crash-recovery
        // path there is no ambient ring (the crash dump already fired).
        shared.dump_ambient_ring(None, "quarantine");
        shared.resolve(job, ServiceOutcome::Quarantined { why });
        return;
    }
    shared.metrics.retries.inc();
    job.attempt += 1;
    job.checkpoint = checkpoint;
    job.not_before_ns =
        shared.now_ns().saturating_add(backoff_ns(&shared.cfg, job.hash, job.attempt));
    if let Err(job) = shared.queue.push_again(job) {
        // Queue closed under us: the fleet is draining, park instead.
        park(shared, job, None);
    }
}

/// Capped exponential backoff with deterministic jitter in `[0.5, 1.5)`,
/// keyed on `(seed, hash, attempt)` so reruns schedule identically.
fn backoff_ns(cfg: &ServiceConfig, hash: u64, attempt: u32) -> u64 {
    let exp = attempt.saturating_sub(2).min(20);
    let base = u64::try_from(cfg.backoff_base.as_nanos()).unwrap_or(u64::MAX);
    let cap = u64::try_from(cfg.backoff_cap.as_nanos()).unwrap_or(u64::MAX);
    let raw = base.saturating_mul(1u64 << exp).min(cap);
    let r = splitmix64(cfg.seed ^ hash ^ u64::from(attempt).rotate_left(32));
    let factor = 0.5 + (r % 1024) as f64 / 1024.0;
    (raw as f64 * factor) as u64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

//! Scaling study: how IRA, its LP, and AAML grow with network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrlc_bench::bench_graph;
use mrlc_core::MrlcInstance;
use std::hint::black_box;
use wsn_baselines::{aaml_tree, AamlConfig};
use wsn_model::{lifetime, EnergyModel};

fn bench_ira_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ira_scaling");
    g.sample_size(10);
    for n in [8usize, 12, 16, 24, 32] {
        let net = bench_graph(n, 100 + n as u64);
        let model = EnergyModel::PAPER;
        // A mild bound: at most 4 children anywhere.
        let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(mrlc_core::solve_ira(inst, &Default::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_aaml_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("aaml_scaling");
    g.sample_size(20);
    for n in [8usize, 16, 32, 48] {
        let net = bench_graph(n, 200 + n as u64);
        let model = EnergyModel::PAPER;
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| black_box(aaml_tree(net, &model, None, &AamlConfig::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_separation_scaling(c: &mut Criterion) {
    use mrlc_core::separation::{violated_sets, FracEdge};
    let mut g = c.benchmark_group("separation_scaling");
    for n in [8usize, 16, 32] {
        let net = bench_graph(n, 300 + n as u64);
        // A fractional point spreading mass uniformly (forces the min-cut
        // oracle rather than the component pre-check).
        let m = net.num_edges();
        let x = (n as f64 - 1.0) / m as f64;
        let edges: Vec<FracEdge> =
            net.edges().map(|(_, l)| FracEdge { u: l.u().index(), v: l.v().index(), x }).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| black_box(violated_sets(n, edges, 1e-7)))
        });
    }
    g.finish();
}

/// The ISSUE acceptance benchmark: the same seeded n = 80 random-graph
/// instance solved by IRA with the warm-started incremental LP vs. the
/// cold rebuild-every-round path. Warm must come out ≥ 3× faster.
fn bench_warm_vs_cold_lp(c: &mut Criterion) {
    use mrlc_core::IraConfig;
    let mut g = c.benchmark_group("warm_vs_cold_lp_n80");
    g.sample_size(10);
    let net = bench_graph(80, 100 + 80);
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    let inst = MrlcInstance::new(net, model, lc).unwrap();
    for (label, warm) in [("warm", true), ("cold", false)] {
        let cfg = IraConfig { warm_lp: warm, ..IraConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(label), &inst, |b, inst| {
            b.iter(|| black_box(mrlc_core::solve_ira(inst, &cfg).unwrap()))
        });
    }
    g.finish();
}

/// One core, many benches: shorter measurement windows keep the full suite
/// tractable while criterion still reports stable medians.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group!(
    name = scaling;
    config = quick_config();
    targets = bench_ira_scaling, bench_aaml_scaling, bench_separation_scaling,
        bench_warm_vs_cold_lp
);
criterion_main!(scaling);

//! Micro-benchmarks for the algorithmic building blocks: the LP solver,
//! the separation oracle's max-flow, Prüfer coding, MST, AAML, and one
//! simulated aggregation round.

use criterion::{criterion_group, criterion_main, Criterion};
use mrlc_bench::bench_graph;
use mrlc_core::{CutLp, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use wsn_baselines::{aaml_tree, AamlConfig};
use wsn_graph::{mst_tree, FlowNetwork};
use wsn_model::EnergyModel;
use wsn_prufer::{CodedTree, PruferCode};
use wsn_sim::simulate_round;

fn bench_lp_spanning_tree(c: &mut Criterion) {
    let net = bench_graph(16, 42);
    let edges: Vec<mrlc_core::formulation::LpEdge> = net
        .edges()
        .map(|(e, l)| mrlc_core::formulation::LpEdge {
            u: l.u().index(),
            v: l.v().index(),
            cost: l.cost(),
            tag: e.index(),
        })
        .collect();
    c.bench_function("lp_subtour_spanning_tree_n16", |b| {
        b.iter(|| {
            let mut cut = CutLp::new();
            black_box(cut.solve(16, &edges, &[]).unwrap())
        })
    });
}

fn bench_lp_with_degree_caps(c: &mut Criterion) {
    let net = bench_graph(16, 43);
    let edges: Vec<mrlc_core::formulation::LpEdge> = net
        .edges()
        .map(|(e, l)| mrlc_core::formulation::LpEdge {
            u: l.u().index(),
            v: l.v().index(),
            cost: l.cost(),
            tag: e.index(),
        })
        .collect();
    let caps: Vec<(usize, f64)> = (0..16).map(|v| (v, 3.0)).collect();
    c.bench_function("lp_degree_capped_n16", |b| {
        b.iter(|| {
            let mut cut = CutLp::new();
            black_box(cut.solve(16, &edges, &caps).unwrap())
        })
    });
}

fn bench_maxflow(c: &mut Criterion) {
    c.bench_function("dinic_maxflow_64_nodes", |b| {
        b.iter(|| {
            let mut f = FlowNetwork::new(64);
            for i in 0..63 {
                f.add_edge(i, i + 1, (i % 7 + 1) as f64);
                if i + 5 < 64 {
                    f.add_edge(i, i + 5, 2.0);
                }
            }
            black_box(f.max_flow(0, 63))
        })
    });
}

fn bench_ira_dfl(c: &mut Criterion) {
    use wsn_radio::LinkModel;
    use wsn_testbed::{dfl_network, DflConfig};
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).unwrap();
    let model = EnergyModel::PAPER;
    let aaml = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
    let inst = MrlcInstance::new(net, model, aaml.lifetime * 0.7).unwrap();
    let mut g = c.benchmark_group("ira");
    g.sample_size(20);
    g.bench_function("ira_dfl_16_nodes", |b| {
        b.iter(|| black_box(mrlc_core::solve_ira(&inst, &Default::default()).unwrap()))
    });
    g.finish();
}

fn bench_prufer(c: &mut Criterion) {
    // A 64-node random tree.
    let mut parents = vec![None];
    let mut rng_state = 88172645463325252u64;
    for i in 1..64usize {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        parents.push(Some(wsn_model::NodeId::new(rng_state as usize % i)));
    }
    let tree = wsn_model::AggregationTree::from_parents(wsn_model::NodeId::SINK, parents).unwrap();
    c.bench_function("prufer_encode_n64", |b| {
        b.iter(|| black_box(PruferCode::encode(&tree).unwrap()))
    });
    let code = PruferCode::encode(&tree).unwrap();
    c.bench_function("prufer_decode_n64", |b| b.iter(|| black_box(code.decode().unwrap())));
    let coded = CodedTree::from_tree(&tree).unwrap();
    c.bench_function("prufer_parent_change_n64", |b| {
        b.iter(|| {
            let mut ct = coded.clone();
            // Move a leaf under the sink — always valid.
            let leaf =
                (1..64).map(wsn_model::NodeId::new).find(|&v| ct.child_count(v) == 0).unwrap();
            ct.change_parent(leaf, wsn_model::NodeId::SINK).unwrap();
            black_box(ct)
        })
    });
}

fn bench_mst_and_aaml(c: &mut Criterion) {
    let net = bench_graph(32, 44);
    c.bench_function("mst_prim_n32", |b| b.iter(|| black_box(mst_tree(&net).unwrap())));
    let model = EnergyModel::PAPER;
    let mut g = c.benchmark_group("aaml");
    g.sample_size(30);
    g.bench_function("aaml_n32", |b| {
        b.iter(|| black_box(aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap()))
    });
    g.finish();
}

fn bench_round_sim(c: &mut Criterion) {
    let net = bench_graph(32, 45);
    let tree = mst_tree(&net).unwrap();
    let mut rng = StdRng::seed_from_u64(46);
    c.bench_function("aggregation_round_n32", |b| {
        b.iter(|| black_box(simulate_round(&net, &tree, &mut rng)))
    });
}

fn bench_exact_solver(c: &mut Criterion) {
    use mrlc_core::{solve_exact, ExactConfig};
    use wsn_model::lifetime;
    let net = bench_graph(12, 47);
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
    let inst = MrlcInstance::new(net, model, lc).unwrap();
    let mut g = c.benchmark_group("exact");
    g.sample_size(20);
    g.bench_function("branch_and_bound_n12", |b| {
        b.iter(|| black_box(solve_exact(&inst, &ExactConfig::default())))
    });
    g.finish();
}

fn bench_gomory_hu(c: &mut Criterion) {
    use wsn_graph::GomoryHuTree;
    let net = bench_graph(24, 48);
    let edges: Vec<(usize, usize, f64)> =
        net.links().iter().map(|l| (l.u().index(), l.v().index(), l.prr().value())).collect();
    c.bench_function("gomory_hu_n24", |b| b.iter(|| black_box(GomoryHuTree::build(24, &edges))));
}

fn bench_wire_codec(c: &mut Criterion) {
    use wsn_proto::Message;
    let msg = Message::ParentChange {
        epoch: 7,
        seq: 42,
        child: wsn_model::NodeId::new(4),
        new_parent: wsn_model::NodeId::new(7),
    };
    c.bench_function("wire_encode_decode_parent_change", |b| {
        b.iter(|| {
            let frame = msg.encode();
            black_box(Message::decode(&frame).unwrap())
        })
    });
}

fn bench_network_sim_announce(c: &mut Criterion) {
    use wsn_proto::DistributedNetwork;
    let net = bench_graph(32, 49);
    let tree = mst_tree(&net).unwrap();
    c.bench_function("distributed_announce_n32", |b| {
        b.iter(|| {
            let mut d = DistributedNetwork::new(32);
            black_box(d.announce(&tree).unwrap())
        })
    });
}

/// One core, many benches: shorter measurement windows keep the full suite
/// tractable while criterion still reports stable medians.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group!(
    name = micro;
    config = quick_config();
    targets =
    bench_lp_spanning_tree,
    bench_lp_with_degree_caps,
    bench_maxflow,
    bench_ira_dfl,
    bench_prufer,
    bench_mst_and_aaml,
    bench_round_sim,
    bench_exact_solver,
    bench_gomory_hu,
    bench_wire_codec,
    bench_network_sim_announce,
);
criterion_main!(micro);

//! One benchmark per paper figure: each measures the cost of regenerating
//! that figure's data at a reduced-but-representative scale (the `fast()`
//! presets), so regressions in any stage of the pipeline show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_experiments::*;

fn bench_fig1(c: &mut Criterion) {
    let cfg = fig1::Config::fast();
    c.bench_function("fig1_retransmission_packets", |b| b.iter(|| black_box(fig1::run(&cfg))));
}

fn bench_fig2(c: &mut Criterion) {
    let cfg = fig2::Config::fast();
    c.bench_function("fig2_prr_vs_distance", |b| b.iter(|| black_box(fig2::run(&cfg))));
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = fig3::Config::fast();
    c.bench_function("fig3_power_traces", |b| b.iter(|| black_box(fig3::run(&cfg))));
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_toy_reliability", |b| b.iter(|| black_box(fig4::run())));
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_prufer_example", |b| b.iter(|| black_box(fig5::run())));
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = fig7::Config::default();
    let mut g = c.benchmark_group("fig7_dfl_comparison");
    g.sample_size(20);
    g.bench_function("aaml_mst_ira", |b| b.iter(|| black_box(fig7::run(&cfg))));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = fig8::Config { instances: 4, ..fig8::Config::default() };
    let mut g = c.benchmark_group("fig8_random_equal_energy");
    g.sample_size(10);
    g.bench_function("four_instances", |b| b.iter(|| black_box(fig8::run(&cfg))));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = fig8::Config { instances: 4, ..fig9::paper_config() };
    let mut g = c.benchmark_group("fig9_random_heterogeneous_energy");
    g.sample_size(10);
    g.bench_function("four_instances", |b| b.iter(|| black_box(fig9::run(&cfg))));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let cfg = fig10::Config { probabilities: vec![0.3, 0.7], instances: 3, base_seed: 1000 };
    let mut g = c.benchmark_group("fig10_density_sweep");
    g.sample_size(10);
    g.bench_function("two_densities", |b| b.iter(|| black_box(fig10::run(&cfg))));
    g.finish();
}

fn bench_fig11_13(c: &mut Criterion) {
    let cfg = fig11_13::Config { rounds: 10, ..fig11_13::Config::default() };
    let mut g = c.benchmark_group("fig11_13_link_dynamics");
    g.sample_size(10);
    g.bench_function("ten_rounds", |b| b.iter(|| black_box(fig11_13::run(&cfg))));
    g.finish();
}

/// One core, many benches: shorter measurement windows keep the full suite
/// tractable while criterion still reports stable medians.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group!(
    name = figures;
    config = quick_config();
    targets =
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11_13,
);
criterion_main!(figures);

//! Shared fixtures for the Criterion benchmarks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::Network;
use wsn_testbed::{random_graph, RandomGraphConfig};

/// A deterministic connected `G(n, 0.7)` instance with the paper's link
/// qualities and energies.
pub fn bench_graph(n: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomGraphConfig { n, ..RandomGraphConfig::default() };
    random_graph(&cfg, &mut rng).expect("connected bench instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        let a = bench_graph(16, 1);
        let b = bench_graph(16, 1);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}

//! Warm-started incremental simplex.
//!
//! The cutting-plane loop of `mrlc-core` solves a *sequence* of LPs where
//! each differs from the last by a handful of appended `≤` rows (subtour
//! cuts), tightened variable bounds (IRA's edge drops) or relaxed
//! right-hand sides (IRA's constraint removals). The dense two-phase
//! solver in [`crate::simplex`] cold-starts every time; this module keeps
//! the **tableau and basis alive across solves** so each re-solve costs a
//! few dual-simplex repair pivots instead of a full phase-1 restart.
//!
//! Mechanics:
//!
//! * The tableau `B⁻¹A` is stored **row-sparse** ([`SpRow`]): subtour and
//!   degree rows touch a sliver of the columns, and the pivot/price loops
//!   iterate only stored entries.
//! * [`IncrementalLp::append_le_row`] reduces the new row against the
//!   current basis (one sparse axpy per basic column present) and seats
//!   the new slack basic — no refactorization.
//! * A mutation can leave the basis primal-infeasible but never
//!   dual-infeasible (reduced costs are untouched by bound/rhs changes),
//!   so [`IncrementalLp::solve`] repairs with the **bounded-variable dual
//!   simplex** and then runs a primal cleanup pass.
//! * Every solve cross-checks the result against a mirror
//!   [`LpProblem`]; the mirror also lets callers rebuild cold if the warm
//!   path ever hits its iteration cap.
//!
//! Pivot counts are exposed ([`IncrementalLp::total_pivots`],
//! [`LpSolution::iterations`]) so benchmarks can track solver effort, not
//! just wall time.

use crate::budget::{FaultKind, SolveCtx};
use crate::problem::{LpProblem, Relation, VarId};
use crate::simplex::{LpError, LpSolution, LpStatus};
use std::sync::Arc;

/// Feasibility/pivot tolerance.
const TOL: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
const DJ_TOL: f64 = 1e-9;
/// Entries below this magnitude are dropped from sparse rows.
const DROP_TOL: f64 = 1e-12;
/// Consecutive degenerate pivots before switching to Bland-style selection.
const BLAND_TRIGGER: usize = 64;

/// Index of a row (constraint) within an [`IncrementalLp`], aligned with
/// insertion order across both initial rows and appended rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowId(pub usize);

/// A sparse tableau row: parallel `cols`/`vals` sorted by column.
#[derive(Clone, Debug, Default)]
struct SpRow {
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SpRow {
    fn from_terms(terms: &[(usize, f64)]) -> SpRow {
        let mut pairs: Vec<(usize, f64)> = terms.to_vec();
        pairs.sort_unstable_by_key(|&(c, _)| c);
        let mut row = SpRow::default();
        for (c, v) in pairs {
            if let Some(last) = row.cols.last() {
                if *last as usize == c {
                    *row.vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            row.cols.push(c as u32);
            row.vals.push(v);
        }
        row.prune();
        row
    }

    fn get(&self, col: usize) -> f64 {
        match self.cols.binary_search(&(col as u32)) {
            Ok(i) => self.vals[i],
            Err(_) => 0.0,
        }
    }

    fn scale(&mut self, k: f64) {
        for v in &mut self.vals {
            *v *= k;
        }
    }

    fn nnz(&self) -> usize {
        self.cols.len()
    }

    fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.cols.iter().zip(&self.vals).map(|(&c, &v)| (c as usize, v))
    }

    fn prune(&mut self) {
        let mut w = 0;
        for r in 0..self.cols.len() {
            if self.vals[r].abs() > DROP_TOL {
                self.cols[w] = self.cols[r];
                self.vals[w] = self.vals[r];
                w += 1;
            }
        }
        self.cols.truncate(w);
        self.vals.truncate(w);
    }

    /// `self += k * other`, merging into the provided scratch buffers
    /// (which are swapped in; the old storage becomes the new scratch).
    fn axpy(&mut self, k: f64, other: &SpRow, scratch: &mut (Vec<u32>, Vec<f64>)) {
        let (sc, sv) = scratch;
        sc.clear();
        sv.clear();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.cols.len() || b < other.cols.len() {
            let ca = self.cols.get(a).copied().unwrap_or(u32::MAX);
            let cb = other.cols.get(b).copied().unwrap_or(u32::MAX);
            if ca < cb {
                sc.push(ca);
                sv.push(self.vals[a]);
                a += 1;
            } else if cb < ca {
                let v = k * other.vals[b];
                if v.abs() > DROP_TOL {
                    sc.push(cb);
                    sv.push(v);
                }
                b += 1;
            } else {
                let v = self.vals[a] + k * other.vals[b];
                if v.abs() > DROP_TOL {
                    sc.push(ca);
                    sv.push(v);
                }
                a += 1;
                b += 1;
            }
        }
        std::mem::swap(&mut self.cols, sc);
        std::mem::swap(&mut self.vals, sv);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ColKind {
    Structural,
    Slack,
    Artificial,
}

/// A linear program whose tableau persists across solves, accepting
/// appended `≤` rows, tightened bounds and relaxed right-hand sides
/// between them. See the module docs for the warm-start contract.
#[derive(Clone, Debug, Default)]
pub struct IncrementalLp {
    /// Mirror of the *current* constraint set, used for verification and
    /// cold fallbacks.
    mirror: LpProblem,
    /// Slack column of each RowId (None for `=` rows).
    row_slack: Vec<Option<usize>>,

    // ---- tableau state (empty until the first solve) ----
    solved_once: bool,
    ncols: usize,
    kind: Vec<ColKind>,
    /// Shifted bounds: every column has lower 0; structural columns are
    /// shifted by their declared lower bound.
    upper: Vec<f64>,
    cost: Vec<f64>,
    at_upper: Vec<bool>,
    in_basis: Vec<bool>,
    rows: Vec<SpRow>,
    /// `rhs[i]` is the current value of `basis[i]` (shifted coordinates).
    rhs: Vec<f64>,
    basis: Vec<usize>,
    drow: Vec<f64>,
    scratch: (Vec<u32>, Vec<f64>),
    bland: bool,
    degenerate_run: usize,
    pivots_total: usize,
    solves_total: usize,
    warm_solves: usize,
    cold_fallbacks: usize,
    dual_repair_pivots: usize,
    /// Optional budget/cancellation token (shared with the caller); when
    /// absent the solver's behaviour is byte-identical to the un-budgeted
    /// engine — no clock reads, no fault polls.
    ctx: Option<Arc<SolveCtx>>,
}

impl IncrementalLp {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable (before the first solve).
    ///
    /// # Panics
    /// Panics if called after the first solve.
    pub fn add_var(&mut self, cost: f64, lower: f64, upper: f64) -> VarId {
        assert!(!self.solved_once, "variables must be added before the first solve");
        self.mirror.add_var(cost, lower, upper)
    }

    /// Adds a `[0, 1]` variable (before the first solve).
    pub fn add_unit_var(&mut self, cost: f64) -> VarId {
        self.add_var(cost, 0.0, 1.0)
    }

    /// Adds a constraint of any sense (before the first solve).
    ///
    /// # Panics
    /// Panics if called after the first solve — append only `≤` rows then,
    /// via [`IncrementalLp::append_le_row`].
    pub fn add_row(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) -> RowId {
        assert!(!self.solved_once, "use append_le_row after the first solve");
        self.mirror.add_constraint(terms, rel, rhs);
        self.row_slack.push(None); // assigned when the tableau is built
        RowId(self.row_slack.len() - 1)
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.mirror.num_vars()
    }

    /// Number of rows (constraints) ever added, including appended ones.
    pub fn num_rows(&self) -> usize {
        self.mirror.num_constraints()
    }

    /// Simplex pivots performed across all solves.
    pub fn total_pivots(&self) -> usize {
        self.pivots_total
    }

    /// Solve calls performed.
    pub fn total_solves(&self) -> usize {
        self.solves_total
    }

    /// Solves that reused the previous basis (vs. cold tableau builds).
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Warm solves that had to be redone cold — the mirror check failed or
    /// the warm path hit its iteration cap. A nonzero rate is a numerical
    /// health signal, not an error (results stay correct either way).
    pub fn cold_fallbacks(&self) -> usize {
        self.cold_fallbacks
    }

    /// Pivots spent inside dual-simplex repair, across all warm attempts
    /// (including attempts later abandoned for a cold rebuild).
    pub fn dual_repair_pivots(&self) -> usize {
        self.dual_repair_pivots
    }

    /// A cold copy of the current constraint set (for fallbacks and
    /// verification).
    pub fn to_problem(&self) -> LpProblem {
        self.mirror.clone()
    }

    /// Installs (or clears) the budget/cancellation context polled between
    /// pivots. Expiry surfaces as [`LpError::Interrupted`]; the tableau
    /// stays valid and a later solve (same or fresh context) continues
    /// warm from it.
    pub fn set_ctx(&mut self, ctx: Option<Arc<SolveCtx>>) {
        self.ctx = ctx;
    }

    /// The installed budget context, if any.
    pub fn ctx(&self) -> Option<&Arc<SolveCtx>> {
        self.ctx.as_ref()
    }

    /// Polls the budget context; `Err(Interrupted)` on expiry/cancel.
    #[inline]
    fn poll_budget(&self) -> Result<(), LpError> {
        match &self.ctx {
            Some(ctx) if ctx.should_stop(self.pivots_total as u64) => Err(LpError::Interrupted),
            _ => Ok(()),
        }
    }

    // ---- mutations ----------------------------------------------------

    /// Appends `Σ aᵢxᵢ ≤ rhs` without discarding the basis. Before the
    /// first solve this is equivalent to [`IncrementalLp::add_row`].
    pub fn append_le_row(&mut self, terms: &[(VarId, f64)], rhs: f64) -> RowId {
        self.mirror.add_constraint(terms, Relation::Le, rhs);
        let id = RowId(self.row_slack.len());
        self.row_slack.push(None);
        if !self.solved_once {
            return id;
        }

        // Shift: rhs' = rhs − Σ aᵢ·lᵢ over structural lower bounds.
        let nvars = self.mirror.num_vars();
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len() + 1);
        let mut b = rhs;
        {
            let c = self.mirror.constraints.last().unwrap();
            for &(j, a) in &c.terms {
                b -= a * self.mirror.lower[j];
                dense.push((j, a));
            }
        }
        let _ = nvars;
        // New slack column.
        let slack = self.push_col(ColKind::Slack, f64::INFINITY, 0.0);
        self.row_slack[id.0] = Some(slack);
        dense.push((slack, 1.0));
        let mut row = SpRow::from_terms(&dense);

        // Slack value at the current point: b − a·x (shifted coords).
        let mut slack_val = b;
        for (c, a) in row.iter() {
            if c != slack {
                slack_val -= a * self.col_value(c);
            }
        }

        // Reduce against the basis: basis columns form an identity across
        // rows, so one axpy per basic column present suffices.
        let factors: Vec<(usize, f64)> = (0..self.rows.len())
            .filter_map(|i| {
                let f = row.get(self.basis[i]);
                (f.abs() > DROP_TOL).then_some((i, f))
            })
            .collect();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, f) in factors {
            row.axpy(-f, &self.rows[i], &mut scratch);
        }
        self.scratch = scratch;

        self.rows.push(row);
        self.rhs.push(slack_val);
        self.basis.push(slack);
        self.in_basis[slack] = true;
        id
    }

    /// Appends a batch of `≤` rows — the multi-cut entry point. Every row
    /// joins the tableau with its slack seated immediately, so the single
    /// dual-simplex repair at the next [`IncrementalLp::solve`] serves the
    /// whole batch instead of one repair per cut.
    pub fn append_le_rows(&mut self, rows: &[(Vec<(VarId, f64)>, f64)]) -> Vec<RowId> {
        rows.iter().map(|(terms, rhs)| self.append_le_row(terms, *rhs)).collect()
    }

    /// Tightens (or loosens) the upper bound of `v`. Setting it equal to
    /// the lower bound fixes the variable — IRA's edge-drop move.
    pub fn set_upper(&mut self, v: VarId, new_upper: f64) {
        let j = v.index();
        assert!(!new_upper.is_nan());
        assert!(
            new_upper >= self.mirror.lower[j] - TOL,
            "upper bound {new_upper} below lower {}",
            self.mirror.lower[j]
        );
        self.mirror.upper[j] = new_upper;
        if !self.solved_once {
            return;
        }
        let shifted = new_upper - self.mirror.lower[j];
        let old = self.upper[j];
        self.upper[j] = shifted;
        if self.in_basis[j] {
            return; // possible primal violation; the next solve repairs it
        }
        if self.at_upper[j] {
            // The resting value moves with the bound; basic values follow.
            let delta = shifted - old;
            if delta != 0.0 && old.is_finite() {
                for i in 0..self.rows.len() {
                    let a = self.rows[i].get(j);
                    if a != 0.0 {
                        self.rhs[i] -= a * delta;
                    }
                }
            }
            if shifted <= TOL {
                self.at_upper[j] = false; // fixed at (coincident) lower
            }
        }
    }

    /// Relaxes the right-hand side of `≤` row `row` to `new_rhs`
    /// (`new_rhs ≥` the current one) — IRA's constraint-removal move with
    /// a finite vacuous bound instead of a deleted row.
    ///
    /// # Panics
    /// Panics if `row` is not a `≤` row or `new_rhs` shrinks it.
    pub fn relax_le_rhs(&mut self, row: RowId, new_rhs: f64) {
        let c = &mut self.mirror.constraints[row.0];
        assert!(c.rel == Relation::Le, "only ≤ rows can be relaxed");
        let delta = new_rhs - c.rhs;
        assert!(delta >= -TOL, "relax_le_rhs must not tighten (delta {delta})");
        if delta <= 0.0 {
            return;
        }
        c.rhs = new_rhs;
        if !self.solved_once {
            return;
        }
        // The tableau column of this row's slack is B⁻¹e_row, so the basic
        // values shift by delta along it.
        let slack = self.row_slack[row.0].expect("≤ rows always carry a slack");
        for i in 0..self.rows.len() {
            let a = self.rows[i].get(slack);
            if a != 0.0 {
                self.rhs[i] += a * delta;
            }
        }
    }

    // ---- solving ------------------------------------------------------

    /// Solves the current problem: a cold two-phase build on the first
    /// call, a dual-simplex repair plus primal cleanup afterwards. On a
    /// warm solve whose result fails verification against the mirror the
    /// tableau is rebuilt cold transparently.
    pub fn solve(&mut self) -> Result<LpSolution, LpError> {
        self.solves_total += 1;
        for j in 0..self.mirror.num_vars() {
            if self.mirror.lower[j] > self.mirror.upper[j] + TOL {
                return Err(LpError::InvalidBounds);
            }
        }
        let start = self.pivots_total;
        let warm_before = self.warm_solves;
        let result = self.solve_inner();
        self.publish_solve_metrics(self.pivots_total - start, self.warm_solves > warm_before);
        result
    }

    fn solve_inner(&mut self) -> Result<LpSolution, LpError> {
        if let Some(ctx) = &self.ctx {
            if ctx.poll_fault(FaultKind::PoisonCut) {
                // Chaos injection: a poisoned cut — the newest row goes
                // non-finite in the tableau *and* the mirror, so no
                // refactorization can repair it. The sentinels must turn
                // this into `LpError::Numerical`, never a panic.
                if let Some(c) = self.mirror.constraints.last_mut() {
                    c.rhs = f64::NAN;
                }
                if let Some(v) = self.rhs.last_mut() {
                    *v = f64::NAN;
                }
            }
        }
        if !self.solved_once {
            return self.verified_cold_solve();
        }
        if let Some(ctx) = &self.ctx {
            if ctx.poll_fault(FaultKind::PerturbRhs) {
                // Chaos injection: desynchronize the warm basic values from
                // the mirror; the residual feasibility sentinel must notice
                // and fall back to a cold rebuild.
                for v in &mut self.rhs {
                    *v = *v * 1.5 + 7.0;
                }
            }
        }
        self.warm_solves += 1;
        let before = self.pivots_total;
        match self.warm_solve() {
            Ok(sol) => {
                if sol.status == LpStatus::Optimal && !self.solution_is_finite(&sol) {
                    // NaN/Inf reached the tableau: recover with a
                    // mirror-verified cold refactorization.
                    self.record_sentinel("nonfinite_warm");
                    self.record_cold_fallback("nonfinite");
                    return self.verified_cold_solve();
                }
                if sol.status != LpStatus::Optimal {
                    return Ok(sol);
                }
                let verified = {
                    let _s = wsn_obs::span("lp-verify");
                    self.mirror.is_feasible(&sol.x, 1e-6)
                };
                if verified {
                    return Ok(sol);
                }
                // Numerical drift: rebuild cold (rare; keeps warm == cold).
                self.record_cold_fallback("mirror_infeasible");
                self.verified_cold_solve()
            }
            Err(LpError::IterationLimit) => {
                self.record_cold_fallback("iteration_limit");
                self.pivots_total = before;
                self.verified_cold_solve()
            }
            Err(e) => Err(e),
        }
    }

    /// Cold solve plus post-solve sentinels. A fresh two-phase build whose
    /// optimal answer is still non-finite or violates the mirror has no
    /// recovery path left and surfaces as [`LpError::Numerical`] — the one
    /// LP error the degradation ladder cannot resume from.
    fn verified_cold_solve(&mut self) -> Result<LpSolution, LpError> {
        let sol = self.cold_solve()?;
        if sol.status == LpStatus::Optimal {
            let _s = wsn_obs::span("lp-verify");
            if !self.solution_is_finite(&sol) {
                self.record_sentinel("nonfinite_cold");
                return Err(LpError::Numerical);
            }
            if !self.mirror.is_feasible(&sol.x, 1e-5) {
                self.record_sentinel("residual_cold");
                return Err(LpError::Numerical);
            }
        }
        Ok(sol)
    }

    /// True when the extracted solution and the live tableau are all
    /// finite. NaN/Inf cannot loop forever (NaN comparisons are false, so
    /// pricing terminates), but they can silently reach the answer.
    fn solution_is_finite(&self, sol: &LpSolution) -> bool {
        sol.objective.is_finite()
            && sol.x.iter().all(|v| v.is_finite())
            && self.rhs.iter().all(|v| v.is_finite())
            && self.drow.iter().all(|v| v.is_finite())
    }

    /// Counts a tripped numerical sentinel and flags it on the trace.
    fn record_sentinel(&self, which: &str) {
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("lp.sentinel.trips").inc();
            wsn_obs::warn(
                "lp.sentinel",
                vec![
                    wsn_obs::field("which", which),
                    wsn_obs::field("rows", self.rows.len()),
                    wsn_obs::field("solve", self.solves_total),
                ],
            );
        }
    }

    /// A warm solve is being abandoned for a cold rebuild: count it and —
    /// when a trace collector is installed — flag it loudly, so fallback
    /// storms show up in `bench-perf` and `obs-report` instead of hiding
    /// as mysteriously slow "warm" runs.
    fn record_cold_fallback(&mut self, reason: &str) {
        self.warm_solves -= 1;
        self.cold_fallbacks += 1;
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("lp.cold_fallbacks").inc();
            wsn_obs::warn(
                "lp.cold_fallback",
                vec![
                    wsn_obs::field("reason", reason),
                    wsn_obs::field("rows", self.rows.len()),
                    wsn_obs::field("solve", self.solves_total),
                ],
            );
        }
    }

    /// Mirrors this solve's effort into the ambient metrics registry, if
    /// one is installed (no-op otherwise — detached solvers stay free).
    /// Beyond the effort counters this publishes the hotspot-profiler
    /// occupancy view: a pivots-per-solve histogram plus tableau row/col
    /// and row-density gauges, the evidence base for the ROADMAP's
    /// sparse-revised-simplex rewrite.
    fn publish_solve_metrics(&self, pivots: usize, was_warm: bool) {
        const PIVOT_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
        if let Some(obs) = wsn_obs::current() {
            let reg = obs.registry();
            reg.counter("lp.solves").inc();
            reg.counter("lp.pivots").add(pivots as u64);
            reg.counter("lp.warm_solves").add(u64::from(was_warm));
            reg.histogram("lp.pivots_per_solve", PIVOT_BUCKETS).observe(pivots as u64);
            reg.gauge("lp.tableau_rows").set(self.rows.len() as i64);
            reg.gauge("lp.tableau_cols").set(self.ncols as i64);
            reg.gauge("lp.tableau_row_nnz_x100").set((self.avg_row_nnz() * 100.0) as i64);
        }
    }

    fn push_col(&mut self, kind: ColKind, upper: f64, cost: f64) -> usize {
        self.kind.push(kind);
        self.upper.push(upper);
        self.cost.push(cost);
        self.at_upper.push(false);
        self.in_basis.push(false);
        self.drow.push(0.0);
        self.ncols += 1;
        self.ncols - 1
    }

    /// Current value of a column in shifted coordinates.
    fn col_value(&self, j: usize) -> f64 {
        if self.in_basis[j] {
            for (i, &b) in self.basis.iter().enumerate() {
                if b == j {
                    return self.rhs[i];
                }
            }
            unreachable!("in_basis says column {j} is basic");
        } else if self.at_upper[j] {
            self.upper[j]
        } else {
            0.0
        }
    }

    fn max_iter(&self) -> usize {
        20_000 + 200 * (self.rows.len() + self.ncols)
    }

    /// Columns the pricing loops may enter: nonbasic, movable, real.
    fn enterable(&self, j: usize) -> bool {
        !self.in_basis[j] && self.kind[j] != ColKind::Artificial && self.upper[j] > TOL
    }

    // ---- cold path ----------------------------------------------------

    fn cold_solve(&mut self) -> Result<LpSolution, LpError> {
        let nvars = self.mirror.num_vars();
        let build_span = wsn_obs::span("lp-cold-build");
        self.solved_once = true;
        self.ncols = 0;
        self.kind.clear();
        self.upper.clear();
        self.cost.clear();
        self.at_upper.clear();
        self.in_basis.clear();
        self.drow.clear();
        self.rows.clear();
        self.rhs.clear();
        self.basis.clear();
        self.bland = false;
        self.degenerate_run = 0;

        for j in 0..nvars {
            self.push_col(
                ColKind::Structural,
                self.mirror.upper[j] - self.mirror.lower[j],
                self.mirror.cost[j],
            );
        }

        // Build rows: slack for ≤/≥, artificial wherever the slack cannot
        // start basic at a nonnegative value.
        let mut artificials: Vec<usize> = Vec::new();
        let constraints = self.mirror.constraints.clone();
        for (ri, c) in constraints.iter().enumerate() {
            let mut b = c.rhs;
            let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 2);
            for &(j, a) in &c.terms {
                b -= a * self.mirror.lower[j];
                terms.push((j, a));
            }
            let slack_sign = match c.rel {
                Relation::Le => 1.0,
                Relation::Ge => -1.0,
                Relation::Eq => 0.0,
            };
            let mut slack = None;
            if slack_sign != 0.0 {
                let s = self.push_col(ColKind::Slack, f64::INFINITY, 0.0);
                terms.push((s, slack_sign));
                slack = Some(s);
            }
            self.row_slack[ri] = slack;
            // Sign-normalize so the starting basic value is ≥ 0.
            let sign = if b < 0.0 { -1.0 } else { 1.0 };
            if sign < 0.0 {
                b = -b;
                for t in &mut terms {
                    t.1 = -t.1;
                }
            }
            // The slack starts basic when its (normalized) coefficient is
            // +1; otherwise an artificial does.
            let basic = match slack {
                Some(s) if sign > 0.0 && c.rel == Relation::Le => s,
                Some(s) if sign < 0.0 && c.rel == Relation::Ge => s,
                _ => {
                    let a = self.push_col(ColKind::Artificial, f64::INFINITY, 0.0);
                    terms.push((a, 1.0));
                    artificials.push(a);
                    a
                }
            };
            self.rows.push(SpRow::from_terms(&terms));
            self.rhs.push(b);
            self.basis.push(basic);
            self.in_basis[basic] = true;
        }

        drop(build_span);
        let max_iter = self.max_iter();
        let start_pivots = self.pivots_total;

        // ---- Phase 1 (only when artificials exist). ----
        if !artificials.is_empty() {
            let _s = wsn_obs::span("lp-phase1");
            // Reduced costs for min Σ artificials from the current basis.
            self.drow.iter_mut().for_each(|d| *d = 0.0);
            for &a in &artificials {
                self.drow[a] = 1.0;
            }
            for i in 0..self.rows.len() {
                if self.kind[self.basis[i]] == ColKind::Artificial {
                    let row = std::mem::take(&mut self.rows[i]);
                    for (c, v) in row.iter() {
                        self.drow[c] -= v;
                    }
                    self.rows[i] = row;
                }
            }
            let done = self.primal_optimize(max_iter + start_pivots)?;
            debug_assert!(done, "phase 1 is bounded below by 0");
            let infeas: f64 = (0..self.rows.len())
                .filter(|&i| self.kind[self.basis[i]] == ColKind::Artificial)
                .map(|i| self.rhs[i].max(0.0))
                .sum();
            if infeas > 1e-6 {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    x: vec![0.0; nvars],
                    objective: f64::NAN,
                    iterations: self.pivots_total - start_pivots,
                });
            }
            self.drive_out_artificials();
            for a in artificials {
                self.upper[a] = 0.0;
            }
        }

        // ---- Phase 2. ----
        let done = {
            let _s = wsn_obs::span("lp-primal");
            self.refresh_drow();
            self.bland = false;
            self.degenerate_run = 0;
            self.primal_optimize(max_iter + self.pivots_total)?
        };
        if !done {
            return Ok(LpSolution {
                status: LpStatus::Unbounded,
                x: vec![0.0; nvars],
                objective: f64::NEG_INFINITY,
                iterations: self.pivots_total - start_pivots,
            });
        }
        let _s = wsn_obs::span("lp-extract");
        Ok(self.extract(self.pivots_total - start_pivots))
    }

    /// After phase 1: pivot basic artificials onto any usable real column;
    /// rows that offer none are redundant and dropped.
    fn drive_out_artificials(&mut self) {
        let mut r = 0;
        while r < self.rows.len() {
            if self.kind[self.basis[r]] != ColKind::Artificial {
                r += 1;
                continue;
            }
            let pivot_col = self.rows[r]
                .iter()
                .find(|&(c, v)| {
                    self.kind[c] != ColKind::Artificial && !self.in_basis[c] && v.abs() > 1e-7
                })
                .map(|(c, _)| c);
            match pivot_col {
                Some(j) => {
                    // Zero-movement pivot: the artificial sits at 0.
                    let alpha = self.rows[r].get(j);
                    let t = self.rhs[r] / alpha;
                    self.shift_nonbasic_into_basis(r, j, t, false);
                    r += 1;
                }
                None => {
                    // Redundant row: drop it with its artificial.
                    let art = self.basis[r];
                    self.in_basis[art] = false;
                    self.rows.swap_remove(r);
                    self.rhs.swap_remove(r);
                    self.basis.swap_remove(r);
                }
            }
        }
    }

    /// Recomputes phase-2 reduced costs from the mirror costs.
    fn refresh_drow(&mut self) {
        self.drow.copy_from_slice(&self.cost);
        for i in 0..self.rows.len() {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = std::mem::take(&mut self.rows[i]);
                for (c, v) in row.iter() {
                    self.drow[c] -= cb * v;
                }
                self.rows[i] = row;
            }
        }
        for i in 0..self.rows.len() {
            self.drow[self.basis[i]] = 0.0;
        }
    }

    // ---- warm path ----------------------------------------------------

    fn warm_solve(&mut self) -> Result<LpSolution, LpError> {
        let start_pivots = self.pivots_total;
        let cap = self.max_iter() + start_pivots;
        let repaired = {
            let _s = wsn_obs::span("lp-dual-repair");
            self.refresh_drow(); // numerical hygiene across long solve chains
            self.bland = false;
            self.degenerate_run = 0;
            let repair_start = self.pivots_total;
            let repaired = self.dual_repair(cap);
            self.dual_repair_pivots += self.pivots_total - repair_start;
            repaired
        };
        if !repaired? {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: vec![0.0; self.mirror.num_vars()],
                objective: f64::NAN,
                iterations: self.pivots_total - start_pivots,
            });
        }
        let done = {
            let _s = wsn_obs::span("lp-primal");
            self.bland = false;
            self.degenerate_run = 0;
            self.primal_optimize(cap)?
        };
        if !done {
            return Ok(LpSolution {
                status: LpStatus::Unbounded,
                x: vec![0.0; self.mirror.num_vars()],
                objective: f64::NEG_INFINITY,
                iterations: self.pivots_total - start_pivots,
            });
        }
        let _s = wsn_obs::span("lp-extract");
        Ok(self.extract(self.pivots_total - start_pivots))
    }

    /// Bounded-variable dual simplex: drives primal infeasibilities (basic
    /// values outside their box) out while reduced costs stay
    /// dual-feasible. Returns `false` when the problem is primal
    /// infeasible (dual unbounded).
    fn dual_repair(&mut self, max_pivots: usize) -> Result<bool, LpError> {
        loop {
            if self.pivots_total > max_pivots {
                return Err(LpError::IterationLimit);
            }
            self.poll_budget()?;
            // Leaving row: worst box violation among basic values.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, to_upper)
            for i in 0..self.rows.len() {
                let v = self.rhs[i];
                let ub = self.upper[self.basis[i]];
                let (viol, to_upper) = if v < -TOL {
                    (-v, false)
                } else if v > ub + TOL {
                    (v - ub, true)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((r, best, _)) => {
                        if self.bland {
                            self.basis[i] < self.basis[r]
                        } else {
                            viol > best
                        }
                    }
                };
                if better {
                    leave = Some((i, viol, to_upper));
                }
            }
            let Some((r, _, to_upper)) = leave else { return Ok(true) };

            // Entering column: the dual ratio test over the sparse row.
            let mut enter: Option<(usize, f64, f64)> = None; // (col, |theta|, alpha)
            let row = std::mem::take(&mut self.rows[r]);
            for (c, alpha) in row.iter() {
                if !self.enterable(c) || alpha.abs() <= TOL {
                    continue;
                }
                // Eligibility: moving c within its box must push the basic
                // value back toward its violated bound.
                let pushes = if to_upper {
                    // basic must decrease
                    (!self.at_upper[c] && alpha > 0.0) || (self.at_upper[c] && alpha < 0.0)
                } else {
                    // basic must increase
                    (!self.at_upper[c] && alpha < 0.0) || (self.at_upper[c] && alpha > 0.0)
                };
                if !pushes {
                    continue;
                }
                let theta = (self.drow[c] / alpha).abs();
                let better = match enter {
                    None => true,
                    Some((bc, bt, _)) => {
                        if self.bland {
                            theta < bt - TOL || (theta < bt + TOL && c < bc)
                        } else {
                            theta < bt
                        }
                    }
                };
                if better {
                    enter = Some((c, theta, alpha));
                }
            }
            self.rows[r] = row;
            let Some((j, _, alpha)) = enter else { return Ok(false) };

            let b_leave = if to_upper { self.upper[self.basis[r]] } else { 0.0 };
            let t = (self.rhs[r] - b_leave) / alpha;
            if t.abs() <= TOL {
                self.degenerate_run += 1;
                if self.degenerate_run > BLAND_TRIGGER {
                    self.escalate_bland();
                }
            } else {
                self.degenerate_run = 0;
            }
            self.shift_nonbasic_into_basis(r, j, t, to_upper);
        }
    }

    /// Makes nonbasic `j` basic in row `r` with entering movement
    /// `t = Δx_j`; the old basic leaves at lower (`to_upper = false`) or
    /// upper. Updates rhs bookkeeping, the tableau and reduced costs.
    fn shift_nonbasic_into_basis(&mut self, r: usize, j: usize, t: f64, to_upper: bool) {
        let vj_new = if self.at_upper[j] { self.upper[j] } else { 0.0 } + t;
        if t != 0.0 {
            for i in 0..self.rows.len() {
                if i != r {
                    let a = self.rows[i].get(j);
                    if a != 0.0 {
                        self.rhs[i] -= a * t;
                    }
                }
            }
        }
        let leaving = self.basis[r];
        self.pivot(r, j);
        self.rhs[r] = vj_new;
        self.at_upper[leaving] = to_upper && self.upper[leaving].is_finite();
        self.at_upper[j] = false;
    }

    /// Row-sparse pivot at `(r, j)`: normalizes the pivot row, eliminates
    /// the column elsewhere, updates reduced costs and the basis.
    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.rows[r].get(j);
        debug_assert!(piv.abs() > TOL, "pivot element too small: {piv}");
        self.rows[r].scale(1.0 / piv);
        let prow = std::mem::take(&mut self.rows[r]);
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            let f = self.rows[i].get(j);
            if f.abs() > DROP_TOL {
                self.rows[i].axpy(-f, &prow, &mut scratch);
            }
        }
        let df = self.drow[j];
        if df != 0.0 {
            for (c, v) in prow.iter() {
                self.drow[c] -= df * v;
            }
        }
        self.scratch = scratch;
        self.rows[r] = prow;
        self.in_basis[self.basis[r]] = false;
        self.in_basis[j] = true;
        self.basis[r] = j;
        self.drow[j] = 0.0;
        self.pivots_total += 1;
        if let Some(ctx) = &self.ctx {
            if ctx.poll_fault(FaultKind::CorruptPivot) {
                // Chaos injection: a corrupted pivot leaves a NaN in the
                // factorized rhs; the non-finite sentinel must catch it.
                self.rhs[r] = f64::NAN;
            }
        }
    }

    /// Cycling/stall sentinel: after a prolonged degenerate run, switch to
    /// Bland's rule for the rest of this solve and count the escalation.
    fn escalate_bland(&mut self) {
        if !self.bland {
            self.bland = true;
            if let Some(obs) = wsn_obs::current() {
                obs.registry().counter("lp.sentinel.bland_escalations").inc();
            }
        }
    }

    // ---- primal machinery --------------------------------------------

    /// Runs primal simplex to optimality. `Ok(false)` means unbounded.
    fn primal_optimize(&mut self, max_pivots: usize) -> Result<bool, LpError> {
        loop {
            if self.pivots_total > max_pivots {
                return Err(LpError::IterationLimit);
            }
            self.poll_budget()?;
            let Some(j) = self.price() else { return Ok(true) };
            if !self.primal_step(j) {
                return Ok(false);
            }
        }
    }

    /// Dantzig pricing (Bland after prolonged degeneracy) over enterable
    /// columns.
    fn price(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.ncols {
            if !self.enterable(j) {
                continue;
            }
            let d = self.drow[j];
            let violation = if self.at_upper[j] { d } else { -d };
            if violation > DJ_TOL {
                if self.bland {
                    return Some(j);
                }
                match best {
                    Some((_, v)) if v >= violation => {}
                    _ => best = Some((j, violation)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One primal iteration entering `j`. Returns `false` on an unbounded
    /// direction.
    fn primal_step(&mut self, j: usize) -> bool {
        let from_upper = self.at_upper[j];
        let dir = if from_upper { -1.0 } else { 1.0 };
        let mut t_star = self.upper[j]; // bound-flip limit (may be ∞)
        let mut leaving: Option<(usize, bool)> = None;

        for i in 0..self.rows.len() {
            let alpha = self.rows[i].get(j);
            if alpha.abs() <= TOL {
                continue;
            }
            let delta = -alpha * dir; // change of basic i per unit |t|
            let (limit, exits_upper) = if delta < 0.0 {
                (self.rhs[i].max(0.0) / -delta, false)
            } else {
                let ub = self.upper[self.basis[i]];
                if ub.is_infinite() {
                    continue;
                }
                ((ub - self.rhs[i]).max(0.0) / delta, true)
            };
            if limit < t_star - TOL
                || (limit < t_star + TOL
                    && leaving.is_some_and(|(r, _)| self.bland && self.basis[i] < self.basis[r]))
            {
                t_star = limit;
                leaving = Some((i, exits_upper));
            }
        }

        if t_star.is_infinite() {
            return false;
        }
        if t_star <= TOL {
            self.degenerate_run += 1;
            if self.degenerate_run > BLAND_TRIGGER {
                self.escalate_bland();
            }
        } else {
            self.degenerate_run = 0;
        }

        let signed = dir * t_star;
        match leaving {
            None => {
                // Bound flip.
                for i in 0..self.rows.len() {
                    let a = self.rows[i].get(j);
                    if a != 0.0 {
                        self.rhs[i] -= a * signed;
                    }
                }
                self.at_upper[j] = !self.at_upper[j];
                self.pivots_total += 1;
            }
            Some((r, exits_upper)) => {
                self.shift_nonbasic_into_basis(r, j, signed, exits_upper);
            }
        }
        true
    }

    /// Extracts the structural solution (unshifting lower bounds).
    fn extract(&self, iterations: usize) -> LpSolution {
        let nvars = self.mirror.num_vars();
        let mut x = vec![0.0; nvars];
        for (j, xj) in x.iter_mut().enumerate() {
            let v = self.col_value_fast(j) + self.mirror.lower[j];
            let hi = self.mirror.upper[j];
            *xj = v.clamp(self.mirror.lower[j], if hi.is_finite() { hi } else { f64::INFINITY });
        }
        let objective = self.mirror.objective_at(&x);
        LpSolution { status: LpStatus::Optimal, x, objective, iterations }
    }

    fn col_value_fast(&self, j: usize) -> f64 {
        if self.in_basis[j] {
            // The basis is small; scan once. (extract is not a hot loop —
            // callers read the solution once per solve.)
            for (i, &b) in self.basis.iter().enumerate() {
                if b == j {
                    return self.rhs[i];
                }
            }
        }
        if self.at_upper[j] {
            self.upper[j]
        } else {
            0.0
        }
    }

    /// Average nonzeros per tableau row — a sparsity diagnostic for
    /// benchmarks.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.nnz()).sum::<usize>() as f64 / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_cold(inc: &mut IncrementalLp) -> LpSolution {
        let warm = inc.solve().expect("warm solve");
        let cold = inc.to_problem().solve().expect("cold solve");
        assert_eq!(warm.status, cold.status, "status mismatch");
        if warm.status == LpStatus::Optimal {
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "objective warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(inc.to_problem().is_feasible(&warm.x, 1e-6), "warm point infeasible");
        }
        warm
    }

    #[test]
    fn cold_matches_dense_on_textbook() {
        let mut p = IncrementalLp::new();
        let x = p.add_var(-3.0, 0.0, f64::INFINITY);
        let y = p.add_var(-5.0, 0.0, f64::INFINITY);
        p.add_row(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_row(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_row(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = assert_matches_cold(&mut p);
        assert!((s.objective + 36.0).abs() < 1e-7);
    }

    #[test]
    fn append_row_warm_start() {
        // min −x−y over [0,1]² → (1,1); then append x+y ≤ 1.2 → 1.2.
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(-1.0);
        let y = p.add_unit_var(-1.0);
        let s0 = p.solve().unwrap();
        assert!((s0.objective + 2.0).abs() < 1e-8);
        p.append_le_row(&[(x, 1.0), (y, 1.0)], 1.2);
        let s1 = assert_matches_cold(&mut p);
        assert!((s1.objective + 1.2).abs() < 1e-8, "got {}", s1.objective);
        assert_eq!(p.warm_solves(), 1);
    }

    #[test]
    fn batched_append_matches_sequential_appends() {
        // min −x−y−z over [0,1]³, then three cuts at once; the batch must
        // land on the same optimum as one-at-a-time appends with a solve
        // between none of them, and repair once.
        let build = || {
            let mut p = IncrementalLp::new();
            let x = p.add_unit_var(-1.0);
            let y = p.add_unit_var(-1.0);
            let z = p.add_unit_var(-1.0);
            p.solve().unwrap();
            (p, x, y, z)
        };
        let rows = |x: VarId, y: VarId, z: VarId| {
            vec![
                (vec![(x, 1.0), (y, 1.0)], 1.5),
                (vec![(y, 1.0), (z, 1.0)], 1.0),
                (vec![(x, 1.0), (z, 1.0)], 1.2),
            ]
        };

        let (mut batched, x, y, z) = build();
        let ids = batched.append_le_rows(&rows(x, y, z));
        assert_eq!(ids.len(), 3);
        let sb = batched.solve().unwrap();

        let (mut seq, x, y, z) = build();
        for (terms, rhs) in rows(x, y, z) {
            seq.append_le_row(&terms, rhs);
        }
        let ss = seq.solve().unwrap();
        assert!((sb.objective - ss.objective).abs() < 1e-8);
        assert_eq!(sb.x, ss.x, "batch and sequential appends are the same tableau");
    }

    #[test]
    fn appended_redundant_row_costs_no_pivots() {
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(-1.0);
        p.solve().unwrap();
        let before = p.total_pivots();
        p.append_le_row(&[(x, 1.0)], 5.0); // satisfied: x = 1 ≤ 5
        let s = p.solve().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_eq!(p.total_pivots(), before, "no repair needed");
    }

    #[test]
    fn fix_variable_via_bounds() {
        // min −2x − y, x+y ≤ 1.5 over [0,1]²: optimum (1, 0.5).
        // Fixing x to 0 moves it to (0, 1).
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(-2.0);
        let y = p.add_unit_var(-1.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        let s0 = p.solve().unwrap();
        assert!((s0.objective + 2.5).abs() < 1e-8);
        p.set_upper(x, 0.0);
        let s1 = assert_matches_cold(&mut p);
        assert!((s1.objective + 1.0).abs() < 1e-8, "got {}", s1.objective);
        assert!(s1.x[0].abs() < 1e-9);
    }

    #[test]
    fn relax_rhs_reopens_room() {
        // min −x−y, x+y ≤ 1 over [0,1]² → −1; relax to 2 → −2.
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(-1.0);
        let y = p.add_unit_var(-1.0);
        let row = p.add_row(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        let s0 = p.solve().unwrap();
        assert!((s0.objective + 1.0).abs() < 1e-8);
        p.relax_le_rhs(row, 2.0);
        let s1 = assert_matches_cold(&mut p);
        assert!((s1.objective + 2.0).abs() < 1e-8, "got {}", s1.objective);
    }

    #[test]
    fn equality_rows_and_infeasibility() {
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(1.0);
        let y = p.add_unit_var(2.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        let s = assert_matches_cold(&mut p);
        assert!((s.objective - 1.0).abs() < 1e-8);
        // Appending an unsatisfiable cut flips it to infeasible, warm.
        p.append_le_row(&[(x, 1.0), (y, 1.0)], 0.5);
        let s1 = p.solve().unwrap();
        assert_eq!(s1.status, LpStatus::Infeasible);
    }

    #[test]
    fn chain_of_cuts_stays_consistent() {
        // Shave the unit square corner by corner; warm objective must track
        // the cold one at every step.
        let mut p = IncrementalLp::new();
        let x = p.add_unit_var(-1.0);
        let y = p.add_unit_var(-0.9);
        p.solve().unwrap();
        for k in 1..=8 {
            let rhs = 2.0 - k as f64 * 0.15;
            p.append_le_row(&[(x, 1.0), (y, 1.0)], rhs);
            let s = assert_matches_cold(&mut p);
            assert_eq!(s.status, LpStatus::Optimal);
        }
        assert!(p.warm_solves() >= 8);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Mutation script entry: append a ≤ row, tighten a bound, or
        /// relax an appended row.
        #[derive(Clone, Debug)]
        enum Mutation {
            Append(Vec<i32>, i32),
            Tighten(usize, u32),
            Relax(usize, u32),
        }

        fn arb_mutation(nvars: usize) -> impl Strategy<Value = Mutation> {
            // The vendored proptest stub has no `prop_oneof`; draw every
            // branch's inputs and select with a discriminant instead.
            (
                0u8..3,
                proptest::collection::vec(-3i32..4, nvars),
                1i32..8,
                (0usize..nvars, 0u32..=100),
                (0usize..8, 1u32..6),
            )
                .prop_map(|(sel, row, b, (j, u), (r, d))| match sel {
                    0 => Mutation::Append(row, b),
                    1 => Mutation::Tighten(j, u),
                    _ => Mutation::Relax(r, d),
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn warm_equals_cold_under_mutation_scripts(
                n in 2usize..5,
                costs in proptest::collection::vec(-5i32..5, 4),
                base_rows in proptest::collection::vec(
                    (proptest::collection::vec(-3i32..4, 4), 1i32..7), 0..3),
                script in proptest::collection::vec(arb_mutation(4), 1..7),
            ) {
                let mut inc = IncrementalLp::new();
                let vars: Vec<VarId> =
                    costs[..n].iter().map(|&c| inc.add_unit_var(c as f64)).collect();
                for (row, b) in &base_rows {
                    let terms: Vec<(VarId, f64)> = vars
                        .iter()
                        .zip(row)
                        .map(|(&v, &a)| (v, a as f64))
                        .collect();
                    inc.add_row(&terms, Relation::Le, *b as f64);
                }
                // x = 0 is feasible for the base problem (all rhs ≥ 1).
                let s = inc.solve().unwrap();
                prop_assert_eq!(s.status, LpStatus::Optimal);

                let mut appended: Vec<RowId> = Vec::new();
                let mut uppers = vec![1.0f64; n];
                for m in &script {
                    match m {
                        Mutation::Append(row, b) => {
                            let terms: Vec<(VarId, f64)> = vars
                                .iter()
                                .zip(row)
                                .map(|(&v, &a)| (v, a as f64))
                                .collect();
                            appended.push(inc.append_le_row(&terms, *b as f64));
                        }
                        Mutation::Tighten(j, u) => {
                            if *j >= n { continue; }
                            // Only tighten (monotone, like IRA edge drops).
                            let nu = (*u as f64 / 100.0).min(uppers[*j]);
                            uppers[*j] = nu;
                            inc.set_upper(vars[*j], nu);
                        }
                        Mutation::Relax(r, d) => {
                            if appended.is_empty() { continue; }
                            let row = appended[r % appended.len()];
                            let cur = inc.to_problem();
                            let rhs = cur.constraints[row.0].rhs;
                            let _ = cur;
                            inc.relax_le_rhs(row, rhs + *d as f64);
                        }
                    }
                    let warm = inc.solve().unwrap();
                    let cold = inc.to_problem().solve().unwrap();
                    prop_assert_eq!(warm.status, cold.status);
                    if warm.status == LpStatus::Optimal {
                        prop_assert!(
                            (warm.objective - cold.objective).abs() < 1e-6,
                            "warm {} vs cold {}", warm.objective, cold.objective);
                        prop_assert!(
                            inc.to_problem().is_feasible(&warm.x, 1e-6),
                            "warm point violates the accumulated constraints");
                    }
                }
            }
        }
    }
}

//! Solve budgets, cooperative cancellation, and the seeded fault injector.
//!
//! A [`SolveBudget`] declares *how much* work a solve may do (wall-clock
//! deadline, pivot cap, cut-round cap); arming it with
//! [`SolveBudget::start`] produces a shared [`SolveCtx`] that the LP
//! layer, the separation engine and the IRA loop all poll cooperatively.
//! Budget expiry, like an explicit [`SolveCtx::cancel`], surfaces as
//! [`crate::LpError::Interrupted`] — never a panic — so callers can
//! checkpoint and resume or degrade to an approximate tier.
//!
//! The same context carries the **solver-fault injector** used by the
//! chaos test suite: each [`FaultKind`] has a one-shot countdown cell that
//! fires at a deterministic poll index, letting tests place a corrupted
//! pivot, a perturbed right-hand side, a forced oracle timeout or a
//! poisoned cut at a reproducible point in the solve. With no faults
//! armed every `poll_fault` is a single relaxed atomic load, and a solver
//! holding **no** context skips even that — the un-budgeted path is
//! byte-identical to the pre-budget engine.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsn_obs::TimeSource;

/// How often (in polls) the deadline consults the system clock;
/// cancellation and pivot caps are checked on every poll.
const DEADLINE_STRIDE: u64 = 64;

/// Injectable solver-fault classes (one-shot each, see [`SolveCtx::arm_fault`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Writes a NaN into the tableau right-hand side during a pivot —
    /// exercises the non-finite sentinels and cold refactorization.
    CorruptPivot = 0,
    /// Perturbs the warm tableau's basic values away from the mirror —
    /// exercises the residual feasibility check and cold fallback.
    PerturbRhs = 1,
    /// Forces the separation oracle to act as if its deadline expired —
    /// exercises interruption, checkpointing and warm resume.
    OracleTimeout = 2,
    /// Poisons the newest LP row with a non-finite rhs (mirror included) —
    /// exercises unrecoverable-numerics degradation to the approximate tier.
    PoisonCut = 3,
}

/// All fault classes, in discriminant order.
pub const FAULT_KINDS: [FaultKind; 4] = [
    FaultKind::CorruptPivot,
    FaultKind::PerturbRhs,
    FaultKind::OracleTimeout,
    FaultKind::PoisonCut,
];

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::CorruptPivot => "corrupt_pivot",
            FaultKind::PerturbRhs => "perturb_rhs",
            FaultKind::OracleTimeout => "oracle_timeout",
            FaultKind::PoisonCut => "poison_cut",
        };
        write!(f, "{name}")
    }
}

/// Declarative work limits for one resilient solve. `Default` is
/// unlimited — identical to running without a budget at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveBudget {
    /// Wall-clock allowance, measured from [`SolveBudget::start`].
    pub wall: Option<Duration>,
    /// Cap on simplex pivots across the whole solve.
    pub max_pivots: Option<u64>,
    /// Cap on cutting-plane rounds per LP solve.
    pub max_rounds: Option<u64>,
}

impl SolveBudget {
    /// A budget with no limits (polls always pass).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A wall-clock-only budget.
    pub fn wall(d: Duration) -> Self {
        Self { wall: Some(d), ..Self::default() }
    }

    /// Arms the budget against the wall clock: the deadline starts now.
    pub fn start(self) -> Arc<SolveCtx> {
        self.start_with_clock(TimeSource::wall())
    }

    /// Arms the budget against an explicit time source. With a
    /// [`wsn_obs::ManualClock`]-backed source the deadline only moves
    /// when the test advances it — no real sleeping, no flakiness.
    pub fn start_with_clock(self, clock: TimeSource) -> Arc<SolveCtx> {
        let started_ns = clock.now_ns();
        let deadline_ns = self
            .wall
            .map(|d| started_ns.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)));
        Arc::new(SolveCtx {
            clock,
            deadline_ns,
            max_pivots: self.max_pivots,
            max_rounds: self.max_rounds,
            cancelled: AtomicBool::new(false),
            expired: AtomicBool::new(false),
            handback: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            faults: Default::default(),
        })
    }
}

/// A live, shareable cancellation/budget token (plus fault injector).
///
/// Cloned `Arc`s of one context observe the same cancellation flag and
/// fault cells, so a single `cancel()` stops every cooperating layer.
#[derive(Debug)]
pub struct SolveCtx {
    clock: TimeSource,
    deadline_ns: Option<u64>,
    max_pivots: Option<u64>,
    max_rounds: Option<u64>,
    cancelled: AtomicBool,
    /// Latched once the deadline has been observed in the past.
    expired: AtomicBool,
    /// Set by a draining service: cancel, but hand the checkpoint back to
    /// the caller instead of spending the remaining budget on a resume.
    handback: AtomicBool,
    polls: AtomicU64,
    /// One-shot countdowns per [`FaultKind`]: 0 = disarmed, k ≥ 1 fires on
    /// the k-th poll of that fault site.
    faults: [AtomicI64; 4],
}

impl SolveCtx {
    /// An always-passing context with no limits and no faults.
    pub fn unlimited() -> Arc<Self> {
        SolveBudget::unlimited().start()
    }

    /// Requests cooperative cancellation; every subsequent poll stops.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once `cancel()` was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Requests cancellation *and* marks that the interrupted solve's
    /// checkpoint should be handed back to the caller (drain protocol)
    /// rather than consumed by an in-process resume.
    pub fn request_handback(&self) {
        self.handback.store(true, Ordering::Relaxed);
        self.cancel();
    }

    /// True once `request_handback()` was called.
    pub fn handback_requested(&self) -> bool {
        self.handback.load(Ordering::Relaxed)
    }

    /// True once the deadline has been observed to pass.
    pub fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed) || self.check_deadline_now()
    }

    /// Time left on the deadline, if one is set (zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline_ns.map(|d| Duration::from_nanos(d.saturating_sub(self.clock.now_ns())))
    }

    /// The time source this context measures its deadline against.
    /// Resume budgets must be armed against the same source so virtual
    /// time stays coherent across the degradation ladder.
    pub fn time_source(&self) -> TimeSource {
        self.clock.clone()
    }

    /// Configured round cap, if any.
    pub fn max_rounds(&self) -> Option<u64> {
        self.max_rounds
    }

    /// True when `round` (0-based) exceeds the configured round cap.
    pub fn round_cap_hit(&self, round: u64) -> bool {
        self.max_rounds.is_some_and(|cap| round >= cap)
    }

    /// The hot-loop poll: cancellation and the pivot cap are checked every
    /// call; the deadline consults the clock once per [`DEADLINE_STRIDE`]
    /// polls (and latches, so expiry is never un-observed).
    pub fn should_stop(&self, pivots: u64) -> bool {
        if self.cancelled.load(Ordering::Relaxed) || self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if self.max_pivots.is_some_and(|cap| pivots >= cap) {
            return true;
        }
        if self.deadline_ns.is_some() {
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(DEADLINE_STRIDE) {
                return self.check_deadline_now();
            }
        }
        false
    }

    fn check_deadline_now(&self) -> bool {
        match self.deadline_ns {
            Some(d) if self.clock.now_ns() >= d => {
                self.expired.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    // ---- fault injector ----------------------------------------------

    /// Arms `kind` to fire on its `after`-th poll (`after ≥ 1`; one-shot).
    pub fn arm_fault(&self, kind: FaultKind, after: u64) {
        assert!(after >= 1, "fault countdown must be at least 1");
        self.faults[kind as usize].store(after as i64, Ordering::Relaxed);
    }

    /// True when any fault class is still armed.
    pub fn has_armed_faults(&self) -> bool {
        self.faults.iter().any(|c| c.load(Ordering::Relaxed) > 0)
    }

    /// Decrements the countdown of `kind`; returns `true` exactly once,
    /// on the poll the countdown reaches zero. Disarmed cells cost one
    /// relaxed load.
    pub fn poll_fault(&self, kind: FaultKind) -> bool {
        let cell = &self.faults[kind as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            if cur <= 0 {
                return false;
            }
            match cell.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => return prev == 1,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let ctx = SolveCtx::unlimited();
        for p in 0..1000 {
            assert!(!ctx.should_stop(p));
        }
        assert!(!ctx.is_cancelled());
        assert!(!ctx.is_expired());
        assert!(ctx.remaining().is_none());
    }

    #[test]
    fn cancellation_latches() {
        let ctx = SolveCtx::unlimited();
        assert!(!ctx.should_stop(0));
        ctx.cancel();
        assert!(ctx.should_stop(0));
        assert!(ctx.should_stop(0), "cancellation is sticky");
    }

    #[test]
    fn pivot_cap_trips() {
        let ctx = SolveBudget { max_pivots: Some(10), ..Default::default() }.start();
        assert!(!ctx.should_stop(9));
        assert!(ctx.should_stop(10));
    }

    #[test]
    fn zero_deadline_expires() {
        let ctx = SolveBudget::wall(Duration::ZERO).start();
        // Poll 0 hits the clock immediately (stride starts at 0).
        assert!(ctx.should_stop(0));
        assert!(ctx.is_expired());
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_passes() {
        let ctx = SolveBudget::wall(Duration::from_secs(3600)).start();
        for p in 0..200 {
            assert!(!ctx.should_stop(p));
        }
        assert!(!ctx.is_expired());
    }

    #[test]
    fn round_cap() {
        let ctx = SolveBudget { max_rounds: Some(3), ..Default::default() }.start();
        assert!(!ctx.round_cap_hit(2));
        assert!(ctx.round_cap_hit(3));
        assert!(SolveCtx::unlimited().max_rounds().is_none());
    }

    #[test]
    fn fault_fires_exactly_once_at_countdown() {
        let ctx = SolveCtx::unlimited();
        ctx.arm_fault(FaultKind::CorruptPivot, 3);
        assert!(ctx.has_armed_faults());
        assert!(!ctx.poll_fault(FaultKind::CorruptPivot));
        assert!(!ctx.poll_fault(FaultKind::CorruptPivot));
        assert!(ctx.poll_fault(FaultKind::CorruptPivot), "fires on the 3rd poll");
        assert!(!ctx.poll_fault(FaultKind::CorruptPivot), "one-shot");
        assert!(!ctx.has_armed_faults());
        // Other classes stay independent.
        assert!(!ctx.poll_fault(FaultKind::PoisonCut));
    }

    #[test]
    fn handback_implies_cancel_and_latches() {
        let ctx = SolveCtx::unlimited();
        assert!(!ctx.handback_requested());
        ctx.request_handback();
        assert!(ctx.handback_requested());
        assert!(ctx.is_cancelled(), "handback must also stop the solve");
        assert!(ctx.should_stop(0));
    }

    #[test]
    fn plain_cancel_is_not_a_handback() {
        let ctx = SolveCtx::unlimited();
        ctx.cancel();
        assert!(!ctx.handback_requested());
    }

    #[test]
    fn manual_clock_deadline_expires_only_when_advanced() {
        let mc = wsn_obs::ManualClock::new();
        let ctx = SolveBudget::wall(Duration::from_millis(10))
            .start_with_clock(TimeSource::manual(mc.clone()));
        assert!(!ctx.is_expired());
        assert_eq!(ctx.remaining(), Some(Duration::from_millis(10)));
        mc.advance(Duration::from_millis(9));
        assert!(!ctx.is_expired());
        assert_eq!(ctx.remaining(), Some(Duration::from_millis(1)));
        mc.advance(Duration::from_millis(1));
        assert!(ctx.is_expired(), "deadline reached exactly");
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
        assert!(ctx.should_stop(0));
    }

    #[test]
    fn manual_clock_deadline_measures_from_current_reading() {
        let mc = wsn_obs::ManualClock::new();
        mc.advance(Duration::from_secs(5));
        let ctx = SolveBudget::wall(Duration::from_secs(1))
            .start_with_clock(TimeSource::manual(mc.clone()));
        mc.advance(Duration::from_millis(999));
        assert!(!ctx.is_expired());
        mc.advance(Duration::from_millis(1));
        assert!(ctx.is_expired());
    }

    #[test]
    fn time_source_round_trips_through_the_context() {
        let mc = wsn_obs::ManualClock::new();
        let ctx = SolveBudget::unlimited().start_with_clock(TimeSource::manual(mc.clone()));
        let ts = ctx.time_source();
        mc.advance(Duration::from_nanos(7));
        assert_eq!(ts.now_ns(), 7);
        assert!(ts.is_manual());
    }

    #[test]
    fn fault_kind_display_names() {
        let names: Vec<String> = FAULT_KINDS.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["corrupt_pivot", "perturb_rhs", "oracle_timeout", "poison_cut"]);
    }
}

//! LP model builder.

use crate::simplex::{self, LpError, LpSolution};

/// Index of a variable within an [`LpProblem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub usize);

impl VarId {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Clone, Debug)]
pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A minimization LP: `min cᵀx` s.t. `Ax {≤,=,≥} b`, `l ≤ x ≤ u`.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    pub(crate) cost: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with objective coefficient `cost` and bounds
    /// `[lower, upper]` (`upper` may be `f64::INFINITY`).
    ///
    /// # Panics
    /// Panics on non-finite `cost`/`lower` or a NaN `upper`.
    pub fn add_var(&mut self, cost: f64, lower: f64, upper: f64) -> VarId {
        assert!(cost.is_finite(), "objective coefficient must be finite");
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(!upper.is_nan(), "upper bound must not be NaN");
        self.cost.push(cost);
        self.lower.push(lower);
        self.upper.push(upper);
        VarId(self.cost.len() - 1)
    }

    /// Adds a variable with bounds `[0, 1]` — the shape of every `x_e`.
    pub fn add_unit_var(&mut self, cost: f64) -> VarId {
        self.add_var(cost, 0.0, 1.0)
    }

    /// Adds a linear constraint. Duplicate variable mentions are summed.
    ///
    /// # Panics
    /// Panics if a term references an unknown variable or has a non-finite
    /// coefficient, or if `rhs` is non-finite.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(v, a) in terms {
            assert!(v.index() < self.cost.len(), "constraint references unknown variable");
            assert!(a.is_finite(), "constraint coefficient must be finite");
            *dense.entry(v.index()).or_insert(0.0) += a;
        }
        self.constraints.push(Constraint { terms: dense.into_iter().collect(), rel, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cost.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the problem with the two-phase bounded-variable simplex.
    ///
    /// The returned solution, when optimal, is a basic feasible solution —
    /// an extreme point of the feasible polytope.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        simplex::solve(self)
    }

    /// Evaluates the objective at a point (for tests and verification).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.cost.len());
        self.cost.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.cost.len() {
            return false;
        }
        for (j, &xj) in x.iter().enumerate() {
            if xj < self.lower[j] - tol || xj > self.upper[j] + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match c.rel {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = LpProblem::new();
        let x = p.add_unit_var(1.0);
        let y = p.add_var(-2.0, 0.0, f64::INFINITY);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective_at(&[1.0, 2.0]), 1.0 - 4.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = LpProblem::new();
        let x = p.add_unit_var(1.0);
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 1.5);
        // 3x ≤ 1.5 → x ≤ 0.5
        assert!(p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[0.6], 1e-9));
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 2.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.5);
        assert!(p.is_feasible(&[1.5], 1e-9));
        assert!(!p.is_feasible(&[0.5], 1e-9)); // below lower bound
        assert!(!p.is_feasible(&[1.2], 1e-9)); // violates row
        assert!(!p.is_feasible(&[2.5], 1e-9)); // above upper bound
        assert!(!p.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_var() {
        let mut p = LpProblem::new();
        p.add_constraint(&[(VarId(3), 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_cost() {
        let mut p = LpProblem::new();
        p.add_var(f64::NAN, 0.0, 1.0);
    }
}

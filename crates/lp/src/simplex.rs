//! Two-phase dense primal simplex with bounded variables.
//!
//! The implementation follows the classical tableau method extended with
//! upper bounds: a nonbasic variable rests at its lower *or* upper bound,
//! the ratio test additionally considers the entering variable flipping to
//! its opposite bound, and basic variables may leave at either bound.
//!
//! Phase 1 minimizes the sum of artificial variables from an all-artificial
//! starting basis (rows are sign-normalized so the start is feasible);
//! artificials are then driven out of the basis (rows that cannot be pivoted
//! are redundant and dropped) before phase 2 optimizes the real objective.
//!
//! Anti-cycling: Dantzig pricing by default, switching permanently to
//! Bland's rule after a run of degenerate pivots.

use crate::budget::SolveCtx;
use crate::problem::{LpProblem, Relation};

/// Feasibility/pivot tolerance.
const TOL: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
const DJ_TOL: f64 = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
const BLAND_TRIGGER: usize = 64;

/// Solver outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Hard solver failures (distinct from infeasible/unbounded outcomes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpError {
    /// The iteration cap was hit — numerically stuck.
    IterationLimit,
    /// A variable was declared with `lower > upper`.
    InvalidBounds,
    /// The solve was cancelled or ran out of budget (wall deadline or
    /// pivot cap on its [`crate::SolveCtx`]); the solver state is
    /// checkpointable, not corrupt.
    Interrupted,
    /// A numerical-stability sentinel tripped (non-finite tableau values
    /// or an unrepairable residual) and cold recovery was impossible.
    Numerical,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::InvalidBounds => write!(f, "a variable has lower bound above its upper bound"),
            LpError::Interrupted => write!(f, "solve interrupted by budget or cancellation"),
            LpError::Numerical => write!(f, "numerical sentinel tripped and recovery failed"),
        }
    }
}

impl std::error::Error for LpError {}

/// A solved LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Outcome of the solve.
    pub status: LpStatus,
    /// Variable values (meaningful when `status == Optimal`); this is a
    /// *basic* feasible solution, i.e. an extreme point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Simplex pivots performed across both phases.
    pub iterations: usize,
}

/// Internal solver state over the equality-form tableau.
struct Tableau {
    m: usize,
    ncols: usize,
    n_real: usize, // structural + slack columns (artificials come after)
    /// Row-major `m × ncols` matrix, `B⁻¹A`.
    tab: Vec<f64>,
    /// Current basic variable values (`rhs[i]` is the value of `basis[i]`).
    rhs: Vec<f64>,
    basis: Vec<usize>,
    /// For nonbasic columns: resting at upper bound?
    at_upper: Vec<bool>,
    /// Shifted bounds: every column has lower 0, upper `upper[j]` (may be ∞).
    upper: Vec<f64>,
    /// Reduced costs of the current phase.
    drow: Vec<f64>,
    bland: bool,
    degenerate_run: usize,
    iterations: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.tab[r * self.ncols + c]
    }

    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.at(r, j);
        debug_assert!(piv.abs() > TOL, "pivot element too small: {piv}");
        let inv = 1.0 / piv;
        let (start_r, end_r) = (r * self.ncols, (r + 1) * self.ncols);
        for c in start_r..end_r {
            self.tab[c] *= inv;
        }
        self.rhs[r] *= inv;
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.at(i, j);
            if factor.abs() <= TOL * 1e-3 {
                continue;
            }
            let (start_i, _) = (i * self.ncols, ());
            for c in 0..self.ncols {
                self.tab[start_i + c] -= factor * self.tab[start_r + c];
            }
            self.rhs[i] -= factor * self.rhs[r];
            let _ = start_i;
        }
        let dfactor = self.drow[j];
        if dfactor.abs() > 0.0 {
            for c in 0..self.ncols {
                self.drow[c] -= dfactor * self.tab[start_r + c];
            }
        }
        self.basis[r] = j;
        self.iterations += 1;
    }

    /// Chooses an entering column, or `None` at optimality.
    fn price(&self, allow_artificials: bool) -> Option<usize> {
        let limit = if allow_artificials { self.ncols } else { self.n_real };
        let mut best: Option<(usize, f64)> = None;
        for j in 0..limit {
            if self.basis.contains(&j) {
                continue;
            }
            let d = self.drow[j];
            let violation = if self.at_upper[j] {
                d // want d > 0 to decrease from upper
            } else {
                -d // want d < 0 to increase from lower
            };
            if violation > DJ_TOL {
                if self.bland {
                    return Some(j);
                }
                match best {
                    Some((_, v)) if v >= violation => {}
                    _ => best = Some((j, violation)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One simplex iteration with entering column `j`. Returns `false` when
    /// the column proves unboundedness.
    fn step(&mut self, j: usize) -> bool {
        let entering_from_upper = self.at_upper[j];
        // t ≥ 0 is the (absolute) movement of the entering variable.
        // dir = +1 when increasing from lower, −1 when decreasing from upper.
        let mut t_star = self.upper[j]; // bound-flip limit (may be ∞)
        let mut leaving: Option<(usize, bool)> = None; // (row, exits_at_upper)

        for i in 0..self.m {
            let alpha = self.at(i, j);
            if alpha.abs() <= TOL {
                continue;
            }
            // Change of basic i per unit t: −alpha when entering increases,
            // +alpha when entering decreases.
            let delta = if entering_from_upper { alpha } else { -alpha };
            let (limit, exits_upper) = if delta < 0.0 {
                // basic decreases toward 0
                ((self.rhs[i]).max(0.0) / -delta, false)
            } else {
                // basic increases toward its upper bound
                let ub = self.upper[self.basis[i]];
                if ub.is_infinite() {
                    continue;
                }
                (((ub - self.rhs[i]).max(0.0)) / delta, true)
            };
            if limit < t_star - TOL
                || (limit < t_star + TOL
                    && leaving.is_some_and(|(r, _)| self.bland && self.basis[i] < self.basis[r]))
            {
                t_star = limit;
                leaving = Some((i, exits_upper));
            }
        }

        if t_star.is_infinite() {
            return false; // unbounded direction
        }

        if t_star <= TOL {
            self.degenerate_run += 1;
            if self.degenerate_run > BLAND_TRIGGER {
                self.bland = true;
            }
        } else {
            self.degenerate_run = 0;
        }

        match leaving {
            None => {
                // Bound flip: entering moves all the way to its other bound.
                let signed = if entering_from_upper { -t_star } else { t_star };
                for i in 0..self.m {
                    let alpha = self.at(i, j);
                    if alpha.abs() > 0.0 {
                        self.rhs[i] -= alpha * signed;
                    }
                }
                self.at_upper[j] = !self.at_upper[j];
                self.iterations += 1;
            }
            Some((r, exits_upper)) => {
                let l = self.basis[r];
                if exits_upper {
                    self.rhs[r] -= self.upper[l];
                }
                self.pivot(r, j);
                if entering_from_upper {
                    self.rhs[r] += self.upper[j];
                    self.at_upper[j] = false;
                }
                self.at_upper[l] = exits_upper;
            }
        }
        true
    }

    /// Runs the current phase to optimality. Returns `Ok(true)` on
    /// optimality, `Ok(false)` on unboundedness.
    fn optimize(
        &mut self,
        allow_artificials: bool,
        max_iter: usize,
        ctx: Option<&SolveCtx>,
    ) -> Result<bool, LpError> {
        loop {
            if self.iterations > max_iter {
                return Err(LpError::IterationLimit);
            }
            if let Some(ctx) = ctx {
                if ctx.should_stop(self.iterations as u64) {
                    return Err(LpError::Interrupted);
                }
            }
            let Some(j) = self.price(allow_artificials) else {
                return Ok(true);
            };
            if !self.step(j) {
                return Ok(false);
            }
        }
    }
}

/// Solves `problem` with the two-phase bounded-variable simplex.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    solve_with_ctx(problem, None)
}

/// [`solve`], polling `ctx` between pivots so the solve can be cancelled
/// or deadline-bounded ([`LpError::Interrupted`]). With `ctx = None` the
/// pivot sequence is identical to the un-budgeted solver.
pub fn solve_with_ctx(problem: &LpProblem, ctx: Option<&SolveCtx>) -> Result<LpSolution, LpError> {
    let nvars = problem.num_vars();
    let m = problem.num_constraints();

    for j in 0..nvars {
        if problem.lower[j] > problem.upper[j] + TOL {
            return Err(LpError::InvalidBounds);
        }
    }

    // Column layout: structural | slacks | artificials.
    let n_slack = problem.constraints.iter().filter(|c| c.rel != Relation::Eq).count();
    let n_real = nvars + n_slack;
    let ncols = n_real + m;

    // Dense rows in equality form over shifted variables (lower bound 0):
    //   Σ a_j (x_j − l_j) (+ slack) = b − Σ a_j l_j
    let mut dense = vec![0.0f64; m * ncols];
    let mut b = vec![0.0f64; m];
    let mut upper = vec![0.0f64; ncols];
    for (j, u) in upper.iter_mut().enumerate().take(nvars) {
        *u = problem.upper[j] - problem.lower[j];
    }
    // Slacks and artificials are unbounded above (artificials start basic
    // and leave for good).
    for u in upper.iter_mut().skip(nvars) {
        *u = f64::INFINITY;
    }

    let mut slack_cursor = nvars;
    for (i, c) in problem.constraints.iter().enumerate() {
        let row = &mut dense[i * ncols..(i + 1) * ncols];
        let mut rhs = c.rhs;
        for &(j, a) in &c.terms {
            row[j] += a;
            rhs -= a * problem.lower[j];
        }
        match c.rel {
            Relation::Le => {
                row[slack_cursor] = 1.0;
                slack_cursor += 1;
            }
            Relation::Ge => {
                row[slack_cursor] = -1.0;
                slack_cursor += 1;
            }
            Relation::Eq => {}
        }
        b[i] = rhs;
    }
    debug_assert_eq!(slack_cursor, n_real);

    // Sign-normalize rows so the artificial start is feasible, then install
    // the artificial identity.
    for i in 0..m {
        if b[i] < 0.0 {
            for c in 0..ncols {
                dense[i * ncols + c] = -dense[i * ncols + c];
            }
            b[i] = -b[i];
        }
        dense[i * ncols + n_real + i] = 1.0;
    }

    let mut t = Tableau {
        m,
        ncols,
        n_real,
        tab: dense,
        rhs: b,
        basis: (n_real..ncols).collect(),
        at_upper: vec![false; ncols],
        upper,
        drow: vec![0.0; ncols],
        bland: false,
        degenerate_run: 0,
        iterations: 0,
    };

    let max_iter = 20_000 + 200 * (m + ncols);

    // ---- Phase 1: minimize the sum of artificials. ----
    // Reduced costs: d_j = c_j − Σ_i c_{B_i}·tab[i][j], with c = 1 on
    // artificials, 0 elsewhere, and the initial basis all-artificial.
    for j in 0..t.ncols {
        let colsum: f64 = (0..t.m).map(|i| t.at(i, j)).sum();
        let cj = if j >= n_real { 1.0 } else { 0.0 };
        t.drow[j] = cj - colsum;
    }
    let finished = t.optimize(true, max_iter, ctx)?;
    debug_assert!(finished, "phase 1 is bounded below by 0");

    let phase1_obj: f64 = (0..t.m).filter(|&i| t.basis[i] >= n_real).map(|i| t.rhs[i]).sum();
    if phase1_obj > 1e-6 {
        return Ok(LpSolution {
            status: LpStatus::Infeasible,
            x: vec![0.0; nvars],
            objective: f64::NAN,
            iterations: t.iterations,
        });
    }

    // ---- Drive artificials out of the basis; drop redundant rows. ----
    let mut drop_rows: Vec<usize> = Vec::new();
    for r in 0..t.m {
        if t.basis[r] < n_real {
            continue;
        }
        let mut pivot_col = None;
        for j in 0..n_real {
            if !t.basis.contains(&j) && t.at(r, j).abs() > 1e-7 {
                pivot_col = Some(j);
                break;
            }
        }
        match pivot_col {
            Some(j) => {
                let was_upper = t.at_upper[j];
                if was_upper {
                    // Entering at its upper bound with zero movement: after a
                    // mechanical pivot, restore its (basic) value.
                    t.pivot(r, j);
                    t.rhs[r] += t.upper[j];
                    t.at_upper[j] = false;
                } else {
                    t.pivot(r, j);
                }
            }
            None => drop_rows.push(r),
        }
    }
    if !drop_rows.is_empty() {
        // Remove redundant rows (descending index so removal is stable).
        for &r in drop_rows.iter().rev() {
            let last = t.m - 1;
            if r != last {
                for c in 0..t.ncols {
                    t.tab[r * t.ncols + c] = t.tab[last * t.ncols + c];
                }
                t.rhs[r] = t.rhs[last];
                t.basis[r] = t.basis[last];
            }
            t.tab.truncate(last * t.ncols);
            t.rhs.truncate(last);
            t.basis.truncate(last);
            t.m = last;
        }
    }

    // ---- Phase 2: real objective over shifted variables. ----
    let shifted_cost = |j: usize| -> f64 {
        if j < nvars {
            problem.cost[j]
        } else {
            0.0
        }
    };
    for j in 0..t.ncols {
        let mut d = shifted_cost(j);
        for i in 0..t.m {
            d -= shifted_cost(t.basis[i]) * t.at(i, j);
        }
        t.drow[j] = d;
    }
    // Basic columns must have zero reduced cost by construction.
    for i in 0..t.m {
        t.drow[t.basis[i]] = 0.0;
    }
    t.bland = false;
    t.degenerate_run = 0;

    let finished = t.optimize(false, max_iter, ctx)?;
    if !finished {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            x: vec![0.0; nvars],
            objective: f64::NEG_INFINITY,
            iterations: t.iterations,
        });
    }

    // ---- Extract the basic solution (unshift lower bounds). ----
    let mut shifted = vec![0.0f64; t.ncols];
    for (j, s) in shifted.iter_mut().enumerate() {
        if t.at_upper[j] && t.upper[j].is_finite() {
            *s = t.upper[j];
        }
    }
    for i in 0..t.m {
        shifted[t.basis[i]] = t.rhs[i];
    }
    let mut x = vec![0.0f64; nvars];
    for j in 0..nvars {
        // Clamp tiny negative noise into the box.
        let v = shifted[j] + problem.lower[j];
        x[j] = v.clamp(
            problem.lower[j],
            if problem.upper[j].is_finite() { problem.upper[j] } else { f64::INFINITY },
        );
    }
    let objective = problem.objective_at(&x);
    // Non-finite sentinel: NaN/Inf cannot loop forever (comparisons against
    // a NaN are false, so pricing terminates), but they can silently reach
    // the solution. Refuse to report a poisoned optimum.
    if !objective.is_finite()
        || x.iter().any(|v| !v.is_finite())
        || t.rhs.iter().any(|v| !v.is_finite())
    {
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("lp.sentinel.nonfinite").inc();
            wsn_obs::warn("lp.sentinel", vec![wsn_obs::field("where", "dense_simplex")]);
        }
        return Err(LpError::Numerical);
    }
    Ok(LpSolution { status: LpStatus::Optimal, x, objective, iterations: t.iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation, VarId};

    fn optimal(p: &LpProblem) -> LpSolution {
        let s = p.solve().expect("solver error");
        assert_eq!(s.status, LpStatus::Optimal, "expected optimal, got {:?}", s.status);
        assert!(p.is_feasible(&s.x, 1e-6), "solution must be feasible: {:?}", s.x);
        s
    }

    #[test]
    fn trivial_box_minimum() {
        // min x, x ∈ [0.25, 3] → 0.25
        let mut p = LpProblem::new();
        p.add_var(1.0, 0.25, 3.0);
        let s = optimal(&p);
        assert!((s.objective - 0.25).abs() < 1e-9);
    }

    #[test]
    fn textbook_2d() {
        // min −3x − 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
        // optimum (2, 6) → −36.
        let mut p = LpProblem::new();
        let x = p.add_var(-3.0, 0.0, f64::INFINITY);
        let y = p.add_var(-5.0, 0.0, f64::INFINITY);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = optimal(&p);
        assert!((s.objective + 36.0).abs() < 1e-7, "obj {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y  s.t. x + y = 1, x,y ∈ [0,1] → (1, 0), obj 1.
        let mut p = LpProblem::new();
        let x = p.add_unit_var(1.0);
        let y = p.add_unit_var(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        let s = optimal(&p);
        assert!((s.objective - 1.0).abs() < 1e-8);
        assert!((s.x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ge_constraints_and_negative_rhs_normalization() {
        // min x  s.t. −x ≤ −2 (i.e. x ≥ 2), x ∈ [0, 10] → 2.
        let mut p = LpProblem::new();
        let x = p.add_var(1.0, 0.0, 10.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let s = optimal(&p);
        assert!((s.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = LpProblem::new();
        let x = p.add_unit_var(1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0); // x ≥ 2 but x ≤ 1
        let s = p.solve().unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = LpProblem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        p.add_constraint(&[(x, -1.0)], Relation::Le, 0.0); // no upper limit
        let s = p.solve().unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn invalid_bounds_error() {
        let mut p = LpProblem::new();
        p.add_var(1.0, 2.0, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::InvalidBounds);
    }

    #[test]
    fn nonbasic_at_upper_bound_used() {
        // min −x − y  s.t. x + y ≤ 1.5, x,y ∈ [0,1]: optimum uses one var at
        // its upper bound (bound flip machinery).
        let mut p = LpProblem::new();
        let x = p.add_unit_var(-1.0);
        let y = p.add_unit_var(-1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        let s = optimal(&p);
        assert!((s.objective + 1.5).abs() < 1e-8);
        assert!(s.x.iter().any(|&v| (v - 1.0).abs() < 1e-8));
    }

    #[test]
    fn general_lower_bounds_shifted() {
        // min x + y  s.t. x + y ≥ 5, x ∈ [1, 10], y ∈ [2, 10] → obj 5.
        let mut p = LpProblem::new();
        let x = p.add_var(1.0, 1.0, 10.0);
        let y = p.add_var(1.0, 2.0, 10.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let s = optimal(&p);
        assert!((s.objective - 5.0).abs() < 1e-8);
        assert!(s.x[0] >= 1.0 - 1e-9 && s.x[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn redundant_rows_dropped() {
        // Duplicate equality rows force a redundant artificial row.
        let mut p = LpProblem::new();
        let x = p.add_unit_var(1.0);
        let y = p.add_unit_var(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 2.0);
        let s = optimal(&p);
        assert!((s.objective - 1.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate corner: many constraints active at the optimum.
        let mut p = LpProblem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        let y = p.add_var(-1.0, 0.0, f64::INFINITY);
        for k in 1..=8 {
            let k = k as f64;
            p.add_constraint(&[(x, 1.0), (y, k)], Relation::Le, 1.0);
            p.add_constraint(&[(x, k), (y, 1.0)], Relation::Le, 1.0);
        }
        let s = optimal(&p);
        assert!(s.objective <= 0.0);
    }

    #[test]
    fn fractional_extreme_point_structure() {
        // min −x−y−z s.t. x+y ≤ 1, y+z ≤ 1, x+z ≤ 1 over [0,1]³.
        // Unique optimum (½,½,½) — a genuinely fractional extreme point.
        let mut p = LpProblem::new();
        let v: Vec<VarId> = (0..3).map(|_| p.add_unit_var(-1.0)).collect();
        p.add_constraint(&[(v[0], 1.0), (v[1], 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(v[1], 1.0), (v[2], 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(v[0], 1.0), (v[2], 1.0)], Relation::Le, 1.0);
        let s = optimal(&p);
        assert!((s.objective + 1.5).abs() < 1e-8);
        for val in &s.x {
            assert!((val - 0.5).abs() < 1e-8);
        }
    }

    #[test]
    fn assignment_problem_is_integral() {
        // 3×3 assignment LP: extreme points of the Birkhoff polytope are
        // permutation matrices, so the simplex answer must be integral.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut p = LpProblem::new();
        let mut vars = [[VarId(0); 3]; 3];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars[i][j] = p.add_unit_var(c);
            }
        }
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| (vars[i][j], 1.0)).collect();
            p.add_constraint(&row, Relation::Eq, 1.0);
            let col: Vec<_> = (0..3).map(|j| (vars[j][i], 1.0)).collect();
            p.add_constraint(&col, Relation::Eq, 1.0);
        }
        let s = optimal(&p);
        // Optimal assignment: (0,1)=2, (1,0)=4 or (1,2)… brute force: try all
        // 6 permutations.
        let mut best = f64::INFINITY;
        let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for perm in perms {
            let c: f64 = (0..3).map(|i| costs[i][perm[i]]).sum();
            best = best.min(c);
        }
        assert!((s.objective - best).abs() < 1e-8, "{} vs {}", s.objective, best);
        for v in &s.x {
            assert!(v.abs() < 1e-7 || (v - 1.0).abs() < 1e-7, "non-integral {v}");
        }
    }

    mod stress {
        //! Classic adversarial LPs: Beale's cycling example and the
        //! Klee-Minty cube.
        use super::*;

        #[test]
        fn beale_cycling_example() {
            // Beale (1955): cycles under naive Dantzig pricing without an
            // anti-cycling rule. Optimum -0.05 at x = (1/25, 0, 1, 0).
            let mut p = LpProblem::new();
            let x4 = p.add_var(-0.75, 0.0, f64::INFINITY);
            let x5 = p.add_var(150.0, 0.0, f64::INFINITY);
            let x6 = p.add_var(-0.02, 0.0, f64::INFINITY);
            let x7 = p.add_var(6.0, 0.0, f64::INFINITY);
            p.add_constraint(
                &[(x4, 0.25), (x5, -60.0), (x6, -1.0 / 25.0), (x7, 9.0)],
                Relation::Le,
                0.0,
            );
            p.add_constraint(
                &[(x4, 0.5), (x5, -90.0), (x6, -1.0 / 50.0), (x7, 3.0)],
                Relation::Le,
                0.0,
            );
            p.add_constraint(&[(x6, 1.0)], Relation::Le, 1.0);
            let s = p.solve().expect("must terminate despite degeneracy");
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective + 0.05).abs() < 1e-9, "obj {}", s.objective);
        }

        #[test]
        fn klee_minty_cube_n5() {
            // Klee-Minty: exponential for textbook Dantzig pivoting but must
            // still land on the optimum 5^n.
            let n = 5usize;
            let mut p = LpProblem::new();
            let vars: Vec<VarId> = (0..n)
                .map(|j| p.add_var(-(2f64.powi((n - 1 - j) as i32)), 0.0, f64::INFINITY))
                .collect();
            for i in 0..n {
                let mut terms: Vec<(VarId, f64)> =
                    (0..i).map(|j| (vars[j], 2.0 * 2f64.powi((i - j) as i32))).collect();
                terms.push((vars[i], 1.0));
                p.add_constraint(&terms, Relation::Le, 5f64.powi(i as i32 + 1));
            }
            let s = p.solve().unwrap();
            assert_eq!(s.status, LpStatus::Optimal);
            assert!(
                (s.objective + 5f64.powi(n as i32)).abs() < 1e-6,
                "obj {} vs -{}",
                s.objective,
                5f64.powi(n as i32)
            );
        }

        #[test]
        fn massively_redundant_constraints() {
            // The same binding constraint repeated 60 times: phase 1 must
            // drop the redundancy and phase 2 must still optimize.
            let mut p = LpProblem::new();
            let x = p.add_var(-1.0, 0.0, f64::INFINITY);
            let y = p.add_var(-1.0, 0.0, f64::INFINITY);
            for k in 0..60 {
                let scale = 1.0 + (k % 7) as f64;
                p.add_constraint(&[(x, scale), (y, scale)], Relation::Le, 10.0 * scale);
            }
            let s = p.solve().unwrap();
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective + 10.0).abs() < 1e-7);
        }

        #[test]
        fn wide_problem_many_variables() {
            // 200 variables, one coupling row: the cheapest variable wins.
            let mut p = LpProblem::new();
            let vars: Vec<VarId> =
                (0..200).map(|j| p.add_unit_var(1.0 + (j % 13) as f64)).collect();
            let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&all, Relation::Ge, 5.0);
            let s = p.solve().unwrap();
            assert_eq!(s.status, LpStatus::Optimal);
            // Five cheapest (cost 1) variables at their upper bound 1.
            assert!((s.objective - 5.0).abs() < 1e-7, "obj {}", s.objective);
        }
    }

    mod brute_force {
        //! Optimality cross-check against exhaustive vertex enumeration for
        //! tiny random LPs over the unit box.
        use super::*;
        use proptest::prelude::*;

        /// Solves a k×k linear system with partial pivoting; `None` when
        /// singular.
        fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
            let k = b.len();
            for col in 0..k {
                let (pivot_row, pivot_val) = (col..k)
                    .map(|r| (r, a[r][col].abs()))
                    .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())?;
                if pivot_val < 1e-10 {
                    return None;
                }
                a.swap(col, pivot_row);
                b.swap(col, pivot_row);
                for r in 0..k {
                    if r != col {
                        let f = a[r][col] / a[col][col];
                        for c in col..k {
                            a[r][c] -= f * a[col][c];
                        }
                        b[r] -= f * b[col];
                    }
                }
            }
            Some((0..k).map(|i| b[i] / a[i][i]).collect())
        }

        /// Enumerates all candidate vertices of
        /// `{x ∈ [0,1]ⁿ : rows·x ≤ rhs}` by activating every n-subset of the
        /// constraints (rows plus box facets) and returns the best feasible
        /// objective.
        fn brute_optimum(cost: &[f64], rows: &[Vec<f64>], rhs: &[f64]) -> Option<f64> {
            let n = cost.len();
            // Build the full facet list: rows, x_j ≥ 0 (as −x_j ≤ 0), x_j ≤ 1.
            let mut facets: Vec<(Vec<f64>, f64)> = Vec::new();
            for (r, row) in rows.iter().enumerate() {
                facets.push((row.clone(), rhs[r]));
            }
            for j in 0..n {
                let mut lo = vec![0.0; n];
                lo[j] = -1.0;
                facets.push((lo, 0.0));
                let mut hi = vec![0.0; n];
                hi[j] = 1.0;
                facets.push((hi, 1.0));
            }
            let f = facets.len();
            let mut best: Option<f64> = None;
            // Iterate n-subsets via bitmask (f ≤ 12 for our sizes).
            for mask in 0u32..(1 << f) {
                if mask.count_ones() as usize != n {
                    continue;
                }
                let chosen: Vec<usize> = (0..f).filter(|&i| mask & (1 << i) != 0).collect();
                let a: Vec<Vec<f64>> = chosen.iter().map(|&i| facets[i].0.clone()).collect();
                let b: Vec<f64> = chosen.iter().map(|&i| facets[i].1).collect();
                let Some(x) = solve_dense(a, b) else { continue };
                // Feasibility of the candidate vertex.
                let ok = x.iter().all(|&v| (-1e-7..=1.0 + 1e-7).contains(&v))
                    && rows.iter().zip(rhs).all(|(row, &r)| {
                        row.iter().zip(&x).map(|(a, v)| a * v).sum::<f64>() <= r + 1e-7
                    });
                if ok {
                    let obj: f64 = cost.iter().zip(&x).map(|(c, v)| c * v).sum();
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn simplex_matches_vertex_enumeration(
                n in 2usize..4,
                cost_raw in proptest::collection::vec(-5i32..5, 3),
                rows_raw in proptest::collection::vec(
                    (proptest::collection::vec(-3i32..4, 3), 1i32..6), 1..4),
            ) {
                let cost: Vec<f64> = cost_raw[..n].iter().map(|&c| c as f64).collect();
                let rows: Vec<Vec<f64>> = rows_raw
                    .iter()
                    .map(|(r, _)| r[..n].iter().map(|&a| a as f64).collect())
                    .collect();
                let rhs: Vec<f64> = rows_raw.iter().map(|&(_, b)| b as f64).collect();

                let mut p = LpProblem::new();
                let vars: Vec<VarId> = cost.iter().map(|&c| p.add_unit_var(c)).collect();
                for (row, &r) in rows.iter().zip(&rhs) {
                    let terms: Vec<(VarId, f64)> =
                        vars.iter().copied().zip(row.iter().copied()).collect();
                    p.add_constraint(&terms, Relation::Le, r);
                }
                let s = p.solve().unwrap();
                // The box keeps the problem bounded and x = 0 is feasible
                // (all rhs ≥ 1 > 0), so the solve must be optimal.
                prop_assert_eq!(s.status, LpStatus::Optimal);
                prop_assert!(p.is_feasible(&s.x, 1e-6));
                let brute = brute_optimum(&cost, &rows, &rhs).expect("0 is feasible");
                prop_assert!(
                    (s.objective - brute).abs() < 1e-5,
                    "simplex {} vs brute {}", s.objective, brute
                );
            }
        }
    }
}

//! Linear-programming substrate for the MRLC reproduction.
//!
//! IRA (Algorithm 1 of the paper) repeatedly needs an **extreme point**
//! solution of `LP(G, L', W)` — Theorem 1 only asks for a polynomial
//! algorithm with a separation oracle, and the proofs (Lemma 1/4) rely on
//! the solution being a *basic* feasible solution. The mature Rust LP
//! ecosystem does not offer a pure-Rust simplex with that guarantee, so this
//! crate implements one from scratch:
//!
//! * a model builder ([`LpProblem`]) for `min cᵀx` subject to
//!   `Ax {≤,=,≥} b` and box bounds `l ≤ x ≤ u`;
//! * a dense **two-phase primal simplex with bounded variables**
//!   ([`simplex`]): nonbasic variables sit at either bound, the ratio test
//!   handles bound flips, and Bland's rule kicks in after prolonged
//!   degeneracy so the algorithm terminates;
//! * solutions are always **basic** — exactly the extreme points Lemma 1's
//!   integrality argument needs.
//!
//! Problem sizes here are modest (≲ a few thousand columns), so a dense
//! tableau is the right trade-off: simple, cache-friendly, and easy to
//! verify.
//!
//! # Example
//!
//! ```
//! use wsn_lp::{LpProblem, LpStatus, Relation};
//!
//! // min −3x − 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0.
//! let mut p = LpProblem::new();
//! let x = p.add_var(-3.0, 0.0, f64::INFINITY);
//! let y = p.add_var(-5.0, 0.0, f64::INFINITY);
//! p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
//! p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
//!
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective + 36.0).abs() < 1e-7); // optimum at (2, 6)
//! ```

pub mod budget;
pub mod incremental;
pub mod problem;
pub mod simplex;

pub use budget::{FaultKind, SolveBudget, SolveCtx, FAULT_KINDS};
pub use incremental::{IncrementalLp, RowId};
pub use problem::{LpProblem, Relation, VarId};
pub use simplex::{solve_with_ctx, LpError, LpSolution, LpStatus};

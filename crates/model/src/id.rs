//! Strongly-typed node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sensor node.
///
/// Node identifiers are the labels used by the paper's algorithms: they are
/// dense (`0..n`) and ordered, and the Prüfer encoding/decoding algorithms
/// rely on that total order ("the leaf with the largest label"). Node `0`
/// conventionally denotes the sink.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The conventional sink label used by every paper scenario.
    pub const SINK: NodeId = NodeId(0);

    /// Creates a node id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX` (far beyond any WSN scale).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw label.
    #[inline]
    pub fn label(self) -> u32 {
        self.0
    }

    /// True if this node is the conventional sink (label 0).
    #[inline]
    pub fn is_sink(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Iterator over the dense node ids `0..n`.
pub fn node_range(n: usize) -> impl Iterator<Item = NodeId> + Clone {
    (0..n).map(NodeId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn sink_is_zero() {
        assert!(NodeId::SINK.is_sink());
        assert!(!NodeId::new(3).is_sink());
        assert_eq!(NodeId::SINK, NodeId::new(0));
    }

    #[test]
    fn ordering_follows_labels() {
        assert!(NodeId::new(2) < NodeId::new(10));
        let mut v = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn node_range_is_dense() {
        let ids: Vec<_> = node_range(4).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], NodeId::SINK);
        assert_eq!(ids[3], NodeId::new(3));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(12)), "12");
        assert_eq!(format!("{:?}", NodeId::new(12)), "v12");
    }
}

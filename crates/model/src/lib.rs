//! Network model for the MRLC reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: sensor nodes and their identifiers, unreliable wireless links
//! with packet-reception ratios (PRR), the undirected network graph, rooted
//! data-aggregation trees, the send/receive energy model, node and network
//! lifetime (Eq. 1 of the paper), and tree reliability/cost (Lemma 3).
//!
//! The paper's conventions are kept throughout:
//!
//! * node `0` is the sink by default (trees may be rooted anywhere, but all
//!   paper scenarios root at node 0);
//! * the reliability of a tree is the product of its edge PRRs,
//!   `Q(T) = Π q_e`;
//! * the cost of an edge is `c_e = −log q_e`, so minimizing tree cost
//!   maximizes reliability; we store natural-log costs and expose the
//!   paper's reporting unit (`−1000·log₂ q`) via [`reliability::PaperCost`];
//! * a node's lifetime is `L(v) = I(v) / (Tx + Rx · Ch_T(v))` and the
//!   network lifetime is the minimum over nodes.
//!
//! # Example
//!
//! ```
//! use wsn_model::{AggregationTree, EnergyModel, NetworkBuilder, NodeId};
//! use wsn_model::{lifetime, reliability};
//!
//! let mut b = NetworkBuilder::new(3);
//! b.add_edge(0, 1, 0.9).unwrap();
//! b.add_edge(1, 2, 0.8).unwrap();
//! let net = b.build().unwrap();
//!
//! let tree = AggregationTree::from_edges(
//!     NodeId::SINK, 3,
//!     &[(NodeId::new(0), NodeId::new(1)), (NodeId::new(1), NodeId::new(2))],
//! ).unwrap();
//!
//! // Q(T) = 0.9 · 0.8.
//! assert!((reliability::tree_reliability(&net, &tree) - 0.72).abs() < 1e-12);
//! // The relay (one child) dies first.
//! let l = lifetime::network_lifetime(&net, &tree, &EnergyModel::PAPER);
//! assert!((l - 3000.0 / 2.8e-4).abs() < 1.0);
//! ```

pub mod energy;
pub mod error;
pub mod graph;
pub mod id;
pub mod lifetime;
pub mod link;
pub mod reliability;
pub mod tree;

pub use energy::EnergyModel;
pub use error::ModelError;
pub use graph::{EdgeId, Network, NetworkBuilder};
pub use id::NodeId;
pub use lifetime::{
    children_bound, network_lifetime, node_lifetime, tightened_bound, LifetimeBound,
};
pub use link::{Link, Prr};
pub use reliability::{edge_cost, tree_cost, tree_reliability, PaperCost};
pub use tree::AggregationTree;

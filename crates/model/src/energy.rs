//! The send/receive/idle energy model measured in §III-B (Fig. 3).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Paper default: two AA batteries per node, 3000 J.
pub const DEFAULT_INITIAL_ENERGY_J: f64 = 3000.0;

/// Paper default: energy to send one 34-byte packet, `1.6e-4` J (§VII).
pub const DEFAULT_TX_J: f64 = 1.6e-4;

/// Paper default: energy to receive one packet, `1.2e-4` J (§VII).
pub const DEFAULT_RX_J: f64 = 1.2e-4;

/// Average radio power while sending, ≈ 80 mW (Fig. 3a).
pub const SEND_POWER_W: f64 = 0.080;

/// Average radio power while listening/receiving, ≈ 60 mW (Fig. 3b).
pub const RECEIVE_POWER_W: f64 = 0.060;

/// Average power with the radio off (LEDs + MCU), ≈ 80 µW (Fig. 3c).
pub const IDLE_POWER_W: f64 = 80e-6;

/// Per-packet energy model.
///
/// Following the paper, network lifetime only accounts for the sending and
/// receiving states: idle power is four orders of magnitude smaller
/// (80 µW vs. 60–80 mW) and is ignored by Eq. 1. The idle draw is still kept
/// here because the power-trace synthesis (Fig. 3) reproduces it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to transmit one packet, joules (`Tx`).
    pub tx: f64,
    /// Energy to receive one packet, joules (`Rx`).
    pub rx: f64,
    /// Idle power draw, watts (not used in Eq. 1).
    pub idle_power: f64,
}

impl EnergyModel {
    /// The TelosB model measured in the paper.
    pub const PAPER: EnergyModel =
        EnergyModel { tx: DEFAULT_TX_J, rx: DEFAULT_RX_J, idle_power: IDLE_POWER_W };

    /// Creates a validated energy model.
    pub fn new(tx: f64, rx: f64) -> Result<Self, ModelError> {
        if !(tx.is_finite() && tx > 0.0) {
            return Err(ModelError::InvalidEnergy(tx));
        }
        if !(rx.is_finite() && rx > 0.0) {
            return Err(ModelError::InvalidEnergy(rx));
        }
        Ok(EnergyModel { tx, rx, idle_power: IDLE_POWER_W })
    }

    /// Energy one node spends per aggregation round when it has `children`
    /// children: one transmission plus one reception per child.
    #[inline]
    pub fn round_energy(&self, children: usize) -> f64 {
        self.tx + self.rx * children as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = EnergyModel::PAPER;
        assert_eq!(m.tx, 1.6e-4);
        assert_eq!(m.rx, 1.2e-4);
        assert_eq!(m.idle_power, 80e-6);
    }

    #[test]
    fn round_energy_scales_with_children() {
        let m = EnergyModel::PAPER;
        assert!((m.round_energy(0) - 1.6e-4).abs() < 1e-15);
        assert!((m.round_energy(3) - (1.6e-4 + 3.0 * 1.2e-4)).abs() < 1e-15);
    }

    #[test]
    fn validation() {
        assert!(EnergyModel::new(0.0, 1.0).is_err());
        assert!(EnergyModel::new(1.0, -1.0).is_err());
        assert!(EnergyModel::new(f64::NAN, 1.0).is_err());
        assert!(EnergyModel::new(1e-4, 1e-4).is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(EnergyModel::default(), EnergyModel::PAPER);
    }
}

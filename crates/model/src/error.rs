//! Error type shared by the model layer.

use crate::id::NodeId;
use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A PRR value was outside `[0, 1]` or not finite.
    InvalidPrr(f64),
    /// An energy quantity was non-positive or not finite.
    InvalidEnergy(f64),
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// The same undirected edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The network is not connected, so no spanning tree exists.
    Disconnected { component_of_root: usize, n: usize },
    /// A parent assignment did not describe a tree rooted at the stated root.
    NotATree(String),
    /// The network has no nodes.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPrr(v) => {
                write!(f, "packet reception ratio {v} is not a finite value in [0, 1]")
            }
            ModelError::InvalidEnergy(v) => {
                write!(f, "energy value {v} is not a positive finite quantity")
            }
            ModelError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} is out of range for a network of {n} nodes")
            }
            ModelError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            ModelError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            ModelError::Disconnected { component_of_root, n } => write!(
                f,
                "network is disconnected: the root's component has {component_of_root} of {n} nodes"
            ),
            ModelError::NotATree(msg) => write!(f, "parent assignment is not a tree: {msg}"),
            ModelError::Empty => write!(f, "network has no nodes"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidPrr(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = ModelError::Disconnected { component_of_root: 3, n: 16 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ModelError::SelfLoop(NodeId::new(2)), ModelError::SelfLoop(NodeId::new(2)));
        assert_ne!(ModelError::SelfLoop(NodeId::new(2)), ModelError::SelfLoop(NodeId::new(3)));
    }
}

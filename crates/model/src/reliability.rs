//! Tree reliability `Q(T)` and the cost equivalence of Lemma 3.

use crate::graph::Network;
use crate::link::Prr;
use crate::tree::AggregationTree;

/// Natural-log edge cost `c_e = −ln q_e` (Eq. 9 up to the log base, which
/// does not affect minimizers).
#[inline]
pub fn edge_cost(prr: Prr) -> f64 {
    prr.cost()
}

/// Total natural-log cost of a tree, `C(T) = Σ_{e∈T} c_e` (Eq. 10).
///
/// # Panics
/// Panics if the tree uses an edge absent from the network.
pub fn tree_cost(net: &Network, tree: &AggregationTree) -> f64 {
    tree.edges()
        .map(|(c, p)| {
            let e = net
                .find_edge(c, p)
                .unwrap_or_else(|| panic!("tree edge ({c}, {p}) not present in the network"));
            net.link(e).cost()
        })
        .sum()
}

/// Reliability of a tree: the probability that one aggregation round
/// delivers every node's reading, `Q(T) = Π_{e∈T} q_e`.
pub fn tree_reliability(net: &Network, tree: &AggregationTree) -> f64 {
    (-tree_cost(net, tree)).exp()
}

/// The paper's reporting unit for costs.
///
/// Fitting the published (cost, reliability) pairs — MST (55, 0.963),
/// IRA@LC1 (68, 0.954), AAML (378, 0.77) — shows the evaluation section
/// reports `−1000·log₂ q` summed over tree edges. This type converts between
/// the internal natural-log costs and that unit.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct PaperCost(pub f64);

impl PaperCost {
    const SCALE: f64 = 1000.0 / std::f64::consts::LN_2;

    /// Converts a natural-log cost into the paper unit.
    #[inline]
    pub fn from_nat(nat_cost: f64) -> Self {
        PaperCost(nat_cost * Self::SCALE)
    }

    /// Converts back into a natural-log cost.
    #[inline]
    pub fn to_nat(self) -> f64 {
        self.0 / Self::SCALE
    }

    /// Reliability implied by this cost: `Q = 2^(−cost/1000)`.
    #[inline]
    pub fn reliability(self) -> f64 {
        (-self.to_nat()).exp()
    }

    /// Paper-unit cost of a whole tree.
    pub fn of_tree(net: &Network, tree: &AggregationTree) -> Self {
        Self::from_nat(tree_cost(net, tree))
    }
}

impl std::fmt::Display for PaperCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use crate::id::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The toy network of Fig. 4: 6 nodes (sink 0 plus 1..5).
    ///
    /// Tree (a) uses links with PRRs {0.8, 0.5, 0.9, 1.0, 1.0} → Q = 0.36;
    /// tree (b) swaps the 0.5 link for a 0.9 one → Q = 0.648.
    fn fig4_network() -> Network {
        let mut b = NetworkBuilder::new(6);
        b.add_edge(4, 0, 1.0).unwrap(); // 4 → sink
        b.add_edge(5, 0, 1.0).unwrap(); // 5 → sink
        b.add_edge(2, 4, 0.5).unwrap(); // tree (a) edge
        b.add_edge(3, 4, 0.9).unwrap();
        b.add_edge(1, 5, 0.8).unwrap();
        b.add_edge(2, 5, 0.9).unwrap(); // tree (b) alternative for node 2
        b.build().unwrap()
    }

    fn tree_a(net: &Network) -> AggregationTree {
        let edges = [(n(4), n(0)), (n(5), n(0)), (n(2), n(4)), (n(3), n(4)), (n(1), n(5))];
        let t = AggregationTree::from_edges(n(0), 6, &edges).unwrap();
        assert_eq!(net.n(), 6);
        t
    }

    fn tree_b(net: &Network) -> AggregationTree {
        let edges = [(n(4), n(0)), (n(5), n(0)), (n(2), n(5)), (n(3), n(4)), (n(1), n(5))];
        let t = AggregationTree::from_edges(n(0), 6, &edges).unwrap();
        assert_eq!(net.n(), 6);
        t
    }

    #[test]
    fn fig4_tree_a_reliability() {
        let net = fig4_network();
        let q = tree_reliability(&net, &tree_a(&net));
        assert!((q - 0.36).abs() < 1e-12, "Q(a) = {q}");
    }

    #[test]
    fn fig4_tree_b_reliability() {
        let net = fig4_network();
        let q = tree_reliability(&net, &tree_b(&net));
        assert!((q - 0.648).abs() < 1e-12, "Q(b) = {q}");
    }

    #[test]
    fn lemma3_cost_equals_neg_log_reliability() {
        let net = fig4_network();
        for t in [tree_a(&net), tree_b(&net)] {
            let c = tree_cost(&net, &t);
            let q = tree_reliability(&net, &t);
            assert!((c + q.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_cost_means_higher_reliability() {
        let net = fig4_network();
        let (ca, cb) = (tree_cost(&net, &tree_a(&net)), tree_cost(&net, &tree_b(&net)));
        assert!(cb < ca);
        assert!(tree_reliability(&net, &tree_b(&net)) > tree_reliability(&net, &tree_a(&net)));
    }

    #[test]
    fn paper_cost_roundtrip_and_calibration() {
        // The paper's MST point: cost 55 ↔ reliability 0.963.
        let pc = PaperCost(55.0);
        assert!((pc.reliability() - 0.963).abs() < 5e-4, "rel = {}", pc.reliability());
        // IRA@LC1: cost 68 ↔ 0.954.
        assert!((PaperCost(68.0).reliability() - 0.954).abs() < 1e-3);
        // AAML: cost 378 ↔ 0.77.
        assert!((PaperCost(378.0).reliability() - 0.77).abs() < 2e-3);
        // Roundtrip.
        let nat = 0.1234;
        assert!((PaperCost::from_nat(nat).to_nat() - nat).abs() < 1e-12);
    }

    #[test]
    fn paper_cost_of_tree_matches_manual() {
        let net = fig4_network();
        let t = tree_b(&net);
        let pc = PaperCost::of_tree(&net, &t);
        assert!((pc.to_nat() - tree_cost(&net, &t)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not present in the network")]
    fn tree_cost_panics_on_foreign_edge() {
        let net = fig4_network();
        // Tree uses edge (1,4) which is not in the network.
        let edges = [(n(4), n(0)), (n(5), n(0)), (n(2), n(4)), (n(3), n(4)), (n(1), n(4))];
        let t = AggregationTree::from_edges(n(0), 6, &edges).unwrap();
        tree_cost(&net, &t);
    }
}

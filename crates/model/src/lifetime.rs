//! Node and network lifetime (Eq. 1) and the lifetime↔degree-bound
//! conversions used by the LP formulation.

use crate::energy::EnergyModel;
use crate::graph::Network;
use crate::id::NodeId;
use crate::tree::AggregationTree;

/// Lifetime of a node with initial energy `initial` joules and `children`
/// children in the aggregation tree (Eq. 1):
///
/// `L(v) = I(v) / (Tx + Rx · Ch_T(v))`,
///
/// expressed in aggregation rounds.
#[inline]
pub fn node_lifetime(initial: f64, model: &EnergyModel, children: usize) -> f64 {
    initial / model.round_energy(children)
}

/// Network lifetime: rounds until the first node depletes its energy,
/// `L = min_v L(v)` over **all** nodes including the sink (the paper's DFL
/// sink is battery-powered like every other node).
pub fn network_lifetime(net: &Network, tree: &AggregationTree, model: &EnergyModel) -> f64 {
    (0..net.n())
        .map(|i| {
            let v = NodeId::new(i);
            node_lifetime(net.initial_energy(v), model, tree.num_children(v))
        })
        .fold(f64::INFINITY, f64::min)
}

/// The node that limits the network lifetime (the bottleneck), together
/// with its lifetime.
pub fn bottleneck(net: &Network, tree: &AggregationTree, model: &EnergyModel) -> (NodeId, f64) {
    let mut best = (NodeId::SINK, f64::INFINITY);
    for i in 0..net.n() {
        let v = NodeId::new(i);
        let l = node_lifetime(net.initial_energy(v), model, tree.num_children(v));
        if l < best.1 {
            best = (v, l);
        }
    }
    best
}

/// Maximum number of children node `v` may have while keeping
/// `L(v) ≥ bound`: `Ch ≤ (I(v)/bound − Tx) / Rx`.
///
/// May be negative, meaning `v` cannot even afford its own transmission at
/// that lifetime — the instance is infeasible for `v`.
#[inline]
pub fn children_bound(initial: f64, model: &EnergyModel, bound: f64) -> f64 {
    (initial / bound - model.tx) / model.rx
}

/// Fractional degree cap used in the LP constraint (Eq. 15): for a non-root
/// node one tree edge goes to the parent, so `x(δ(v)) ≤ 1 + children_bound`;
/// the root has no parent edge.
#[inline]
pub fn degree_cap(initial: f64, model: &EnergyModel, bound: f64, is_root: bool) -> f64 {
    children_bound(initial, model, bound) + if is_root { 0.0 } else { 1.0 }
}

/// The lifetime bound pair `(LC, L')` of Algorithm 1.
///
/// `L'` (line 3) tightens `LC` so that the iterative relaxation's additive
/// slack of two children (Theorem 2's token argument grants
/// `2·I(v)/I_min ≥ 2`) still lands the final tree at `L(T) ≥ LC`:
/// `L' = I_min·LC / (I_min − 2·Rx·LC)`, i.e. `1/L' = 1/LC − 2·Rx/I_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeBound {
    /// The user-requested bound `LC` (rounds).
    pub lc: f64,
    /// The tightened bound `L'` used inside the LP.
    pub l_prime: f64,
}

/// Computes the tightened bound of Algorithm 1 line 3.
///
/// Returns `None` when `I_min ≤ 2·Rx·LC`: the requested lifetime is so large
/// that the tightening denominator is non-positive, and the instance must be
/// reported infeasible under the algorithm's guarantee.
pub fn tightened_bound(i_min: f64, model: &EnergyModel, lc: f64) -> Option<LifetimeBound> {
    let denom = i_min - 2.0 * model.rx * lc;
    if !(lc.is_finite() && lc > 0.0) || denom <= 0.0 {
        return None;
    }
    Some(LifetimeBound { lc, l_prime: i_min * lc / denom })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    fn star3() -> (Network, AggregationTree) {
        // 0 is the hub of a 4-node star.
        let mut b = NetworkBuilder::new(4);
        for i in 1..4 {
            b.add_edge(0, i, 1.0).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (1..4).map(|i| (NodeId::new(0), NodeId::new(i))).collect();
        let tree = AggregationTree::from_edges(NodeId::new(0), 4, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn eq1_matches_hand_computation() {
        let m = EnergyModel::PAPER;
        // 3000 / (1.6e-4 + 2 * 1.2e-4) = 3000 / 4.0e-4 = 7.5e6
        let l = node_lifetime(3000.0, &m, 2);
        assert!((l - 7.5e6).abs() < 1.0);
    }

    #[test]
    fn network_lifetime_is_min_over_nodes() {
        let (net, tree) = star3();
        let m = EnergyModel::PAPER;
        let l = network_lifetime(&net, &tree, &m);
        // hub has 3 children: 3000 / (1.6e-4 + 3*1.2e-4) = 3000/5.2e-4
        assert!((l - 3000.0 / 5.2e-4).abs() < 1.0);
        let (b, lb) = bottleneck(&net, &tree, &m);
        assert_eq!(b, NodeId::new(0));
        assert!((lb - l).abs() < 1e-9);
    }

    #[test]
    fn children_bound_inverts_lifetime() {
        let m = EnergyModel::PAPER;
        for ch in 0..6 {
            let l = node_lifetime(3000.0, &m, ch);
            let cb = children_bound(3000.0, &m, l);
            assert!((cb - ch as f64).abs() < 1e-6, "children {ch}: bound {cb}");
        }
    }

    #[test]
    fn children_bound_negative_when_infeasible() {
        let m = EnergyModel::PAPER;
        // Lifetime larger than I/Tx is impossible even as a leaf.
        let too_long = 3000.0 / m.tx * 2.0;
        assert!(children_bound(3000.0, &m, too_long) < 0.0);
    }

    #[test]
    fn degree_cap_accounts_for_parent_edge() {
        let m = EnergyModel::PAPER;
        let l = node_lifetime(3000.0, &m, 2);
        assert!((degree_cap(3000.0, &m, l, false) - 3.0).abs() < 1e-6);
        assert!((degree_cap(3000.0, &m, l, true) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn tightened_bound_formula() {
        let m = EnergyModel::PAPER;
        let lc = 1.0e6;
        let b = tightened_bound(3000.0, &m, lc).unwrap();
        let expect = 3000.0 * lc / (3000.0 - 2.0 * m.rx * lc);
        assert!((b.l_prime - expect).abs() < 1e-3);
        assert!(b.l_prime > lc, "L' must tighten (exceed) LC");
        // 1/L' = 1/LC − 2Rx/I_min
        assert!((1.0 / b.l_prime - (1.0 / lc - 2.0 * m.rx / 3000.0)).abs() < 1e-15);
    }

    #[test]
    fn tightened_bound_rejects_impossible_lc() {
        let m = EnergyModel::PAPER;
        // Denominator zero or negative.
        let lc = 3000.0 / (2.0 * m.rx);
        assert!(tightened_bound(3000.0, &m, lc).is_none());
        assert!(tightened_bound(3000.0, &m, lc * 2.0).is_none());
        assert!(tightened_bound(3000.0, &m, -5.0).is_none());
        assert!(tightened_bound(3000.0, &m, f64::NAN).is_none());
    }

    #[test]
    fn l_prime_slack_is_two_children_at_imin() {
        // For the node with I(v) = I_min, the LC children bound minus the
        // L' children bound is exactly 2 (the token-argument slack).
        let m = EnergyModel::PAPER;
        let lc = 2.0e6;
        let b = tightened_bound(3000.0, &m, lc).unwrap();
        let at_lc = children_bound(3000.0, &m, lc);
        let at_lp = children_bound(3000.0, &m, b.l_prime);
        assert!((at_lc - at_lp - 2.0).abs() < 1e-6);
    }
}

//! The undirected network graph `G = (V, E)` with per-node initial energy.

use crate::error::ModelError;
use crate::id::NodeId;
use crate::link::{Link, Prr};
use serde::{Deserialize, Serialize};

/// Index of an edge within a [`Network`]'s edge list.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Dense index into the edge list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An MRLC network instance: connected undirected graph, per-link PRR, and
/// per-node initial energy `I(v)` in joules.
///
/// The structure is immutable except for link qualities, which the
/// distributed-protocol experiments mutate over time (`set_prr`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    n: usize,
    links: Vec<Link>,
    /// `adj[v]` lists `(edge, neighbor)` pairs for node `v`.
    adj: Vec<Vec<(EdgeId, NodeId)>>,
    /// Initial energy `I(v)` in joules.
    energy: Vec<f64>,
}

impl Network {
    /// Number of nodes (`|V|`, including the sink).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected links.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.links.len()
    }

    /// All links in edge-id order.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, e: EdgeId) -> &Link {
        &self.links[e.index()]
    }

    /// Iterator over `(EdgeId, &Link)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (EdgeId(i as u32), l))
    }

    /// Neighbors of `v` as `(edge, neighbor)` pairs.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[v.index()]
    }

    /// Degree of `v` in the full graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Finds the edge between `a` and `b`, if present.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        let (scan, target) = if self.degree(a) <= self.degree(b) { (a, b) } else { (b, a) };
        self.adj[scan.index()].iter().find(|(_, nb)| *nb == target).map(|(e, _)| *e)
    }

    /// Initial energy `I(v)` in joules.
    #[inline]
    pub fn initial_energy(&self, v: NodeId) -> f64 {
        self.energy[v.index()]
    }

    /// The minimum initial energy `I_min` over all nodes (Alg. 1 line 2).
    pub fn min_initial_energy(&self) -> f64 {
        self.energy.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Replaces the PRR of one link (used by the link-dynamics experiments).
    pub fn set_prr(&mut self, e: EdgeId, prr: Prr) {
        let link = self.links[e.index()].with_prr(prr);
        self.links[e.index()] = link;
    }

    /// Returns a new network containing only links accepted by `keep`.
    ///
    /// Fails with [`ModelError::Disconnected`] if the filtered graph no
    /// longer spans all nodes (the paper's AAML evaluation filters out links
    /// with `q < 0.95` and assumes the remainder stays connected).
    pub fn restrict_edges(
        &self,
        mut keep: impl FnMut(&Link) -> bool,
    ) -> Result<Network, ModelError> {
        let mut b = NetworkBuilder::new(self.n);
        for (v, &e) in self.energy.iter().enumerate() {
            b.set_energy(NodeId::new(v), e)?;
        }
        for l in &self.links {
            if keep(l) {
                b.add_link(*l)?;
            }
        }
        b.build()
    }

    /// True if the subgraph induced by the given edge ids spans all nodes.
    pub fn edges_span(&self, edges: &[EdgeId]) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut components = self.n;
        for &e in edges {
            let (u, v) = self.link(e).endpoints();
            let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
            if ru != rv {
                parent[ru] = rv;
                components -= 1;
            }
        }
        components == 1
    }
}

/// Incremental builder validating node ranges, self-loops, duplicate edges,
/// energies, and final connectivity.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    n: usize,
    links: Vec<Link>,
    energy: Vec<f64>,
    seen: std::collections::HashSet<(NodeId, NodeId)>,
}

impl NetworkBuilder {
    /// Starts a builder for a network of `n` nodes, each with the paper's
    /// default initial energy of 3000 J (two AA batteries).
    pub fn new(n: usize) -> Self {
        NetworkBuilder {
            n,
            links: Vec::new(),
            energy: vec![crate::energy::DEFAULT_INITIAL_ENERGY_J; n],
            seen: std::collections::HashSet::new(),
        }
    }

    /// Sets the initial energy of one node.
    pub fn set_energy(&mut self, v: NodeId, joules: f64) -> Result<&mut Self, ModelError> {
        if v.index() >= self.n {
            return Err(ModelError::NodeOutOfRange { node: v, n: self.n });
        }
        if !(joules.is_finite() && joules > 0.0) {
            return Err(ModelError::InvalidEnergy(joules));
        }
        self.energy[v.index()] = joules;
        Ok(self)
    }

    /// Sets the initial energy of every node.
    pub fn set_uniform_energy(&mut self, joules: f64) -> Result<&mut Self, ModelError> {
        if !(joules.is_finite() && joules > 0.0) {
            return Err(ModelError::InvalidEnergy(joules));
        }
        self.energy.fill(joules);
        Ok(self)
    }

    /// Adds an undirected link.
    pub fn add_link(&mut self, link: Link) -> Result<&mut Self, ModelError> {
        let (u, v) = link.endpoints();
        if u.index() >= self.n || v.index() >= self.n {
            let node = if u.index() >= self.n { u } else { v };
            return Err(ModelError::NodeOutOfRange { node, n: self.n });
        }
        if !self.seen.insert((u, v)) {
            return Err(ModelError::DuplicateEdge(u, v));
        }
        self.links.push(link);
        Ok(self)
    }

    /// Convenience: adds an edge given raw endpoints and a PRR value.
    pub fn add_edge(&mut self, a: usize, b: usize, prr: f64) -> Result<&mut Self, ModelError> {
        let link = Link::new(NodeId::new(a), NodeId::new(b), Prr::new(prr)?)?;
        self.add_link(link)
    }

    /// Finalizes the network, checking connectivity from node 0.
    pub fn build(self) -> Result<Network, ModelError> {
        if self.n == 0 {
            return Err(ModelError::Empty);
        }
        let mut adj: Vec<Vec<(EdgeId, NodeId)>> = vec![Vec::new(); self.n];
        for (i, l) in self.links.iter().enumerate() {
            let e = EdgeId(i as u32);
            adj[l.u().index()].push((e, l.v()));
            adj[l.v().index()].push((e, l.u()));
        }
        // BFS connectivity check from node 0.
        let mut visited = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        visited[0] = true;
        queue.push_back(0usize);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            for &(_, nb) in &adj[u] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    reached += 1;
                    queue.push_back(nb.index());
                }
            }
        }
        if reached != self.n {
            return Err(ModelError::Disconnected { component_of_root: reached, n: self.n });
        }
        Ok(Network { n: self.n, links: self.links, adj, energy: self.energy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Network {
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        b.add_edge(2, 3, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_connected_path() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        // nodes 2, 3 isolated from 0's component
        b.add_edge(2, 3, 0.9).unwrap();
        assert_eq!(b.build().unwrap_err(), ModelError::Disconnected { component_of_root: 2, n: 4 });
    }

    #[test]
    fn rejects_duplicates_even_reversed() {
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        assert!(matches!(b.add_edge(1, 0, 0.8), Err(ModelError::DuplicateEdge(_, _))));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = NetworkBuilder::new(2);
        assert!(matches!(b.add_edge(0, 5, 0.9), Err(ModelError::NodeOutOfRange { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(NetworkBuilder::new(0).build().unwrap_err(), ModelError::Empty);
    }

    #[test]
    fn find_edge_both_orders() {
        let g = path4();
        let e = g.find_edge(NodeId::new(2), NodeId::new(1)).unwrap();
        assert_eq!(g.link(e).endpoints(), (NodeId::new(1), NodeId::new(2)));
        assert!(g.find_edge(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn energy_defaults_and_overrides() {
        let mut b = NetworkBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        b.set_energy(NodeId::new(1), 1500.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.initial_energy(NodeId::new(0)), crate::energy::DEFAULT_INITIAL_ENERGY_J);
        assert_eq!(g.initial_energy(NodeId::new(1)), 1500.0);
        assert_eq!(g.min_initial_energy(), 1500.0);
    }

    #[test]
    fn invalid_energy_rejected() {
        let mut b = NetworkBuilder::new(2);
        assert!(b.set_energy(NodeId::new(0), 0.0).is_err());
        assert!(b.set_energy(NodeId::new(0), f64::NAN).is_err());
        assert!(b.set_uniform_energy(-1.0).is_err());
    }

    #[test]
    fn set_prr_updates_link() {
        let mut g = path4();
        let e = g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.set_prr(e, Prr::new(0.5).unwrap());
        assert!((g.link(e).prr().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn restrict_edges_keeps_connectivity_or_fails() {
        let g = path4();
        // Dropping the middle edge disconnects the path.
        assert!(g.restrict_edges(|l| l.prr().value() != 0.8).is_err());
        // Keeping everything succeeds and preserves energies.
        let g2 = g.restrict_edges(|_| true).unwrap();
        assert_eq!(g2.num_edges(), 3);
    }

    #[test]
    fn edges_span_detects_spanning_subsets() {
        let g = path4();
        let all: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
        assert!(g.edges_span(&all));
        assert!(!g.edges_span(&all[..2]));
    }

    #[test]
    fn serde_roundtrip() {
        let g = path4();
        let json = serde_json_like(&g);
        assert!(json.contains("links"));
    }

    // serde_json is not a workspace dependency; a smoke check that the type
    // serializes through any serde serializer is done via the derive itself
    // (compile-time) plus this shape probe using Debug formatting.
    fn serde_json_like(g: &Network) -> String {
        format!("{g:?}").to_lowercase()
    }
}

//! Wireless links and packet reception ratios.

use crate::error::ModelError;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated packet reception ratio (PRR) in `[0, 1]`.
///
/// The PRR is the paper's link-quality metric (Eq. 2): the fraction of
/// transmitted packets that are received correctly, `q_e = N_r / N_s`.
/// Values are guaranteed finite and within `[0, 1]` by construction.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Prr(f64);

impl Prr {
    /// A perfectly reliable link.
    pub const PERFECT: Prr = Prr(1.0);

    /// Creates a PRR, validating the range.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Prr(value))
        } else {
            Err(ModelError::InvalidPrr(value))
        }
    }

    /// Creates a PRR, clamping out-of-range finite values into `[0, 1]`.
    ///
    /// Useful for empirical estimates perturbed by noise. Non-finite input
    /// still fails.
    pub fn clamped(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() {
            Ok(Prr(value.clamp(0.0, 1.0)))
        } else {
            Err(ModelError::InvalidPrr(value))
        }
    }

    /// The ratio as a plain `f64` in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Natural-log link cost `c_e = −ln q_e` (Eq. 9, `log ETX`).
    ///
    /// A zero PRR yields `+∞`, which correctly makes the link unusable for
    /// any finite-cost tree.
    #[inline]
    pub fn cost(self) -> f64 {
        -self.0.ln()
    }

    /// Expected number of transmissions until success without ACKs
    /// (`ETX = 1/q`, Eq. 9). Zero PRR yields `+∞`.
    #[inline]
    pub fn etx(self) -> f64 {
        1.0 / self.0
    }

    /// Multiplies this PRR by a degradation factor, saturating at 0.
    #[must_use]
    pub fn degraded(self, factor: f64) -> Prr {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Prr((self.0 * factor).clamp(0.0, 1.0))
    }
}

impl TryFrom<f64> for Prr {
    type Error = ModelError;
    fn try_from(v: f64) -> Result<Self, Self::Error> {
        Prr::new(v)
    }
}

impl From<Prr> for f64 {
    fn from(p: Prr) -> f64 {
        p.0
    }
}

impl fmt::Debug for Prr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prr({:.4})", self.0)
    }
}

impl fmt::Display for Prr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// An undirected wireless link between two distinct nodes with its PRR.
///
/// Links are stored with `u < v` (normalized) so that an undirected edge has
/// a single canonical representation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    u: NodeId,
    v: NodeId,
    prr: Prr,
}

impl Link {
    /// Creates a link, normalizing the endpoint order and rejecting loops.
    pub fn new(a: NodeId, b: NodeId, prr: Prr) -> Result<Self, ModelError> {
        if a == b {
            return Err(ModelError::SelfLoop(a));
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Ok(Link { u, v, prr })
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// Both endpoints `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// This link's packet reception ratio.
    #[inline]
    pub fn prr(&self) -> Prr {
        self.prr
    }

    /// Natural-log cost of the link.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.prr.cost()
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this link.
    #[inline]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!("node {node} is not an endpoint of link ({}, {})", self.u, self.v)
        }
    }

    /// True if `node` is one of the endpoints.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.u || node == self.v
    }

    /// Returns a copy of the link with a different PRR.
    #[must_use]
    pub fn with_prr(&self, prr: Prr) -> Link {
        Link { prr, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prr_validation() {
        assert!(Prr::new(0.0).is_ok());
        assert!(Prr::new(1.0).is_ok());
        assert!(Prr::new(0.5).is_ok());
        assert!(Prr::new(-0.1).is_err());
        assert!(Prr::new(1.1).is_err());
        assert!(Prr::new(f64::NAN).is_err());
        assert!(Prr::new(f64::INFINITY).is_err());
    }

    #[test]
    fn prr_clamping() {
        assert_eq!(Prr::clamped(1.3).unwrap().value(), 1.0);
        assert_eq!(Prr::clamped(-0.2).unwrap().value(), 0.0);
        assert!(Prr::clamped(f64::NAN).is_err());
    }

    #[test]
    fn cost_is_negative_log() {
        let p = Prr::new(0.5).unwrap();
        assert!((p.cost() - 0.5f64.ln().abs()).abs() < 1e-12);
        assert_eq!(Prr::PERFECT.cost(), 0.0);
        assert!(Prr::new(0.0).unwrap().cost().is_infinite());
    }

    #[test]
    fn etx_is_reciprocal() {
        assert!((Prr::new(0.25).unwrap().etx() - 4.0).abs() < 1e-12);
        assert!(Prr::new(0.0).unwrap().etx().is_infinite());
    }

    #[test]
    fn degradation_saturates() {
        let p = Prr::new(0.9).unwrap();
        assert!((p.degraded(0.5).value() - 0.45).abs() < 1e-12);
        assert_eq!(p.degraded(0.0).value(), 0.0);
        assert_eq!(p.degraded(2.0).value(), 1.0);
    }

    #[test]
    fn link_normalizes_endpoints() {
        let l = Link::new(n(5), n(2), Prr::PERFECT).unwrap();
        assert_eq!(l.endpoints(), (n(2), n(5)));
        assert_eq!(l.other(n(2)), n(5));
        assert_eq!(l.other(n(5)), n(2));
        assert!(l.touches(n(2)) && l.touches(n(5)) && !l.touches(n(3)));
    }

    #[test]
    fn link_rejects_self_loop() {
        assert_eq!(Link::new(n(3), n(3), Prr::PERFECT).unwrap_err(), ModelError::SelfLoop(n(3)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_foreign_node() {
        let l = Link::new(n(0), n(1), Prr::PERFECT).unwrap();
        l.other(n(2));
    }

    #[test]
    fn with_prr_replaces_quality_only() {
        let l = Link::new(n(0), n(1), Prr::new(0.9).unwrap()).unwrap();
        let l2 = l.with_prr(Prr::new(0.4).unwrap());
        assert_eq!(l2.endpoints(), l.endpoints());
        assert!((l2.prr().value() - 0.4).abs() < 1e-12);
    }
}

//! Rooted data-aggregation trees.

use crate::error::ModelError;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// A spanning tree of the network rooted at the sink.
///
/// Every non-root node knows its parent (the next hop toward the sink); the
/// children lists are kept in sync so that both directions of traversal are
/// cheap. `Ch_T(v)` — the number of children, which drives Eq. 1's lifetime —
/// is `children(v).len()`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AggregationTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl AggregationTree {
    /// Builds a tree from a parent assignment.
    ///
    /// `parents[v]` must be `None` exactly for `v == root`, and following
    /// parents from any node must reach the root (no cycles, no forests).
    pub fn from_parents(root: NodeId, parents: Vec<Option<NodeId>>) -> Result<Self, ModelError> {
        let n = parents.len();
        if n == 0 {
            return Err(ModelError::Empty);
        }
        if root.index() >= n {
            return Err(ModelError::NodeOutOfRange { node: root, n });
        }
        if parents[root.index()].is_some() {
            return Err(ModelError::NotATree(format!("root {root} has a parent")));
        }
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            match p {
                None if i != root.index() => {
                    return Err(ModelError::NotATree(format!("non-root node {i} has no parent")));
                }
                None => {}
                Some(p) => {
                    if p.index() >= n {
                        return Err(ModelError::NodeOutOfRange { node: *p, n });
                    }
                    if p.index() == i {
                        return Err(ModelError::SelfLoop(NodeId::new(i)));
                    }
                    children[p.index()].push(NodeId::new(i));
                }
            }
        }
        let tree = AggregationTree { root, parent: parents, children };
        // Reachability check: every node must reach the root.
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        visited[root.index()] = true;
        order.push(root);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &c in &tree.children[u.index()] {
                if visited[c.index()] {
                    return Err(ModelError::NotATree(format!("node {c} visited twice")));
                }
                visited[c.index()] = true;
                order.push(c);
            }
        }
        if order.len() != n {
            return Err(ModelError::NotATree(format!(
                "only {} of {} nodes reachable from root",
                order.len(),
                n
            )));
        }
        Ok(tree)
    }

    /// Builds a tree from an undirected edge list by orienting edges away
    /// from `root` (BFS). The edge list must contain exactly `n − 1` edges
    /// that connect all `n` nodes.
    pub fn from_edges(
        root: NodeId,
        n: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(ModelError::NotATree(format!(
                "{} edges given, a spanning tree of {n} nodes has {}",
                edges.len(),
                n - 1
            )));
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a.index() >= n {
                return Err(ModelError::NodeOutOfRange { node: a, n });
            }
            if b.index() >= n {
                return Err(ModelError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(ModelError::SelfLoop(a));
            }
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parents[v.index()] = Some(u);
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        if reached != n {
            return Err(ModelError::NotATree(format!(
                "edge list connects only {reached} of {n} nodes (cycle elsewhere)"
            )));
        }
        Self::from_parents(root, parents)
    }

    /// The root (sink).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v` (aggregation sources for `v`).
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// `Ch_T(v)`: the number of children of `v` (Eq. 1).
    #[inline]
    pub fn num_children(&self, v: NodeId) -> usize {
        self.children[v.index()].len()
    }

    /// Tree degree of `v` (children plus the parent edge, if any).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.num_children(v) + usize::from(self.parent[v.index()].is_some())
    }

    /// True if `v` is a leaf (no children). The root of a 1-node tree is a
    /// leaf too.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// Iterator over the `n − 1` tree edges as `(child, parent)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent.iter().enumerate().filter_map(|(i, p)| p.map(|p| (NodeId::new(i), p)))
    }

    /// True if `{a, b}` is a tree edge (in either orientation).
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.parent[a.index()] == Some(b) || self.parent[b.index()] == Some(a)
    }

    /// Nodes in BFS order from the root (parents before children).
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n());
        order.push(self.root);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            order.extend_from_slice(&self.children[u.index()]);
        }
        order
    }

    /// Nodes in post-order (children before parents) — the order in which a
    /// data-aggregation round proceeds.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = self.bfs_order();
        order.reverse();
        order
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            d += 1;
            cur = p;
        }
        d
    }

    /// All nodes in the subtree rooted at `v`, including `v`.
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = vec![v];
        let mut head = 0;
        while head < out.len() {
            let u = out[head];
            head += 1;
            out.extend_from_slice(&self.children[u.index()]);
        }
        out
    }

    /// True if `node` lies in the subtree rooted at `ancestor`.
    pub fn in_subtree(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut cur = node;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.parent[cur.index()] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Moves `child` under `new_parent`, preserving the tree property.
    ///
    /// This is the primitive behind both AAML's bottleneck relief and the
    /// distributed protocol's parent change. Fails if `child` is the root or
    /// if `new_parent` lies inside `child`'s subtree (which would create a
    /// cycle).
    pub fn reattach(&mut self, child: NodeId, new_parent: NodeId) -> Result<(), ModelError> {
        let Some(old_parent) = self.parent[child.index()] else {
            return Err(ModelError::NotATree(format!("cannot reattach the root {child}")));
        };
        if new_parent == child {
            return Err(ModelError::SelfLoop(child));
        }
        if self.in_subtree(new_parent, child) {
            return Err(ModelError::NotATree(format!(
                "new parent {new_parent} is inside the subtree of {child}"
            )));
        }
        if old_parent == new_parent {
            return Ok(());
        }
        let siblings = &mut self.children[old_parent.index()];
        let pos = siblings
            .iter()
            .position(|&c| c == child)
            .expect("child missing from its parent's list");
        siblings.swap_remove(pos);
        self.children[new_parent.index()].push(child);
        self.parent[child.index()] = Some(new_parent);
        Ok(())
    }

    /// Total number of packet transmissions in one fully successful
    /// aggregation round: each non-root node sends exactly once.
    #[inline]
    pub fn transmissions_per_round(&self) -> usize {
        self.n() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The paper's Fig. 5(a) tree:
    /// 0—7, 0—4, 0—8, 4—3, 4—2, 2—6, 8—5, 8—1.
    pub(crate) fn fig5_tree() -> AggregationTree {
        let edges = [
            (n(0), n(7)),
            (n(0), n(4)),
            (n(0), n(8)),
            (n(4), n(3)),
            (n(4), n(2)),
            (n(2), n(6)),
            (n(8), n(5)),
            (n(8), n(1)),
        ];
        AggregationTree::from_edges(n(0), 9, &edges).unwrap()
    }

    #[test]
    fn fig5_structure() {
        let t = fig5_tree();
        assert_eq!(t.num_children(n(0)), 3);
        assert_eq!(t.num_children(n(4)), 2);
        assert_eq!(t.num_children(n(8)), 2);
        assert_eq!(t.num_children(n(2)), 1);
        for leaf in [1, 3, 5, 6, 7] {
            assert!(t.is_leaf(n(leaf)), "node {leaf} should be a leaf");
        }
        assert_eq!(t.parent(n(6)), Some(n(2)));
        assert_eq!(t.parent(n(0)), None);
    }

    #[test]
    fn from_parents_rejects_cycles() {
        // 0 <- 1 <- 2 <- 1 is impossible via parents, but 1 <-> 2 cycle with
        // root 0 unreached by them:
        let parents = vec![None, Some(n(2)), Some(n(1))];
        assert!(matches!(
            AggregationTree::from_parents(n(0), parents),
            Err(ModelError::NotATree(_))
        ));
    }

    #[test]
    fn from_parents_rejects_parented_root() {
        let parents = vec![Some(n(1)), None];
        assert!(AggregationTree::from_parents(n(0), parents).is_err());
    }

    #[test]
    fn from_parents_rejects_orphans() {
        let parents = vec![None, None];
        assert!(AggregationTree::from_parents(n(0), parents).is_err());
    }

    #[test]
    fn from_edges_rejects_wrong_count() {
        assert!(AggregationTree::from_edges(n(0), 3, &[(n(0), n(1))]).is_err());
    }

    #[test]
    fn from_edges_rejects_cycle_plus_isolated() {
        // Triangle on {0,1,2} plus isolated 3: 3 edges for n=4 but cyclic.
        let edges = [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))];
        assert!(AggregationTree::from_edges(n(0), 4, &edges).is_err());
    }

    #[test]
    fn traversal_orders() {
        let t = fig5_tree();
        let bfs = t.bfs_order();
        assert_eq!(bfs[0], n(0));
        assert_eq!(bfs.len(), 9);
        let post = t.post_order();
        assert_eq!(*post.last().unwrap(), n(0));
        // children appear before parents in post-order
        let pos = |v: NodeId| post.iter().position(|&x| x == v).unwrap();
        assert!(pos(n(6)) < pos(n(2)));
        assert!(pos(n(2)) < pos(n(4)));
        assert!(pos(n(4)) < pos(n(0)));
    }

    #[test]
    fn depth_and_subtree() {
        let t = fig5_tree();
        assert_eq!(t.depth(n(0)), 0);
        assert_eq!(t.depth(n(6)), 3);
        let mut sub = t.subtree(n(4));
        sub.sort();
        assert_eq!(sub, vec![n(2), n(3), n(4), n(6)]);
        assert!(t.in_subtree(n(6), n(4)));
        assert!(!t.in_subtree(n(5), n(4)));
    }

    #[test]
    fn reattach_moves_child() {
        let mut t = fig5_tree();
        t.reattach(n(6), n(8)).unwrap();
        assert_eq!(t.parent(n(6)), Some(n(8)));
        assert_eq!(t.num_children(n(2)), 0);
        assert_eq!(t.num_children(n(8)), 3);
        // Still a valid tree: rebuild from parents must succeed.
        let parents = (0..9).map(|i| t.parent(n(i))).collect();
        AggregationTree::from_parents(n(0), parents).unwrap();
    }

    #[test]
    fn reattach_rejects_cycle() {
        let mut t = fig5_tree();
        // 4's subtree contains 6; moving 4 under 6 would loop.
        assert!(t.reattach(n(4), n(6)).is_err());
        // Root can't be reattached.
        assert!(t.reattach(n(0), n(4)).is_err());
        // Self-parenting rejected.
        assert!(t.reattach(n(4), n(4)).is_err());
    }

    #[test]
    fn reattach_same_parent_is_noop() {
        let mut t = fig5_tree();
        t.reattach(n(6), n(2)).unwrap();
        assert_eq!(t.parent(n(6)), Some(n(2)));
        assert_eq!(t.num_children(n(2)), 1);
    }

    #[test]
    fn edges_and_contains() {
        let t = fig5_tree();
        assert_eq!(t.edges().count(), 8);
        assert!(t.contains_edge(n(2), n(6)));
        assert!(t.contains_edge(n(6), n(2)));
        assert!(!t.contains_edge(n(6), n(8)));
        assert_eq!(t.transmissions_per_round(), 8);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_tree() -> impl Strategy<Value = AggregationTree> {
            (2usize..24).prop_flat_map(|nn| {
                let parents: Vec<BoxedStrategy<usize>> = (1..nn).map(|i| (0..i).boxed()).collect();
                parents.prop_map(move |ps| {
                    let mut parents: Vec<Option<NodeId>> = vec![None];
                    parents.extend(ps.into_iter().map(|p| Some(NodeId::new(p))));
                    AggregationTree::from_parents(NodeId::SINK, parents).unwrap()
                })
            })
        }

        proptest! {
            #[test]
            fn random_reattach_sequences_preserve_the_tree(
                tree in arb_tree(),
                moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..20),
            ) {
                let mut t = tree;
                let nn = t.n();
                for (a, b) in moves {
                    let child = NodeId::new(1 + (a as usize) % (nn - 1));
                    let parent = NodeId::new((b as usize) % nn);
                    let _ = t.reattach(child, parent); // invalid moves must be rejected…
                    // …and after every attempt the structure stays a tree.
                    let parents: Vec<Option<NodeId>> =
                        (0..nn).map(|i| t.parent(NodeId::new(i))).collect();
                    let rebuilt = AggregationTree::from_parents(NodeId::SINK, parents);
                    prop_assert!(rebuilt.is_ok(), "tree invariant broken");
                    prop_assert_eq!(t.edges().count(), nn - 1);
                }
            }

            #[test]
            fn traversals_cover_every_node_exactly_once(tree in arb_tree()) {
                let nn = tree.n();
                for order in [tree.bfs_order(), tree.post_order()] {
                    let mut seen = vec![false; nn];
                    for v in &order {
                        prop_assert!(!seen[v.index()], "duplicate in traversal");
                        seen[v.index()] = true;
                    }
                    prop_assert!(seen.iter().all(|&s| s));
                }
            }

            #[test]
            fn subtree_sizes_sum_like_a_tree(tree in arb_tree()) {
                // Σ_v |subtree(v)| = Σ_v (depth(v) + 1).
                let nn = tree.n();
                let total_sub: usize =
                    (0..nn).map(|i| tree.subtree(NodeId::new(i)).len()).sum();
                let total_depth: usize =
                    (0..nn).map(|i| tree.depth(NodeId::new(i)) + 1).sum();
                prop_assert_eq!(total_sub, total_depth);
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = AggregationTree::from_parents(n(0), vec![None]).unwrap();
        assert!(t.is_leaf(n(0)));
        assert_eq!(t.edges().count(), 0);
        assert_eq!(t.transmissions_per_round(), 0);
    }
}

//! The LP of Eqs. 11–15 with lazily generated subtour constraints.
//!
//! `CutLp` owns the active edge set and the per-node fractional degree caps
//! (`x(δ(v)) ≤ β_v`, the LP image of the lifetime constraints of Eq. 15)
//! and repeatedly solves a relaxation with the extreme-point simplex,
//! adding violated subtour constraints from the min-cut oracle until the
//! point is feasible for the full polytope. Extreme-point status is
//! preserved: a basic solution of the relaxation that satisfies every
//! dropped constraint is a basic solution of the full system.
//!
//! # Warm starts
//!
//! By default the solver keeps **one persistent [`IncrementalLp`]** alive
//! across cut rounds *and* across `solve` calls. Each cut round appends
//! its subtour rows to the standing tableau and repairs with a few dual
//! pivots; each IRA iteration (same node set, shrunken edge/cap sets)
//! fixes dropped edges to zero via bound tightening and relaxes dropped
//! caps to a vacuous right-hand side — no rebuild, no phase 1. Whenever a
//! `solve` call is *not* a shrink of the previous one (new edges, new or
//! changed caps, different `n`) the state is rebuilt transparently, so
//! callers need no protocol. [`CutLp::new_cold`] restores the old
//! rebuild-every-round behavior for comparison benchmarks; both paths
//! produce optimal extreme points of the same polytope.
//!
//! # The cut-pool separation engine
//!
//! Each cut round runs through a [`CutPool`] + [`SeedOracle`] pipeline
//! (DESIGN.md §10). The pool parks every set the oracle ever separated;
//! a round first *screens* the pool's inactive side against the current
//! point — one dot product per cut, no maxflow — and re-activates the
//! top-K most-violated, non-nested members. Only when the pool is clean
//! does the expensive seeded-min-cut oracle run; its cuts are deepened by
//! violation-maximizing local search ([`separation::strengthen`]) and its
//! surplus findings are parked rather than discarded. The pool and the oracle's reusable
//! scratch networks survive IRA shrink steps and constraint drops
//! (subtour cuts stay valid on any edge subset). The pre-engine loop —
//! one cut per round, no pool, no seed pruning — stays available behind
//! [`SeparationConfig::single_cut`] for A/B benchmarks; both strategies
//! terminate at an optimum of the same polytope.

use crate::cutpool::{select_batch, CutPool};
use crate::separation::{
    self, CutStrategy, FracEdge, SeedOracle, SepCounters, SeparationConfig, ViolatedSet,
    PARALLEL_SEP_THRESHOLD,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;
use wsn_lp::{FaultKind, IncrementalLp, LpProblem, LpStatus, Relation, RowId, SolveCtx, VarId};
use wsn_obs::{Counter, Histogram};

/// Safety valve on cutting-plane rounds (each round adds ≥ 1 new set, and
/// distinct sets are finite, but numerics deserve a cap).
const MAX_CUT_ROUNDS: usize = 400;

/// Violation tolerance for separation.
const SEP_TOL: f64 = 1e-7;

/// One active edge of the LP.
#[derive(Clone, Copy, Debug)]
pub struct LpEdge {
    /// Endpoint (dense node index).
    pub u: usize,
    /// Endpoint (dense node index).
    pub v: usize,
    /// Edge cost `c_e = −ln q_e`.
    pub cost: f64,
    /// Caller tag (the network's `EdgeId` index).
    pub tag: usize,
}

/// Outcome of a cutting-plane solve.
#[derive(Clone, Debug)]
pub enum CutLpOutcome {
    /// An optimal extreme point of `LP(G, L', W)`.
    Optimal {
        /// `x_e` per active edge (same order as the input edge slice).
        x: Vec<f64>,
        /// Objective `Σ c_e x_e`.
        objective: f64,
    },
    /// The constraints admit no fractional spanning structure.
    Infeasible,
}

/// Errors from the LP layer.
#[derive(Clone, Debug, PartialEq)]
pub enum CutLpError {
    /// The inner simplex failed (iteration limit / invalid bounds).
    Lp(wsn_lp::LpError),
    /// Cutting-plane rounds exceeded the safety cap.
    CutRoundLimit,
    /// Separation returned only sets the LP already contains — numerical
    /// stall.
    StalledCut,
    /// The solve was stopped by its budget (deadline, pivot/round cap) or
    /// an explicit cancellation. The `CutLp` remains checkpointable: its
    /// pool and warm basis are intact and a later call resumes warm.
    Interrupted,
}

impl std::fmt::Display for CutLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CutLpError::Lp(e) => write!(f, "simplex failure: {e}"),
            CutLpError::CutRoundLimit => write!(f, "cutting-plane round limit exceeded"),
            CutLpError::StalledCut => write!(f, "cutting planes stalled on a repeated set"),
            CutLpError::Interrupted => {
                write!(f, "solve interrupted by budget or cancellation (state is resumable)")
            }
        }
    }
}

/// Maps LP-layer errors into cut-loop errors, folding the budget
/// interruption into [`CutLpError::Interrupted`].
fn lift(e: wsn_lp::LpError) -> CutLpError {
    match e {
        wsn_lp::LpError::Interrupted => CutLpError::Interrupted,
        other => CutLpError::Lp(other),
    }
}

impl std::error::Error for CutLpError {}

/// Persistent warm-start state: one live tableau spanning cut rounds and
/// IRA's shrinking re-solves.
#[derive(Clone, Debug)]
struct WarmState {
    lp: IncrementalLp,
    n: usize,
    /// Variable and endpoints per caller tag, in first-solve edge order.
    vars: BTreeMap<usize, (VarId, usize, usize)>,
    /// Tags whose variable is still free (upper bound 1).
    active: BTreeSet<usize>,
    /// Materialized degree-cap rows: node → (row, β, vacuous rhs).
    cap_rows: BTreeMap<usize, (RowId, f64, f64)>,
    /// Cap nodes still enforced (not yet relaxed to the vacuous rhs).
    active_caps: BTreeSet<usize>,
    /// How many of the pool's activated cuts have tableau rows.
    subtour_rows: usize,
}

/// Counter handles for one `CutLp`, backed by the metrics registry that was
/// ambient at construction (or a private detached one, so counter reads
/// always work — plain unit tests, parallel sweep workers). Registry
/// counters are cumulative across every solver sharing the registry, so
/// each handle snapshots its base value at construction and per-instance
/// statistics are reported as deltas.
#[derive(Clone, Debug)]
struct CutLpMetrics {
    lp_solves: Counter,
    cuts_added: Counter,
    pivots: Counter,
    cut_rounds: Counter,
    sep_ns: Counter,
    lp_ns: Counter,
    pool_hits: Counter,
    pool_scans: Counter,
    cuts_batched: Counter,
    seeds_pruned: Counter,
    /// Per-cut-round LP wall time (µs) — the hotspot profiler's view of
    /// how round cost distributes, not just its sum.
    round_lp_us: Histogram,
    /// Per-cut-round simplex pivot count.
    round_pivots: Histogram,
    base: [u64; 10],
}

/// Per-cut-round LP wall-time buckets (µs, up to 5 s then overflow).
const ROUND_LP_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Per-cut-round pivot-count buckets.
const ROUND_PIVOT_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

impl CutLpMetrics {
    fn from_registry(reg: &wsn_obs::Registry) -> Self {
        let lp_solves = reg.counter("ira.lp_solves");
        let cuts_added = reg.counter("ira.cuts_added");
        let pivots = reg.counter("ira.pivots");
        let cut_rounds = reg.counter("ira.cut_rounds");
        let sep_ns = reg.counter("ira.sep_ns");
        let lp_ns = reg.counter("ira.lp_ns");
        let pool_hits = reg.counter("sep.pool_hits");
        let pool_scans = reg.counter("sep.pool_scans");
        let cuts_batched = reg.counter("sep.cuts_batched");
        let seeds_pruned = reg.counter("sep.seeds_pruned");
        let round_lp_us = reg.histogram("ira.round_lp_us", ROUND_LP_US_BUCKETS);
        let round_pivots = reg.histogram("ira.round_pivots", ROUND_PIVOT_BUCKETS);
        let base = [
            lp_solves.get(),
            cuts_added.get(),
            pivots.get(),
            cut_rounds.get(),
            sep_ns.get(),
            lp_ns.get(),
            pool_hits.get(),
            pool_scans.get(),
            cuts_batched.get(),
            seeds_pruned.get(),
        ];
        CutLpMetrics {
            lp_solves,
            cuts_added,
            pivots,
            cut_rounds,
            sep_ns,
            lp_ns,
            pool_hits,
            pool_scans,
            cuts_batched,
            seeds_pruned,
            round_lp_us,
            round_pivots,
            base,
        }
    }
}

/// Cutting-plane state. The cut pool and the oracle's scratch networks
/// survive across IRA iterations (subtour cuts remain valid as
/// edges/constraints are removed), and in warm mode so does the simplex
/// basis itself.
#[derive(Clone, Debug)]
pub struct CutLp {
    pool: CutPool,
    sep: SeparationConfig,
    oracle: SeedOracle,
    counters: SepCounters,
    warm: bool,
    state: Option<WarmState>,
    metrics: CutLpMetrics,
    /// Budget/cancellation token (and fault injector). `None` — the
    /// default — leaves every hot path byte-identical to the unbudgeted
    /// engine.
    ctx: Option<Arc<SolveCtx>>,
}

impl Default for CutLp {
    fn default() -> Self {
        Self::new()
    }
}

impl CutLp {
    /// Creates an empty cutting-plane state with warm starts and the
    /// batched cut-pool engine enabled.
    pub fn new() -> Self {
        Self::with_config(true, SeparationConfig::default())
    }

    /// Creates a state that rebuilds the LP from scratch every round — the
    /// pre-warm-start behavior, kept for benchmarks and equivalence tests.
    pub fn new_cold() -> Self {
        Self::with_config(false, SeparationConfig::default())
    }

    /// Creates a state with explicit warm-start and separation settings.
    pub fn with_config(warm: bool, sep: SeparationConfig) -> Self {
        let obs = wsn_obs::current_or_detached();
        let reg = obs.registry();
        CutLp {
            pool: CutPool::new(),
            sep,
            oracle: SeedOracle::new(),
            counters: SepCounters::from_registry(reg),
            warm,
            state: None,
            metrics: CutLpMetrics::from_registry(reg),
            ctx: None,
        }
    }

    /// Installs (or clears) the budget/cancellation context, propagating
    /// it into the live warm tableau so a context set mid-sequence still
    /// governs every subsequent pivot.
    pub fn set_ctx(&mut self, ctx: Option<Arc<SolveCtx>>) {
        self.ctx = ctx.clone();
        if let Some(state) = &mut self.state {
            state.lp.set_ctx(ctx);
        }
    }

    /// The installed budget context, if any.
    pub fn ctx(&self) -> Option<&Arc<SolveCtx>> {
        self.ctx.as_ref()
    }

    /// Whether this instance reuses the simplex basis across solves.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// The separation settings this instance runs with.
    pub fn separation_config(&self) -> SeparationConfig {
        self.sep
    }

    /// LP solves performed by this instance.
    pub fn lp_solves(&self) -> usize {
        (self.metrics.lp_solves.get() - self.metrics.base[0]) as usize
    }

    /// Subtour cuts activated (given LP rows) by this instance.
    pub fn cuts_added(&self) -> usize {
        (self.metrics.cuts_added.get() - self.metrics.base[1]) as usize
    }

    /// Simplex pivots across this instance's solves.
    pub fn pivots(&self) -> usize {
        (self.metrics.pivots.get() - self.metrics.base[2]) as usize
    }

    /// Cutting-plane rounds across this instance's solves.
    pub fn cut_rounds(&self) -> usize {
        (self.metrics.cut_rounds.get() - self.metrics.base[3]) as usize
    }

    /// Wall time this instance spent in separation (pool screening plus
    /// the min-cut oracle).
    pub fn sep_time(&self) -> Duration {
        Duration::from_nanos(self.metrics.sep_ns.get() - self.metrics.base[4])
    }

    /// Wall time this instance spent inside the simplex.
    pub fn lp_time(&self) -> Duration {
        Duration::from_nanos(self.metrics.lp_ns.get() - self.metrics.base[5])
    }

    /// Cuts re-activated from the pool instead of re-derived via maxflow.
    pub fn pool_hits(&self) -> usize {
        (self.metrics.pool_hits.get() - self.metrics.base[6]) as usize
    }

    /// Pool screening passes performed before consulting the oracle.
    pub fn pool_scans(&self) -> usize {
        (self.metrics.pool_scans.get() - self.metrics.base[7]) as usize
    }

    /// Cuts added beyond the first of their round — the direct measure of
    /// multi-cut batching versus the single-cut baseline.
    pub fn cuts_batched(&self) -> usize {
        (self.metrics.cuts_batched.get() - self.metrics.base[8]) as usize
    }

    /// Min-cut seeds skipped by the pruning short-circuits.
    pub fn seeds_pruned(&self) -> usize {
        (self.metrics.seeds_pruned.get() - self.metrics.base[9]) as usize
    }

    /// Total cuts parked in the pool (active and inactive).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Solves `min Σ c_e x_e` over the spanning-tree polytope of the given
    /// edges intersected with the degree caps.
    ///
    /// `caps` lists `(node, β_v)` pairs — the lifetime constraints of the
    /// still-constrained set `W`. Nodes without an entry are unconstrained.
    pub fn solve(
        &mut self,
        n: usize,
        edges: &[LpEdge],
        caps: &[(usize, f64)],
    ) -> Result<CutLpOutcome, CutLpError> {
        assert!(n >= 1);
        if n == 1 {
            return Ok(CutLpOutcome::Optimal { x: vec![], objective: 0.0 });
        }
        if self.warm {
            self.solve_warm(n, edges, caps)
        } else {
            self.solve_cold(n, edges, caps)
        }
    }

    // ---- separation round (shared by warm and cold paths) -------------

    /// One separation step against the fractional point `frac`: screen the
    /// pool, then consult the oracle; activate the round's batch. Returns
    /// the number of cuts activated — 0 means `frac` is feasible for the
    /// full polytope.
    fn separate_round(
        &mut self,
        n: usize,
        frac: &[FracEdge],
        round: usize,
    ) -> Result<usize, CutLpError> {
        if let Some(ctx) = &self.ctx {
            if ctx.poll_fault(FaultKind::OracleTimeout) {
                // The injected fault mimics a real oracle deadline: the
                // whole solve is cancelled cooperatively and unwinds as
                // an interruption, never a panic.
                ctx.cancel();
                if let Some(obs) = wsn_obs::current() {
                    obs.registry().counter("sep.fault.oracle_timeout").inc();
                    wsn_obs::warn("sep.fault", vec![wsn_obs::field("kind", "oracle_timeout")]);
                }
            }
            if ctx.is_cancelled() || ctx.is_expired() {
                return Err(CutLpError::Interrupted);
            }
        }
        let k = match self.sep.strategy {
            CutStrategy::SingleCut => 1,
            CutStrategy::Batched => self.sep.max_cuts_per_round.max(1),
        };

        // Pool first: a violated parked cut costs a dot product to find,
        // the oracle costs one maxflow per seed.
        if self.sep.use_pool && self.pool.inactive_count() > 0 {
            self.metrics.pool_scans.inc();
            let (_screened, violated) = self.pool.screen(frac, SEP_TOL);
            if !violated.is_empty() {
                let (picked, _rest) = select_batch(violated, k);
                let hits = picked.len();
                for vs in picked {
                    self.pool.activate(vs.set);
                    self.metrics.cuts_added.inc();
                }
                self.metrics.pool_hits.add(hits as u64);
                if hits > 1 {
                    self.metrics.cuts_batched.add(hits as u64 - 1);
                }
                wsn_obs::event(
                    "sep.pool_hit",
                    vec![wsn_obs::field("round", round), wsn_obs::field("cuts", hits)],
                );
                return Ok(hits);
            }
        }

        let mut cands = self.oracle.separate(
            n,
            frac,
            SEP_TOL,
            n >= PARALLEL_SEP_THRESHOLD,
            self.sep.prune_seeds,
            &self.counters,
        );
        if cands.is_empty() {
            return Ok(0);
        }
        // A set that already has an LP row cannot cut off the current
        // point again; if the oracle returns nothing else, the loop is
        // numerically stalled.
        cands.retain(|vs| !self.pool.is_active(&vs.set));
        if cands.is_empty() {
            return Err(CutLpError::StalledCut);
        }
        if self.sep.strengthen_cuts {
            // Deepen each cut, re-deduplicate (strengthened sets can
            // collide), and keep only sets that still lack an LP row. The
            // current LP point satisfies every active row, so a set with
            // positive violation is never active — the retain guards the
            // degenerate zero-violation corner only.
            let mut deep: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
            for vs in cands {
                let set = separation::strengthen(
                    n,
                    frac,
                    &vs.set,
                    self.sep.strengthen_margin.max(SEP_TOL),
                );
                let viol = separation::violation_sorted(frac, &set);
                let entry = deep.entry(set).or_insert(viol);
                *entry = entry.max(viol);
            }
            cands = deep
                .into_iter()
                .filter(|(set, _)| !self.pool.is_active(set))
                .map(|(set, violation)| ViolatedSet { set, violation })
                .collect();
            if cands.is_empty() {
                return Err(CutLpError::StalledCut);
            }
        }
        let (picked, rest) = select_batch(cands, k);
        let added = picked.len();
        for vs in picked {
            self.pool.activate(vs.set);
            self.metrics.cuts_added.inc();
        }
        if self.sep.use_pool {
            for vs in rest {
                self.pool.insert_inactive(vs.set);
            }
        }
        if added > 1 {
            self.metrics.cuts_batched.add(added as u64 - 1);
        }
        Ok(added)
    }

    // ---- warm path ----------------------------------------------------

    /// True when the standing tableau can absorb this call as a shrink:
    /// same node count, edges a subset of the still-active tags, caps a
    /// subset of the still-enforced rows with unchanged β.
    fn compatible(state: &WarmState, n: usize, edges: &[LpEdge], caps: &[(usize, f64)]) -> bool {
        if state.n != n || edges.len() > state.active.len() {
            return false;
        }
        if !edges.iter().all(|e| state.active.contains(&e.tag)) {
            return false;
        }
        caps.iter().all(|&(node, beta)| match state.cap_rows.get(&node) {
            Some(&(_, stored_beta, vacuous)) => {
                // A cap missing from cap_rows because it was vacuous at
                // build time stays vacuous on a shrunken edge set, so only
                // materialized rows need to match.
                state.active_caps.contains(&node) && (stored_beta - beta).abs() < 1e-12
                    || beta >= vacuous - 1e-12
            }
            // Never materialized: fine iff it is (still) vacuous.
            None => beta >= incident_count(edges, node) as f64 - 1e-12,
        })
    }

    /// The LP row of `set` (sorted), or `None` when it cannot bind (fewer
    /// internal edges than the bound).
    fn subtour_row(
        vars: &BTreeMap<usize, (VarId, usize, usize)>,
        set: &[usize],
    ) -> Option<(Vec<(VarId, f64)>, f64)> {
        let member = |v: usize| set.binary_search(&v).is_ok();
        let internal: Vec<(VarId, f64)> = vars
            .values()
            .filter(|&&(_, u, v)| member(u) && member(v))
            .map(|&(var, _, _)| (var, 1.0))
            .collect();
        (internal.len() >= set.len()).then_some((internal, set.len() as f64 - 1.0))
    }

    /// Builds a fresh incremental tableau for the given instance,
    /// materializing the pool's activated cuts.
    fn build_state(&mut self, n: usize, edges: &[LpEdge], caps: &[(usize, f64)]) -> WarmState {
        let mut lp = IncrementalLp::new();
        lp.set_ctx(self.ctx.clone());
        let mut vars = BTreeMap::new();
        let mut active = BTreeSet::new();
        let mut all = Vec::with_capacity(edges.len());
        for e in edges {
            let v = lp.add_unit_var(e.cost);
            vars.insert(e.tag, (v, e.u, e.v));
            active.insert(e.tag);
            all.push((v, 1.0));
        }
        // Eq. 14: x(E(V)) = |V| − 1.
        lp.add_row(&all, Relation::Eq, n as f64 - 1.0);

        // Eq. 15 as degree caps; vacuous caps are skipped entirely.
        let mut cap_rows = BTreeMap::new();
        let mut active_caps = BTreeSet::new();
        for &(node, beta) in caps {
            let incident: Vec<(VarId, f64)> = edges
                .iter()
                .filter(|e| e.u == node || e.v == node)
                .map(|e| (vars[&e.tag].0, 1.0))
                .collect();
            if incident.is_empty() || beta >= incident.len() as f64 - 1e-12 {
                continue;
            }
            let vacuous = incident.len() as f64;
            let row = lp.add_row(&incident, Relation::Le, beta);
            cap_rows.insert(node, (row, beta, vacuous));
            active_caps.insert(node);
        }

        let mut state = WarmState { lp, n, vars, active, cap_rows, active_caps, subtour_rows: 0 };
        let mut rows = Vec::new();
        while state.subtour_rows < self.pool.active_count() {
            if let Some(row) =
                Self::subtour_row(&state.vars, self.pool.active_set(state.subtour_rows))
            {
                rows.push(row);
            }
            state.subtour_rows += 1;
        }
        state.lp.append_le_rows(&rows);
        state
    }

    /// Appends tableau rows for pool cuts activated since the last
    /// materialization — one batched append, one dual repair.
    fn materialize_pending(&mut self) {
        let state = self.state.as_mut().expect("warm state exists inside the solve loop");
        let mut rows = Vec::new();
        while state.subtour_rows < self.pool.active_count() {
            if let Some(row) =
                Self::subtour_row(&state.vars, self.pool.active_set(state.subtour_rows))
            {
                rows.push(row);
            }
            state.subtour_rows += 1;
        }
        if !rows.is_empty() {
            state.lp.append_le_rows(&rows);
        }
    }

    fn solve_warm(
        &mut self,
        n: usize,
        edges: &[LpEdge],
        caps: &[(usize, f64)],
    ) -> Result<CutLpOutcome, CutLpError> {
        let reuse = self.state.as_ref().is_some_and(|s| Self::compatible(s, n, edges, caps));
        if reuse {
            // Apply the shrink as bound/rhs mutations on the live tableau.
            let mut state = self.state.take().unwrap();
            let keep: BTreeSet<usize> = edges.iter().map(|e| e.tag).collect();
            let dropped: Vec<usize> = state.active.difference(&keep).copied().collect();
            for tag in dropped {
                state.lp.set_upper(state.vars[&tag].0, 0.0);
                state.active.remove(&tag);
            }
            let cap_keep: BTreeSet<usize> = caps.iter().map(|&(v, _)| v).collect();
            let relaxed: Vec<usize> = state.active_caps.difference(&cap_keep).copied().collect();
            for node in relaxed {
                let (row, _, vacuous) = state.cap_rows[&node];
                state.lp.relax_le_rhs(row, vacuous);
                state.active_caps.remove(&node);
            }
            self.state = Some(state);
            self.materialize_pending();
        } else {
            let state = self.build_state(n, edges, caps);
            self.state = Some(state);
        }

        for round in 0..MAX_CUT_ROUNDS {
            if let Some(ctx) = &self.ctx {
                if ctx.is_cancelled() || ctx.is_expired() || ctx.round_cap_hit(round as u64) {
                    return Err(CutLpError::Interrupted);
                }
            }
            self.metrics.lp_solves.inc();
            self.metrics.cut_rounds.inc();
            let state = self.state.as_mut().unwrap();
            let lp_start = std::time::Instant::now();
            let sol = {
                let _span = wsn_obs::span_with("lp-solve", vec![wsn_obs::field("round", round)]);
                state.lp.solve().map_err(lift)?
            };
            let lp_elapsed = lp_start.elapsed();
            self.metrics.lp_ns.add(lp_elapsed.as_nanos() as u64);
            self.metrics.round_lp_us.observe(lp_elapsed.as_micros() as u64);
            self.metrics.round_pivots.observe(sol.iterations as u64);
            self.metrics.pivots.add(sol.iterations as u64);
            match sol.status {
                LpStatus::Infeasible => return Ok(CutLpOutcome::Infeasible),
                LpStatus::Unbounded => {
                    // Box-bounded variables cannot make the model genuinely
                    // unbounded; an unbounded verdict means the tableau data
                    // went non-finite past what the sentinels could repair.
                    if let Some(obs) = wsn_obs::current() {
                        obs.registry().counter("lp.sentinel.unbounded_verdict").inc();
                    }
                    return Err(CutLpError::Lp(wsn_lp::LpError::Numerical));
                }
                LpStatus::Optimal => {}
            }

            // Project onto the caller's edge order.
            let x: Vec<f64> = edges.iter().map(|e| sol.x[state.vars[&e.tag].0.index()]).collect();
            let frac: Vec<FracEdge> =
                edges.iter().zip(&x).map(|(e, &x)| FracEdge { u: e.u, v: e.v, x }).collect();
            let sep_start = std::time::Instant::now();
            let added = {
                let _span = wsn_obs::span_with("separation", vec![wsn_obs::field("round", round)]);
                self.separate_round(n, &frac, round)?
            };
            self.metrics.sep_ns.add(sep_start.elapsed().as_nanos() as u64);
            if added == 0 {
                return Ok(CutLpOutcome::Optimal { x, objective: sol.objective });
            }
            self.materialize_pending();
        }
        Err(CutLpError::CutRoundLimit)
    }

    // ---- cold path (rebuilds the LP each round) -----------------------

    fn solve_cold(
        &mut self,
        n: usize,
        edges: &[LpEdge],
        caps: &[(usize, f64)],
    ) -> Result<CutLpOutcome, CutLpError> {
        // Incident-edge index per capped node, hoisted out of the round
        // loop: the edge set is fixed for the whole call.
        let cap_incident: Vec<(usize, f64, Vec<usize>)> = caps
            .iter()
            .map(|&(node, beta)| {
                let inc: Vec<usize> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.u == node || e.v == node)
                    .map(|(i, _)| i)
                    .collect();
                (node, beta, inc)
            })
            .collect();

        for round in 0..MAX_CUT_ROUNDS {
            if let Some(ctx) = &self.ctx {
                if ctx.is_cancelled() || ctx.is_expired() || ctx.round_cap_hit(round as u64) {
                    return Err(CutLpError::Interrupted);
                }
            }
            let mut lp = LpProblem::new();
            let vars: Vec<VarId> = edges.iter().map(|e| lp.add_unit_var(e.cost)).collect();

            // Eq. 14: x(E(V)) = |V| − 1.
            let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(&all, Relation::Eq, n as f64 - 1.0);

            // Eq. 15 as degree caps: x(δ(v)) ≤ β_v.
            for (_, beta, inc) in &cap_incident {
                // A cap at or above the incident count is vacuous.
                if inc.is_empty() || *beta >= inc.len() as f64 - 1e-12 {
                    continue;
                }
                let incident: Vec<(VarId, f64)> = inc.iter().map(|&i| (vars[i], 1.0)).collect();
                lp.add_constraint(&incident, Relation::Le, *beta);
            }

            // Eq. 13 for the pool's activated cuts.
            for i in 0..self.pool.active_count() {
                let set = self.pool.active_set(i);
                let member = |v: usize| set.binary_search(&v).is_ok();
                let internal: Vec<(VarId, f64)> = edges
                    .iter()
                    .zip(&vars)
                    .filter(|(e, _)| member(e.u) && member(e.v))
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                if internal.len() >= set.len() {
                    lp.add_constraint(&internal, Relation::Le, set.len() as f64 - 1.0);
                }
            }

            if let Some(ctx) = &self.ctx {
                if ctx.poll_fault(FaultKind::PoisonCut) {
                    // The cold path rebuilds through the validating model
                    // builder, which rejects non-finite rows at insertion;
                    // the injected poison therefore surfaces directly as
                    // the sentinel's typed error.
                    if let Some(obs) = wsn_obs::current() {
                        obs.registry().counter("sep.fault.poison_cut").inc();
                    }
                    return Err(CutLpError::Lp(wsn_lp::LpError::Numerical));
                }
            }
            self.metrics.lp_solves.inc();
            self.metrics.cut_rounds.inc();
            let lp_start = std::time::Instant::now();
            let sol = {
                let _span = wsn_obs::span_with("lp-solve", vec![wsn_obs::field("round", round)]);
                wsn_lp::solve_with_ctx(&lp, self.ctx.as_deref()).map_err(lift)?
            };
            let lp_elapsed = lp_start.elapsed();
            self.metrics.lp_ns.add(lp_elapsed.as_nanos() as u64);
            self.metrics.round_lp_us.observe(lp_elapsed.as_micros() as u64);
            self.metrics.round_pivots.observe(sol.iterations as u64);
            self.metrics.pivots.add(sol.iterations as u64);
            match sol.status {
                LpStatus::Infeasible => return Ok(CutLpOutcome::Infeasible),
                LpStatus::Unbounded => {
                    // Box-bounded variables cannot make the model genuinely
                    // unbounded; an unbounded verdict means the tableau data
                    // went non-finite past what the sentinels could repair.
                    if let Some(obs) = wsn_obs::current() {
                        obs.registry().counter("lp.sentinel.unbounded_verdict").inc();
                    }
                    return Err(CutLpError::Lp(wsn_lp::LpError::Numerical));
                }
                LpStatus::Optimal => {}
            }

            let frac: Vec<FracEdge> =
                edges.iter().zip(&sol.x).map(|(e, &x)| FracEdge { u: e.u, v: e.v, x }).collect();
            let sep_start = std::time::Instant::now();
            let added = {
                let _span = wsn_obs::span_with("separation", vec![wsn_obs::field("round", round)]);
                self.separate_round(n, &frac, round)?
            };
            self.metrics.sep_ns.add(sep_start.elapsed().as_nanos() as u64);
            if added == 0 {
                return Ok(CutLpOutcome::Optimal { x: sol.x, objective: sol.objective });
            }
        }
        Err(CutLpError::CutRoundLimit)
    }
}

/// Number of edges incident to `node`.
fn incident_count(edges: &[LpEdge], node: usize) -> usize {
    edges.iter().filter(|e| e.u == node || e.v == node).count()
}
#[cfg(test)]
mod tests {
    use super::*;
    use wsn_graph::{kruskal, WeightedEdge};

    fn lpe(u: usize, v: usize, cost: f64, tag: usize) -> LpEdge {
        LpEdge { u, v, cost, tag }
    }

    /// Complete graph K5 with distinct costs.
    fn k5() -> Vec<LpEdge> {
        let mut edges = Vec::new();
        let mut tag = 0;
        for u in 0..5 {
            for v in u + 1..5 {
                // A deterministic but non-monotone cost pattern.
                let cost = ((u * 7 + v * 13) % 17) as f64 / 10.0 + 0.05;
                edges.push(lpe(u, v, cost, tag));
                tag += 1;
            }
        }
        edges
    }

    fn assert_integral_tree(n: usize, edges: &[LpEdge], x: &[f64]) {
        let mut count = 0;
        for (e, &v) in edges.iter().zip(x) {
            assert!(
                v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6,
                "fractional value {v} on edge ({}, {})",
                e.u,
                e.v
            );
            if v > 0.5 {
                count += 1;
            }
        }
        assert_eq!(count, n - 1, "support must have n−1 edges");
    }

    #[test]
    fn unconstrained_lp_is_mst() {
        // Lemma 1: without degree caps, the extreme point is integral and
        // optimal ⇒ it is a minimum spanning tree.
        let edges = k5();
        let mut cut = CutLp::new();
        let out = cut.solve(5, &edges, &[]).unwrap();
        let CutLpOutcome::Optimal { x, objective } = out else { panic!("K5 is feasible") };
        assert_integral_tree(5, &edges, &x);
        let wedges: Vec<WeightedEdge> =
            edges.iter().map(|e| WeightedEdge { u: e.u, v: e.v, w: e.cost, id: e.tag }).collect();
        let mst = kruskal(5, &wedges).unwrap();
        let mst_cost: f64 =
            mst.iter().map(|&id| edges.iter().find(|e| e.tag == id).unwrap().cost).sum();
        assert!((objective - mst_cost).abs() < 1e-6, "LP {objective} vs MST {mst_cost}");
    }

    #[test]
    fn degree_cap_changes_the_tree() {
        // Star-friendly costs: all edges to node 0 are cheapest, so the MST
        // is the star at 0; capping x(δ(0)) ≤ 2 forces a different shape.
        let mut edges = Vec::new();
        let mut tag = 0;
        for v in 1..5 {
            edges.push(lpe(0, v, 0.1, tag));
            tag += 1;
        }
        for u in 1..5 {
            for v in u + 1..5 {
                edges.push(lpe(u, v, 1.0, tag));
                tag += 1;
            }
        }
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { objective: unconstrained, .. } =
            cut.solve(5, &edges, &[]).unwrap()
        else {
            panic!()
        };
        assert!((unconstrained - 0.4).abs() < 1e-6);

        let mut cut2 = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut2.solve(5, &edges, &[(0, 2.0)]).unwrap()
        else {
            panic!()
        };
        // Optimal now: 2 star edges + 2 expensive edges = 0.2 + 2.0.
        assert!((objective - 2.2).abs() < 1e-6, "got {objective}");
        let deg0: f64 =
            edges.iter().zip(&x).filter(|(e, _)| e.u == 0 || e.v == 0).map(|(_, &v)| v).sum();
        assert!(deg0 <= 2.0 + 1e-6);
    }

    #[test]
    fn infeasible_caps_detected() {
        // A path graph where the middle node is capped below 2 — no spanning
        // tree can avoid degree 2 at the middle of a path.
        let edges = vec![lpe(0, 1, 1.0, 0), lpe(1, 2, 1.0, 1)];
        let mut cut = CutLp::new();
        let out = cut.solve(3, &edges, &[(1, 1.5)]).unwrap();
        assert!(matches!(out, CutLpOutcome::Infeasible));
    }

    #[test]
    fn cuts_are_needed_and_found() {
        // Two triangles sharing no vertex, joined by one expensive edge:
        // without subtour constraints the LP would love to put mass 3 on a
        // cheap triangle. The cutting plane loop must forbid it.
        let edges = vec![
            lpe(0, 1, 0.1, 0),
            lpe(1, 2, 0.1, 1),
            lpe(0, 2, 0.1, 2),
            lpe(3, 4, 0.1, 3),
            lpe(4, 5, 0.1, 4),
            lpe(3, 5, 0.1, 5),
            lpe(2, 3, 5.0, 6),
        ];
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut.solve(6, &edges, &[]).unwrap() else {
            panic!()
        };
        assert!(cut.cuts_added() > 0, "subtour cuts must fire");
        assert_integral_tree(6, &edges, &x);
        // Must include the bridge and drop one edge per triangle.
        assert!((objective - (0.4 + 5.0)).abs() < 1e-6, "got {objective}");
        assert!((x[6] - 1.0).abs() < 1e-6, "bridge must be chosen");
    }

    #[test]
    fn single_node_trivial() {
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut.solve(1, &[], &[]).unwrap() else {
            panic!()
        };
        assert!(x.is_empty());
        assert_eq!(objective, 0.0);
    }

    #[test]
    fn state_reuse_across_solves() {
        // Cuts accumulated on the first solve should carry to the second
        // (IRA re-solves after removing edges).
        let edges =
            vec![lpe(0, 1, 0.1, 0), lpe(1, 2, 0.1, 1), lpe(0, 2, 0.1, 2), lpe(2, 3, 2.0, 3)];
        let mut cut = CutLp::new();
        let _ = cut.solve(4, &edges, &[]).unwrap();
        let cuts_after_first = cut.cuts_added();
        let _ = cut.solve(4, &edges, &[]).unwrap();
        // No *new* cuts should be necessary the second time.
        assert_eq!(cut.cuts_added(), cuts_after_first);
    }

    /// Runs the same solve on a warm and a cold instance and checks the
    /// outcomes agree (objective within 1e-6, both feasible or both not).
    fn assert_warm_matches_cold(
        warm: &mut CutLp,
        cold: &mut CutLp,
        n: usize,
        edges: &[LpEdge],
        caps: &[(usize, f64)],
    ) {
        let a = warm.solve(n, edges, caps).unwrap();
        let b = cold.solve(n, edges, caps).unwrap();
        match (a, b) {
            (
                CutLpOutcome::Optimal { objective: oa, x },
                CutLpOutcome::Optimal { objective: ob, .. },
            ) => {
                assert!((oa - ob).abs() < 1e-6, "warm {oa} vs cold {ob}");
                let total: f64 = x.iter().sum();
                assert!((total - (n as f64 - 1.0)).abs() < 1e-6, "mass {total}");
            }
            (CutLpOutcome::Infeasible, CutLpOutcome::Infeasible) => {}
            (a, b) => panic!("outcome mismatch: warm {a:?} vs cold {b:?}"),
        }
    }

    #[test]
    fn warm_matches_cold_on_shrinking_sequence() {
        // Emulates IRA: same node set, monotonically shrinking edge and cap
        // sets. The warm path must track the cold path at every step while
        // actually reusing its basis.
        let edges = k5();
        let caps_full = vec![(0usize, 2.0f64), (1, 3.0), (2, 2.0)];
        let mut warm = CutLp::new();
        let mut cold = CutLp::new_cold();
        assert!(warm.is_warm() && !cold.is_warm());
        assert_warm_matches_cold(&mut warm, &mut cold, 5, &edges, &caps_full);

        // Drop two edges (keep connectivity) and one cap.
        let shrunk: Vec<LpEdge> =
            edges.iter().filter(|e| e.tag != 1 && e.tag != 7).copied().collect();
        let caps_less = vec![(0usize, 2.0f64), (2, 2.0)];
        assert_warm_matches_cold(&mut warm, &mut cold, 5, &shrunk, &caps_less);

        // Drop everything but a spanning structure and all caps.
        let smaller: Vec<LpEdge> =
            shrunk.iter().filter(|e| e.tag != 2 && e.tag != 8).copied().collect();
        assert_warm_matches_cold(&mut warm, &mut cold, 5, &smaller, &[]);
    }

    #[test]
    fn warm_matches_cold_with_subtour_cuts() {
        // The two-triangle instance forces subtour cuts; the warm path
        // appends them to a live tableau instead of rebuilding.
        let edges = vec![
            lpe(0, 1, 0.1, 0),
            lpe(1, 2, 0.1, 1),
            lpe(0, 2, 0.1, 2),
            lpe(3, 4, 0.1, 3),
            lpe(4, 5, 0.1, 4),
            lpe(3, 5, 0.1, 5),
            lpe(2, 3, 5.0, 6),
        ];
        let mut warm = CutLp::new();
        let mut cold = CutLp::new_cold();
        assert_warm_matches_cold(&mut warm, &mut cold, 6, &edges, &[]);
        assert!(warm.cuts_added() > 0);
        // Re-solve after dropping one triangle edge: cuts carry over and
        // the basis survives.
        let shrunk: Vec<LpEdge> = edges.iter().filter(|e| e.tag != 2).copied().collect();
        assert_warm_matches_cold(&mut warm, &mut cold, 6, &shrunk, &[]);
    }

    #[test]
    fn warm_detects_infeasible_like_cold() {
        let edges = vec![lpe(0, 1, 1.0, 0), lpe(1, 2, 1.0, 1)];
        let mut warm = CutLp::new();
        let mut cold = CutLp::new_cold();
        assert_warm_matches_cold(&mut warm, &mut cold, 3, &edges, &[(1, 1.5)]);
    }

    #[test]
    fn incompatible_resolve_rebuilds_transparently() {
        // Growing the edge set is NOT a shrink — the warm state must
        // rebuild rather than answer from a stale tableau.
        let small = vec![lpe(0, 1, 1.0, 0), lpe(1, 2, 1.0, 1)];
        let full = vec![lpe(0, 1, 1.0, 0), lpe(1, 2, 1.0, 1), lpe(0, 2, 0.5, 2)];
        let mut warm = CutLp::new();
        let CutLpOutcome::Optimal { objective: o1, .. } = warm.solve(3, &small, &[]).unwrap()
        else {
            panic!()
        };
        assert!((o1 - 2.0).abs() < 1e-6);
        let CutLpOutcome::Optimal { objective: o2, .. } = warm.solve(3, &full, &[]).unwrap() else {
            panic!()
        };
        assert!((o2 - 1.5).abs() < 1e-6, "rebuild must see the new edge: {o2}");
    }

    #[test]
    fn counters_track_solver_effort() {
        let edges = k5();
        let mut cut = CutLp::new();
        let _ = cut.solve(5, &edges, &[(0, 2.0)]).unwrap();
        assert!(cut.lp_solves() >= 1);
        assert_eq!(cut.cut_rounds(), cut.lp_solves());
        assert!(cut.pivots() > 0, "simplex work must be recorded");
    }

    #[test]
    fn counters_are_deltas_under_a_shared_registry() {
        // CutLps used in sequence under one ambient registry (the traced
        // fig8 pattern) each report only the effort since their own
        // construction, while the registry accumulates the grand total.
        let obs = wsn_obs::Obs::detached();
        let _guard = wsn_obs::install(obs.clone());
        let edges = k5();
        let mut first = CutLp::new();
        let _ = first.solve(5, &edges, &[(0, 2.0)]).unwrap();
        let first_solves = first.lp_solves();
        assert!(first_solves >= 1);
        drop(first);

        let mut second = CutLp::new();
        let _ = second.solve(5, &edges, &[(0, 2.0)]).unwrap();
        assert_eq!(second.lp_solves(), first_solves, "same instance, same effort");
        assert_eq!(
            obs.registry().counter("ira.lp_solves").get(),
            (first_solves * 2) as u64,
            "registry holds the shared total"
        );
    }

    /// Three disjoint cheap triangles joined by two expensive bridges: the
    /// first LP solve saturates at least two triangles at once, so
    /// separation yields multiple disjoint violated sets in one round.
    fn three_triangles() -> Vec<LpEdge> {
        let mut edges = Vec::new();
        let mut tag = 0;
        for base in [0usize, 3, 6] {
            for (u, v) in [(base, base + 1), (base + 1, base + 2), (base, base + 2)] {
                edges.push(lpe(u, v, 0.1 + tag as f64 * 1e-4, tag));
                tag += 1;
            }
        }
        edges.push(lpe(2, 3, 5.0, tag));
        edges.push(lpe(5, 6, 5.0, tag + 1));
        edges
    }

    #[test]
    fn batched_rounds_record_batching() {
        let edges = three_triangles();
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { x, .. } = cut.solve(9, &edges, &[]).unwrap() else { panic!() };
        assert_integral_tree(9, &edges, &x);
        assert!(cut.cuts_added() >= 2, "multiple triangle cuts must fire");
        assert!(cut.cuts_batched() >= 1, "at least one round must add several cuts");
    }

    #[test]
    fn pool_reactivation_counts_hits() {
        // Cap the batch at one cut per round: surplus violated sets are
        // parked in the pool and must come back via screening (a pool hit)
        // rather than a fresh maxflow run.
        let edges = three_triangles();
        let sep = SeparationConfig { max_cuts_per_round: 1, ..SeparationConfig::default() };
        let mut cut = CutLp::with_config(true, sep);
        let CutLpOutcome::Optimal { x, .. } = cut.solve(9, &edges, &[]).unwrap() else { panic!() };
        assert_integral_tree(9, &edges, &x);
        assert!(cut.pool_scans() >= 1, "rounds after the first parked cut must screen");
        assert!(cut.pool_hits() >= 1, "a parked cut must be re-activated from the pool");
        assert_eq!(cut.cuts_batched(), 0, "K = 1 never batches");
        assert!(cut.pool_size() >= cut.cuts_added());
    }

    #[test]
    fn single_cut_baseline_agrees_with_batched() {
        // The A/B toggle: the pre-engine loop (one cut per round, no pool,
        // no pruning) must land on the same optimum, spending at least as
        // many cut rounds.
        let edges = three_triangles();
        let mut batched = CutLp::new();
        let mut single = CutLp::with_config(true, SeparationConfig::single_cut());
        let CutLpOutcome::Optimal { objective: ob, x: xb } = batched.solve(9, &edges, &[]).unwrap()
        else {
            panic!()
        };
        let CutLpOutcome::Optimal { objective: os, x: xs } = single.solve(9, &edges, &[]).unwrap()
        else {
            panic!()
        };
        assert!((ob - os).abs() < 1e-6, "batched {ob} vs single {os}");
        for (a, b) in xb.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-6, "distinct costs force a unique optimum");
        }
        assert!(single.cut_rounds() >= batched.cut_rounds());
        assert_eq!(single.pool_scans(), 0, "single-cut mode never consults the pool");
        assert_eq!(single.seeds_pruned(), 0, "single-cut mode never prunes seeds");
    }

    #[test]
    fn pool_survives_shrinking_resolves() {
        // IRA drops edges between solves; pooled cuts must persist so the
        // shrunken re-solve starts from the accumulated polytope knowledge.
        let edges = three_triangles();
        let mut cut = CutLp::new();
        let _ = cut.solve(9, &edges, &[]).unwrap();
        let pooled = cut.pool_size();
        assert!(pooled >= 2);
        // Drop one edge of the first triangle (keep connectivity).
        let shrunk: Vec<LpEdge> = edges.iter().filter(|e| e.tag != 2).copied().collect();
        let CutLpOutcome::Optimal { x, .. } = cut.solve(9, &shrunk, &[]).unwrap() else { panic!() };
        assert_integral_tree(9, &shrunk, &x);
        assert!(cut.pool_size() >= pooled, "shrink must not evict pooled cuts");
    }
}

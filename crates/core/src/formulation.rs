//! The LP of Eqs. 11–15 with lazily generated subtour constraints.
//!
//! `CutLp` owns the active edge set and the per-node fractional degree caps
//! (`x(δ(v)) ≤ β_v`, the LP image of the lifetime constraints of Eq. 15)
//! and repeatedly solves a relaxation with the extreme-point simplex,
//! adding violated subtour constraints from the min-cut oracle until the
//! point is feasible for the full polytope. Extreme-point status is
//! preserved: a basic solution of the relaxation that satisfies every
//! dropped constraint is a basic solution of the full system.

use crate::separation::{violated_sets, FracEdge};
use wsn_lp::{LpProblem, LpStatus, Relation, VarId};

/// Safety valve on cutting-plane rounds (each round adds ≥ 1 new set, and
/// distinct sets are finite, but numerics deserve a cap).
const MAX_CUT_ROUNDS: usize = 400;

/// Violation tolerance for separation.
const SEP_TOL: f64 = 1e-7;

/// One active edge of the LP.
#[derive(Clone, Copy, Debug)]
pub struct LpEdge {
    /// Endpoint (dense node index).
    pub u: usize,
    /// Endpoint (dense node index).
    pub v: usize,
    /// Edge cost `c_e = −ln q_e`.
    pub cost: f64,
    /// Caller tag (the network's `EdgeId` index).
    pub tag: usize,
}

/// Outcome of a cutting-plane solve.
#[derive(Clone, Debug)]
pub enum CutLpOutcome {
    /// An optimal extreme point of `LP(G, L', W)`.
    Optimal {
        /// `x_e` per active edge (same order as the input edge slice).
        x: Vec<f64>,
        /// Objective `Σ c_e x_e`.
        objective: f64,
    },
    /// The constraints admit no fractional spanning structure.
    Infeasible,
}

/// Errors from the LP layer.
#[derive(Clone, Debug, PartialEq)]
pub enum CutLpError {
    /// The inner simplex failed (iteration limit / invalid bounds).
    Lp(wsn_lp::LpError),
    /// Cutting-plane rounds exceeded the safety cap.
    CutRoundLimit,
    /// Separation returned a set the LP already contains — numerical stall.
    StalledCut,
}

impl std::fmt::Display for CutLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CutLpError::Lp(e) => write!(f, "simplex failure: {e}"),
            CutLpError::CutRoundLimit => write!(f, "cutting-plane round limit exceeded"),
            CutLpError::StalledCut => write!(f, "cutting planes stalled on a repeated set"),
        }
    }
}

impl std::error::Error for CutLpError {}

/// Cutting-plane state: accumulated subtour sets survive across IRA
/// iterations (they remain valid as edges/constraints are removed).
#[derive(Clone, Debug, Default)]
pub struct CutLp {
    subtour_sets: Vec<Vec<usize>>,
    seen: std::collections::BTreeSet<Vec<usize>>,
    /// Total LP solves performed (statistics).
    pub lp_solves: usize,
    /// Total subtour cuts generated (statistics).
    pub cuts_added: usize,
}

impl CutLp {
    /// Creates an empty cutting-plane state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `min Σ c_e x_e` over the spanning-tree polytope of the given
    /// edges intersected with the degree caps.
    ///
    /// `caps` lists `(node, β_v)` pairs — the lifetime constraints of the
    /// still-constrained set `W`. Nodes without an entry are unconstrained.
    pub fn solve(
        &mut self,
        n: usize,
        edges: &[LpEdge],
        caps: &[(usize, f64)],
    ) -> Result<CutLpOutcome, CutLpError> {
        assert!(n >= 1);
        if n == 1 {
            return Ok(CutLpOutcome::Optimal { x: vec![], objective: 0.0 });
        }

        for _round in 0..MAX_CUT_ROUNDS {
            let mut lp = LpProblem::new();
            let vars: Vec<VarId> = edges.iter().map(|e| lp.add_unit_var(e.cost)).collect();

            // Eq. 14: x(E(V)) = |V| − 1.
            let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(&all, Relation::Eq, n as f64 - 1.0);

            // Eq. 15 as degree caps: x(δ(v)) ≤ β_v.
            for &(node, beta) in caps {
                let incident: Vec<(VarId, f64)> = edges
                    .iter()
                    .zip(&vars)
                    .filter(|(e, _)| e.u == node || e.v == node)
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                if incident.is_empty() {
                    continue;
                }
                // A cap at or above the incident count is vacuous.
                if beta >= incident.len() as f64 - 1e-12 {
                    continue;
                }
                lp.add_constraint(&incident, Relation::Le, beta);
            }

            // Eq. 13 for the accumulated family of subtour sets.
            for set in &self.subtour_sets {
                let member = |v: usize| set.binary_search(&v).is_ok();
                let internal: Vec<(VarId, f64)> = edges
                    .iter()
                    .zip(&vars)
                    .filter(|(e, _)| member(e.u) && member(e.v))
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                if internal.len() >= set.len() {
                    lp.add_constraint(&internal, Relation::Le, set.len() as f64 - 1.0);
                }
            }

            self.lp_solves += 1;
            let sol = lp.solve().map_err(CutLpError::Lp)?;
            match sol.status {
                LpStatus::Infeasible => return Ok(CutLpOutcome::Infeasible),
                LpStatus::Unbounded => {
                    unreachable!("box-bounded variables cannot be unbounded")
                }
                LpStatus::Optimal => {}
            }

            let frac: Vec<FracEdge> =
                edges.iter().zip(&sol.x).map(|(e, &x)| FracEdge { u: e.u, v: e.v, x }).collect();
            let violated = violated_sets(n, &frac, SEP_TOL);
            if violated.is_empty() {
                return Ok(CutLpOutcome::Optimal { x: sol.x, objective: sol.objective });
            }
            let mut progressed = false;
            for mut set in violated {
                set.sort_unstable();
                if self.seen.insert(set.clone()) {
                    self.subtour_sets.push(set);
                    self.cuts_added += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return Err(CutLpError::StalledCut);
            }
        }
        Err(CutLpError::CutRoundLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_graph::{kruskal, WeightedEdge};

    fn lpe(u: usize, v: usize, cost: f64, tag: usize) -> LpEdge {
        LpEdge { u, v, cost, tag }
    }

    /// Complete graph K5 with distinct costs.
    fn k5() -> Vec<LpEdge> {
        let mut edges = Vec::new();
        let mut tag = 0;
        for u in 0..5 {
            for v in u + 1..5 {
                // A deterministic but non-monotone cost pattern.
                let cost = ((u * 7 + v * 13) % 17) as f64 / 10.0 + 0.05;
                edges.push(lpe(u, v, cost, tag));
                tag += 1;
            }
        }
        edges
    }

    fn assert_integral_tree(n: usize, edges: &[LpEdge], x: &[f64]) {
        let mut count = 0;
        for (e, &v) in edges.iter().zip(x) {
            assert!(
                v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6,
                "fractional value {v} on edge ({}, {})",
                e.u,
                e.v
            );
            if v > 0.5 {
                count += 1;
            }
        }
        assert_eq!(count, n - 1, "support must have n−1 edges");
    }

    #[test]
    fn unconstrained_lp_is_mst() {
        // Lemma 1: without degree caps, the extreme point is integral and
        // optimal ⇒ it is a minimum spanning tree.
        let edges = k5();
        let mut cut = CutLp::new();
        let out = cut.solve(5, &edges, &[]).unwrap();
        let CutLpOutcome::Optimal { x, objective } = out else { panic!("K5 is feasible") };
        assert_integral_tree(5, &edges, &x);
        let wedges: Vec<WeightedEdge> =
            edges.iter().map(|e| WeightedEdge { u: e.u, v: e.v, w: e.cost, id: e.tag }).collect();
        let mst = kruskal(5, &wedges).unwrap();
        let mst_cost: f64 =
            mst.iter().map(|&id| edges.iter().find(|e| e.tag == id).unwrap().cost).sum();
        assert!((objective - mst_cost).abs() < 1e-6, "LP {objective} vs MST {mst_cost}");
    }

    #[test]
    fn degree_cap_changes_the_tree() {
        // Star-friendly costs: all edges to node 0 are cheapest, so the MST
        // is the star at 0; capping x(δ(0)) ≤ 2 forces a different shape.
        let mut edges = Vec::new();
        let mut tag = 0;
        for v in 1..5 {
            edges.push(lpe(0, v, 0.1, tag));
            tag += 1;
        }
        for u in 1..5 {
            for v in u + 1..5 {
                edges.push(lpe(u, v, 1.0, tag));
                tag += 1;
            }
        }
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { objective: unconstrained, .. } =
            cut.solve(5, &edges, &[]).unwrap()
        else {
            panic!()
        };
        assert!((unconstrained - 0.4).abs() < 1e-6);

        let mut cut2 = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut2.solve(5, &edges, &[(0, 2.0)]).unwrap()
        else {
            panic!()
        };
        // Optimal now: 2 star edges + 2 expensive edges = 0.2 + 2.0.
        assert!((objective - 2.2).abs() < 1e-6, "got {objective}");
        let deg0: f64 =
            edges.iter().zip(&x).filter(|(e, _)| e.u == 0 || e.v == 0).map(|(_, &v)| v).sum();
        assert!(deg0 <= 2.0 + 1e-6);
    }

    #[test]
    fn infeasible_caps_detected() {
        // A path graph where the middle node is capped below 2 — no spanning
        // tree can avoid degree 2 at the middle of a path.
        let edges = vec![lpe(0, 1, 1.0, 0), lpe(1, 2, 1.0, 1)];
        let mut cut = CutLp::new();
        let out = cut.solve(3, &edges, &[(1, 1.5)]).unwrap();
        assert!(matches!(out, CutLpOutcome::Infeasible));
    }

    #[test]
    fn cuts_are_needed_and_found() {
        // Two triangles sharing no vertex, joined by one expensive edge:
        // without subtour constraints the LP would love to put mass 3 on a
        // cheap triangle. The cutting plane loop must forbid it.
        let edges = vec![
            lpe(0, 1, 0.1, 0),
            lpe(1, 2, 0.1, 1),
            lpe(0, 2, 0.1, 2),
            lpe(3, 4, 0.1, 3),
            lpe(4, 5, 0.1, 4),
            lpe(3, 5, 0.1, 5),
            lpe(2, 3, 5.0, 6),
        ];
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut.solve(6, &edges, &[]).unwrap() else {
            panic!()
        };
        assert!(cut.cuts_added > 0, "subtour cuts must fire");
        assert_integral_tree(6, &edges, &x);
        // Must include the bridge and drop one edge per triangle.
        assert!((objective - (0.4 + 5.0)).abs() < 1e-6, "got {objective}");
        assert!((x[6] - 1.0).abs() < 1e-6, "bridge must be chosen");
    }

    #[test]
    fn single_node_trivial() {
        let mut cut = CutLp::new();
        let CutLpOutcome::Optimal { x, objective } = cut.solve(1, &[], &[]).unwrap() else {
            panic!()
        };
        assert!(x.is_empty());
        assert_eq!(objective, 0.0);
    }

    #[test]
    fn state_reuse_across_solves() {
        // Cuts accumulated on the first solve should carry to the second
        // (IRA re-solves after removing edges).
        let edges =
            vec![lpe(0, 1, 0.1, 0), lpe(1, 2, 0.1, 1), lpe(0, 2, 0.1, 2), lpe(2, 3, 2.0, 3)];
        let mut cut = CutLp::new();
        let _ = cut.solve(4, &edges, &[]).unwrap();
        let cuts_after_first = cut.cuts_added;
        let _ = cut.solve(4, &edges, &[]).unwrap();
        // No *new* cuts should be necessary the second time.
        assert_eq!(cut.cuts_added, cuts_after_first);
    }
}

//! The lifetime–reliability Pareto frontier.
//!
//! The paper frames MRLC as "carefully balanc\[ing\] the trade-off between
//! these two contradicting objectives" but only samples four `LC` values
//! (Fig. 7). This module sweeps the whole frontier: every *achievable*
//! lifetime value is one of finitely many candidates `L(v, k)` (a tree's
//! lifetime is decided by integer children counts), so solving IRA just
//! below each candidate traces the exact staircase of the trade-off.

use crate::bounds::candidate_lifetimes;
use crate::ira::{solve_ira, IraConfig, IraError};
use crate::problem::MrlcInstance;
use wsn_model::{EnergyModel, Network, PaperCost};

/// One point of the frontier.
#[derive(Clone, Copy, Debug)]
pub struct ParetoPoint {
    /// The lifetime bound requested.
    pub lc: f64,
    /// Lifetime actually achieved by the tree.
    pub lifetime: f64,
    /// Tree cost in paper units.
    pub cost: f64,
    /// Tree reliability.
    pub reliability: f64,
    /// Whether the strict `L'` guarantee held (false = LC fallback ran).
    pub strict: bool,
}

/// Sweeps IRA across the candidate-lifetime staircase, keeping one point
/// per requested bound. Infeasible bounds are skipped. `max_points` caps
/// the sweep (candidates are thinned evenly when there are more).
pub fn pareto_frontier(
    net: &Network,
    model: EnergyModel,
    max_points: usize,
) -> Result<Vec<ParetoPoint>, IraError> {
    assert!(max_points >= 2, "a frontier needs at least two points");
    let mut candidates = candidate_lifetimes(net, &model);
    // Ascending LC sweep reads naturally (cheapest tree first).
    candidates.reverse();
    if candidates.len() > max_points {
        let stride = candidates.len() as f64 / max_points as f64;
        candidates = (0..max_points).map(|i| candidates[(i as f64 * stride) as usize]).collect();
    }
    let mut out = Vec::with_capacity(candidates.len());
    for lc in candidates {
        // Shade down so a tree attaining the candidate value qualifies.
        let lc = lc * (1.0 - 1e-9);
        // A zero/non-finite candidate (degenerate energy model) is not a
        // solvable bound — skip it rather than panic.
        let Ok(inst) = MrlcInstance::new(net.clone(), model, lc) else {
            continue;
        };
        match solve_ira(&inst, &IraConfig::default()) {
            Ok(sol) => out.push(ParetoPoint {
                lc,
                lifetime: sol.lifetime,
                cost: PaperCost::from_nat(sol.cost).0,
                reliability: sol.reliability,
                strict: !sol.stats.relaxed_to_lc,
            }),
            Err(IraError::LifetimeUnachievable { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Filters a frontier down to its non-dominated points: keep a point iff no
/// other point has both at-least lifetime and at-most cost (strict in one).
pub fn dominant_points(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut kept: Vec<ParetoPoint> = Vec::new();
    for &p in points {
        let dominated = points.iter().any(|q| {
            (q.lifetime > p.lifetime * (1.0 + 1e-12) && q.cost <= p.cost + 1e-9)
                || (q.cost < p.cost - 1e-9 && q.lifetime >= p.lifetime * (1.0 - 1e-12))
        });
        if !dominated {
            kept.push(p);
        }
    }
    // Deduplicate identical (lifetime, cost) pairs.
    kept.sort_by(|a, b| a.lifetime.total_cmp(&b.lifetime));
    kept.dedup_by(|a, b| (a.lifetime - b.lifetime).abs() < 1e-6 && (a.cost - b.cost).abs() < 1e-9);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    /// Cheap star at the sink plus an expensive clique: spreading load
    /// costs reliability, so the frontier is non-trivial.
    fn tradeoff_net(n: usize) -> Network {
        let mut b = NetworkBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v, 0.99).unwrap();
        }
        for u in 1..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.90).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn frontier_is_monotone_after_dominance_filter() {
        let net = tradeoff_net(7);
        let pts = pareto_frontier(&net, EnergyModel::PAPER, 16).unwrap();
        assert!(pts.len() >= 3, "expected several feasible points, got {}", pts.len());
        for w in pts.windows(2) {
            assert!(w[0].lc < w[1].lc, "sweep must ascend in LC");
        }
        // IRA is approximate, so the raw sweep may wobble; the dominant
        // subset must be a strictly monotone staircase: more lifetime costs
        // strictly more.
        let kept = dominant_points(&pts);
        assert!(kept.len() >= 2, "frontier collapsed to {} points", kept.len());
        for w in kept.windows(2) {
            assert!(w[0].lifetime < w[1].lifetime);
            assert!(
                w[0].cost < w[1].cost + 1e-9,
                "dominance filter left an inversion: {} -> {}",
                w[0].cost,
                w[1].cost
            );
        }
        // The cheapest point has the highest reliability.
        assert!(kept[0].reliability >= kept.last().unwrap().reliability);
    }

    #[test]
    fn achieved_lifetime_meets_each_bound() {
        let net = tradeoff_net(6);
        let pts = pareto_frontier(&net, EnergyModel::PAPER, 12).unwrap();
        for p in &pts {
            if p.strict {
                assert!(
                    p.lifetime >= p.lc * (1.0 - 1e-9),
                    "strict point missed its bound: {} < {}",
                    p.lifetime,
                    p.lc
                );
            }
        }
    }

    #[test]
    fn dominance_filter_removes_dominated() {
        let mk = |lifetime, cost| ParetoPoint {
            lc: lifetime,
            lifetime,
            cost,
            reliability: 0.9,
            strict: true,
        };
        let pts = vec![mk(1.0, 10.0), mk(2.0, 10.0), mk(2.0, 20.0), mk(3.0, 30.0)];
        let kept = dominant_points(&pts);
        // (1.0, 10) is dominated by (2.0, 10); (2.0, 20) likewise.
        assert_eq!(kept.len(), 2);
        assert!((kept[0].lifetime - 2.0).abs() < 1e-12 && (kept[0].cost - 10.0).abs() < 1e-12);
        assert!((kept[1].lifetime - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frontier_points_are_self_consistent() {
        let net = tradeoff_net(6);
        let pts = pareto_frontier(&net, EnergyModel::PAPER, 10).unwrap();
        for p in &pts {
            // Lemma 3 on the reported pair.
            let q = PaperCost(p.cost).reliability();
            assert!((q - p.reliability).abs() < 1e-9);
        }
        let kept = dominant_points(&pts);
        assert!(!kept.is_empty());
        assert!(kept.len() <= pts.len());
    }
}

//! Algorithm 1: the Iterative Relaxation Algorithm.

use crate::formulation::{CutLp, CutLpError, CutLpOutcome, LpEdge};
use crate::problem::MrlcInstance;
use crate::separation::SeparationConfig;
use std::sync::Arc;
use wsn_lp::SolveCtx;
use wsn_model::{lifetime, AggregationTree, ModelError, NodeId};

/// Edge values at or below this are treated as `x_e = 0` (Alg. 1 line 6).
const ZERO_TOL: f64 = 1e-7;

/// Configuration knobs for IRA.
#[derive(Clone, Copy, Debug)]
pub struct IraConfig {
    /// Include the sink in the constrained set `W` (the paper's `W ← V`;
    /// set to `false` for a mains-powered sink).
    pub constrain_sink: bool,
    /// Remove every qualifying vertex per iteration instead of the paper's
    /// single vertex — equivalent output, fewer LP solves.
    pub batch_removal: bool,
    /// If `LP(G, L', V)` is infeasible, retry with `L' = LC`. This trades
    /// the hard `L(T) ≥ LC` guarantee for the paper's "optimal reliability
    /// by a little violation of lifetime" behaviour near the lifetime
    /// optimum.
    pub fallback_to_lc: bool,
    /// Keep one warm-started LP tableau alive across cut rounds and outer
    /// iterations (see [`CutLp`]); `false` rebuilds the LP cold every
    /// round, for comparison runs.
    pub warm_lp: bool,
    /// Separation-engine settings: cut batching, pool reuse, seed pruning
    /// (see [`SeparationConfig`]). The default runs the batched cut-pool
    /// engine; [`SeparationConfig::single_cut`] restores the pre-engine
    /// one-cut-per-round loop for A/B benchmarks.
    pub separation: SeparationConfig,
}

impl Default for IraConfig {
    fn default() -> Self {
        IraConfig {
            constrain_sink: true,
            batch_removal: true,
            fallback_to_lc: true,
            warm_lp: true,
            separation: SeparationConfig::default(),
        }
    }
}

/// Diagnostics accumulated during a solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct IraStats {
    /// Outer iterations of Algorithm 1 (constraint-removal rounds).
    pub iterations: usize,
    /// Inner LP solves across all cutting-plane rounds.
    pub lp_solves: usize,
    /// Subtour cuts generated.
    pub cuts_added: usize,
    /// Times the Theorem-2 guard fired (no vertex passed the exact removal
    /// test and the slackest one was removed instead). Zero on paper-scale
    /// instances; a nonzero value voids the `L(T) ≥ LC` guarantee.
    pub guard_removals: usize,
    /// The tightened bound actually used inside the LP.
    pub l_prime: f64,
    /// True if the `L' = LC` fallback was taken.
    pub relaxed_to_lc: bool,
    /// Simplex pivots across all LP solves.
    pub pivots: usize,
    /// Cutting-plane rounds across all LP solves.
    pub cut_rounds: usize,
    /// Wall time spent in the separation oracle, in milliseconds.
    pub sep_ms: f64,
    /// Cuts re-activated from the pool by a dot-product screen instead of a
    /// fresh min-cut run.
    pub pool_hits: usize,
    /// Pool screening passes performed before consulting the oracle.
    pub pool_scans: usize,
    /// Cuts added beyond the first of their round (the batching win over
    /// the single-cut baseline).
    pub cuts_batched: usize,
    /// Min-cut seeds skipped by the component-bound and covered-seed
    /// pruning short-circuits.
    pub seeds_pruned: usize,
}

/// Failure modes of IRA.
#[derive(Debug)]
pub enum IraError {
    /// No aggregation tree can meet the requested lifetime (either `L'` is
    /// undefined, or the LP is infeasible even after any configured
    /// fallback). This is the paper's "shows that there is no data
    /// aggregation tree with lifetime bounded by LC" outcome.
    LifetimeUnachievable {
        /// The requested bound.
        lc: f64,
        /// Human-readable explanation of which stage failed.
        reason: String,
    },
    /// The LP layer failed numerically.
    Lp(CutLpError),
    /// Tree assembly failed (should be unreachable on valid instances).
    Model(ModelError),
    /// The solve hit its budget (deadline, pivot or round cap) or was
    /// cancelled. The checkpoint carries the warm LP basis, the cut pool
    /// and the IRA iteration state; [`resume_ira`] continues it warm.
    Interrupted(Box<IraCheckpoint>),
}

impl std::fmt::Display for IraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IraError::LifetimeUnachievable { lc, reason } => {
                write!(f, "no aggregation tree with lifetime ≥ {lc}: {reason}")
            }
            IraError::Lp(e) => write!(f, "LP failure: {e}"),
            IraError::Model(e) => write!(f, "model failure: {e}"),
            IraError::Interrupted(cp) => write!(
                f,
                "solve interrupted after {} iteration(s); checkpoint is resumable",
                cp.iterations()
            ),
        }
    }
}

impl std::error::Error for IraError {}

/// A solved instance.
#[derive(Clone, Debug)]
pub struct IraSolution {
    /// The aggregation tree found.
    pub tree: AggregationTree,
    /// Natural-log cost `C(T)`.
    pub cost: f64,
    /// Reliability `Q(T)`.
    pub reliability: f64,
    /// Lifetime `L(T)` in rounds.
    pub lifetime: f64,
    /// True if `L(T) ≥ LC` (up to floating-point slack).
    pub meets_lc: bool,
    /// Solver diagnostics.
    pub stats: IraStats,
}

/// Runs Algorithm 1 on an instance.
pub fn solve_ira(inst: &MrlcInstance, config: &IraConfig) -> Result<IraSolution, IraError> {
    solve_ira_impl(inst, config, None)
}

/// As [`solve_ira`], under a budget/cancellation context. Budget expiry
/// and cancellation surface as [`IraError::Interrupted`] carrying a warm
/// [`IraCheckpoint`]; everything else behaves exactly like [`solve_ira`].
pub fn solve_ira_budgeted(
    inst: &MrlcInstance,
    config: &IraConfig,
    ctx: &Arc<SolveCtx>,
) -> Result<IraSolution, IraError> {
    solve_ira_impl(inst, config, Some(ctx))
}

/// Continues an interrupted solve from its checkpoint: the warm tableau,
/// the cut pool and the constraint-removal state all pick up where they
/// stopped. A `None` context removes all limits for the continuation.
pub fn resume_ira(
    inst: &MrlcInstance,
    config: &IraConfig,
    checkpoint: IraCheckpoint,
    ctx: Option<&Arc<SolveCtx>>,
) -> Result<IraSolution, IraError> {
    let IraCheckpoint { state, remaining } = checkpoint;
    run_attempts(inst, config, ctx, Some(state), remaining)
}

fn solve_ira_impl(
    inst: &MrlcInstance,
    config: &IraConfig,
    ctx: Option<&Arc<SolveCtx>>,
) -> Result<IraSolution, IraError> {
    let net = inst.network();
    let n = net.n();
    if n == 1 {
        let tree =
            AggregationTree::from_parents(NodeId::SINK, vec![None]).map_err(IraError::Model)?;
        return Ok(IraSolution {
            tree,
            cost: 0.0,
            reliability: 1.0,
            lifetime: f64::INFINITY,
            meets_lc: true,
            stats: IraStats { l_prime: inst.lc(), ..IraStats::default() },
        });
    }

    let i_min = net.min_initial_energy();
    let tightened = lifetime::tightened_bound(i_min, inst.model(), inst.lc());

    // First attempt at L' (when defined), optional fallback at LC.
    let mut attempts: Vec<(f64, bool)> = Vec::new();
    match tightened {
        Some(b) => {
            attempts.push((b.l_prime, false));
            if config.fallback_to_lc {
                attempts.push((inst.lc(), true));
            }
        }
        None => {
            if config.fallback_to_lc {
                attempts.push((inst.lc(), true));
            } else {
                return Err(IraError::LifetimeUnachievable {
                    lc: inst.lc(),
                    reason: format!(
                        "L' undefined: I_min = {i_min} ≤ 2·Rx·LC = {}",
                        2.0 * inst.model().rx * inst.lc()
                    ),
                });
            }
        }
    }

    run_attempts(inst, config, ctx, None, attempts)
}

/// Runs a resumed attempt (if any) and then the fresh fallback attempts
/// in order — the shared tail of the fresh, budgeted and resumed entry
/// points.
fn run_attempts(
    inst: &MrlcInstance,
    config: &IraConfig,
    ctx: Option<&Arc<SolveCtx>>,
    resume: Option<AttemptState>,
    attempts: Vec<(f64, bool)>,
) -> Result<IraSolution, IraError> {
    let mut last_reason = String::new();
    let mut starts: Vec<Start> = Vec::with_capacity(attempts.len() + 1);
    if let Some(state) = resume {
        starts.push(Start::Resume(Box::new(state)));
    }
    starts.extend(attempts.iter().map(|&(l_used, relaxed)| Start::Fresh { l_used, relaxed }));

    let mut queue = starts.into_iter();
    while let Some(start) = queue.next() {
        match attempt(inst, config, ctx, start) {
            Ok(sol) => return Ok(sol),
            Err(AttemptError::Infeasible(reason)) => last_reason = reason,
            Err(AttemptError::Lp(e)) => return Err(IraError::Lp(e)),
            Err(AttemptError::Model(e)) => return Err(IraError::Model(e)),
            Err(AttemptError::Interrupted(state)) => {
                let remaining: Vec<(f64, bool)> = queue
                    .filter_map(|s| match s {
                        Start::Fresh { l_used, relaxed } => Some((l_used, relaxed)),
                        Start::Resume(_) => None,
                    })
                    .collect();
                return Err(IraError::Interrupted(Box::new(IraCheckpoint {
                    state: *state,
                    remaining,
                })));
            }
        }
    }
    Err(IraError::LifetimeUnachievable { lc: inst.lc(), reason: last_reason })
}

enum AttemptError {
    Infeasible(String),
    Lp(CutLpError),
    Model(ModelError),
    /// Budget/cancellation stop; the state resumes the attempt warm.
    Interrupted(Box<AttemptState>),
}

/// Where an attempt begins: a fresh bound, or a checkpointed mid-solve
/// state.
enum Start {
    Fresh { l_used: f64, relaxed: bool },
    Resume(Box<AttemptState>),
}

/// Everything one attempt needs to continue after an interruption. The
/// embedded [`CutLp`] carries the warm simplex basis and the cut pool, so
/// a resumed attempt re-enters the cutting-plane loop without a cold
/// rebuild or any lost cuts.
#[derive(Clone, Debug)]
struct AttemptState {
    l_used: f64,
    relaxed: bool,
    caps: Vec<f64>,
    w_set: Vec<bool>,
    active: Vec<bool>,
    cut: CutLp,
    stats: IraStats,
}

/// A resumable snapshot of an interrupted solve: the warm LP basis and
/// cut pool (inside the embedded solver state), the surviving edge and
/// constraint sets, the iteration statistics, and any fallback attempts
/// not yet tried. Produced by [`IraError::Interrupted`], consumed by
/// [`resume_ira`].
#[derive(Clone, Debug)]
pub struct IraCheckpoint {
    state: AttemptState,
    remaining: Vec<(f64, bool)>,
}

impl IraCheckpoint {
    /// Outer IRA iterations completed before the interruption.
    pub fn iterations(&self) -> usize {
        self.state.stats.iterations
    }

    /// The lifetime bound the interrupted attempt was solving under.
    pub fn l_prime(&self) -> f64 {
        self.state.l_used
    }

    /// Lifetime constraints still enforced (|W| at the interruption).
    pub fn constrained_nodes(&self) -> usize {
        self.state.w_set.iter().filter(|&&b| b).count()
    }

    /// Edges still active in the LP support.
    pub fn active_edges(&self) -> usize {
        self.state.active.iter().filter(|&&b| b).count()
    }

    /// Subtour cuts parked in the checkpointed pool.
    pub fn pool_size(&self) -> usize {
        self.state.cut.pool_size()
    }

    /// Fallback attempts (bound, relaxed-flag) not yet tried.
    pub fn remaining_attempts(&self) -> usize {
        self.remaining.len()
    }
}

fn attempt(
    inst: &MrlcInstance,
    config: &IraConfig,
    ctx: Option<&Arc<SolveCtx>>,
    start: Start,
) -> Result<IraSolution, AttemptError> {
    let net = inst.network();
    let model = inst.model();
    let n = net.n();
    let (resumed, l_used, relaxed) = match &start {
        Start::Fresh { l_used, relaxed } => (false, *l_used, *relaxed),
        Start::Resume(state) => (true, state.l_used, state.relaxed),
    };
    let _span = wsn_obs::span_with(
        "ira-attempt",
        vec![wsn_obs::field("n", n), wsn_obs::field("relaxed", relaxed)],
    );
    if relaxed && !resumed {
        wsn_obs::event("ira.relaxed_to_lc", vec![wsn_obs::field("lc", inst.lc())]);
    }

    let mut st = match start {
        Start::Resume(state) => {
            wsn_obs::event(
                "ira.resumed",
                vec![wsn_obs::field("iterations", state.stats.iterations)],
            );
            *state
        }
        Start::Fresh { .. } => {
            // Fractional degree caps β_v at the working bound.
            let mut caps = vec![f64::INFINITY; n];
            let mut w_set: Vec<bool> = vec![false; n];
            for i in 0..n {
                let v = NodeId::new(i);
                if v == NodeId::SINK && !config.constrain_sink {
                    continue;
                }
                let beta =
                    lifetime::degree_cap(net.initial_energy(v), model, l_used, v == NodeId::SINK);
                if beta < 1.0 - 1e-9 {
                    return Err(AttemptError::Infeasible(format!(
                        "node {v} cannot hold even one tree edge at bound {l_used:.3e} (β = {beta:.3})"
                    )));
                }
                // Caps beyond n−1 are vacuous in any simple spanning tree.
                caps[i] = beta.min(n as f64 - 1.0);
                w_set[i] = true;
            }
            AttemptState {
                l_used,
                relaxed,
                caps,
                w_set,
                active: vec![true; net.num_edges()],
                cut: CutLp::with_config(config.warm_lp, config.separation),
                stats: IraStats { l_prime: l_used, relaxed_to_lc: relaxed, ..IraStats::default() },
            }
        }
    };
    st.cut.set_ctx(ctx.cloned());

    while st.w_set.iter().any(|&b| b) {
        if let Some(ctx) = ctx {
            if ctx.is_cancelled() || ctx.is_expired() {
                return Err(AttemptError::Interrupted(Box::new(st)));
            }
        }
        st.stats.iterations += 1;

        let edges: Vec<LpEdge> = net
            .edges()
            .filter(|(e, _)| st.active[e.index()])
            .map(|(e, l)| LpEdge {
                u: l.u().index(),
                v: l.v().index(),
                cost: l.cost(),
                tag: e.index(),
            })
            .collect();
        let cap_list: Vec<(usize, f64)> =
            (0..n).filter(|&i| st.w_set[i]).map(|i| (i, st.caps[i])).collect();

        let x = match st.cut.solve(n, &edges, &cap_list) {
            Err(CutLpError::Interrupted) => {
                st.stats.iterations -= 1; // the iteration did not complete
                return Err(AttemptError::Interrupted(Box::new(st)));
            }
            Err(e) => return Err(AttemptError::Lp(e)),
            Ok(CutLpOutcome::Infeasible) => {
                return Err(AttemptError::Infeasible(format!(
                    "LP(G, {l_used:.3e}, W) infeasible with |W| = {}",
                    cap_list.len()
                )));
            }
            Ok(CutLpOutcome::Optimal { x, .. }) => x,
        };
        // Snapshot the registry-backed counters into the Copy struct the
        // experiment tables consume (fig8 renders these verbatim).
        st.stats.lp_solves = st.cut.lp_solves();
        st.stats.cuts_added = st.cut.cuts_added();
        st.stats.pivots = st.cut.pivots();
        st.stats.cut_rounds = st.cut.cut_rounds();
        st.stats.sep_ms = st.cut.sep_time().as_secs_f64() * 1e3;
        st.stats.pool_hits = st.cut.pool_hits();
        st.stats.pool_scans = st.cut.pool_scans();
        st.stats.cuts_batched = st.cut.cuts_batched();
        st.stats.seeds_pruned = st.cut.seeds_pruned();

        // Line 6: drop x_e = 0 edges.
        for (edge, &xv) in edges.iter().zip(&x) {
            if xv <= ZERO_TOL {
                st.active[edge.tag] = false;
            }
        }

        // Line 8: remove lifetime constraints that can no longer bind —
        // worst-case lifetime over the support already meets LC.
        let mut deg = vec![0usize; n];
        for (e, l) in net.edges() {
            if st.active[e.index()] {
                deg[l.u().index()] += 1;
                deg[l.v().index()] += 1;
            }
        }
        let mut removed = 0usize;
        for (i, &d) in deg.iter().enumerate() {
            if !st.w_set[i] {
                continue;
            }
            let v = NodeId::new(i);
            let wc = inst.worst_case_lifetime(v, d);
            if wc >= inst.lc() * (1.0 - 1e-12) {
                st.w_set[i] = false;
                removed += 1;
                if !config.batch_removal {
                    break;
                }
            }
        }
        if removed > 0 {
            wsn_obs::event(
                "ira.constraints_dropped",
                vec![
                    wsn_obs::field("iteration", st.stats.iterations),
                    wsn_obs::field("removed", removed),
                ],
            );
        } else {
            // Theorem 2 guarantees a removable vertex under exact
            // arithmetic; numerically, remove the slackest vertex and count
            // the event. `total_cmp` keeps the selection well-defined even
            // if a lifetime evaluates to NaN under corrupted numerics.
            let slackest = (0..n)
                .filter(|&i| st.w_set[i])
                .max_by(|&a, &b| {
                    let la = inst.worst_case_lifetime(NodeId::new(a), deg[a]);
                    let lb = inst.worst_case_lifetime(NodeId::new(b), deg[b]);
                    la.total_cmp(&lb)
                })
                .expect("W is nonempty inside the loop");
            st.w_set[slackest] = false;
            st.stats.guard_removals += 1;
            wsn_obs::warn(
                "ira.guard_removal",
                vec![
                    wsn_obs::field("iteration", st.stats.iterations),
                    wsn_obs::field("node", slackest),
                ],
            );
        }
    }

    // W = ∅: the LP is the subtour LP whose extreme points are spanning
    // trees (Lemma 1). The minimum spanning tree of the remaining support
    // attains the same optimum and is numerically robust.
    let decode_start = std::time::Instant::now();
    let decode_span = wsn_obs::span("decode");
    let wedges: Vec<wsn_graph::WeightedEdge> = net
        .edges()
        .filter(|(e, _)| st.active[e.index()])
        .map(|(e, l)| wsn_graph::WeightedEdge {
            u: l.u().index(),
            v: l.v().index(),
            w: l.cost(),
            id: e.index(),
        })
        .collect();
    let chosen = wsn_graph::prim(n, &wedges).ok_or_else(|| {
        AttemptError::Infeasible("support graph lost connectivity (numerical)".into())
    })?;
    let tree_edges: Vec<(NodeId, NodeId)> =
        chosen.iter().map(|&id| net.links()[id].endpoints()).collect();
    let tree =
        AggregationTree::from_edges(NodeId::SINK, n, &tree_edges).map_err(AttemptError::Model)?;

    let cost = inst.cost(&tree);
    let reliability = inst.reliability(&tree);
    let lt = inst.lifetime(&tree);
    drop(decode_span);
    if let Some(obs) = wsn_obs::current() {
        obs.registry().counter("ira.decode_ns").add(decode_start.elapsed().as_nanos() as u64);
    }
    Ok(IraSolution {
        meets_lc: lt >= inst.lc() * (1.0 - 1e-9),
        tree,
        cost,
        reliability,
        lifetime: lt,
        stats: st.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::{EnergyModel, Network, NetworkBuilder};

    /// Builds a network where all edges to the sink are cheapest — the MST
    /// is the star at the sink, which concentrates children there.
    fn starry(n: usize) -> Network {
        let mut b = NetworkBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v, 0.99).unwrap();
        }
        for u in 1..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.90).unwrap();
            }
        }
        b.build().unwrap()
    }

    /// All spanning trees by brute force; returns (cost, lifetime) pairs.
    fn enumerate_trees(inst: &MrlcInstance) -> Vec<(f64, f64)> {
        let net = inst.network();
        let n = net.n();
        let m = net.num_edges();
        assert!(m <= 20, "brute force only for tiny graphs");
        let mut out = Vec::new();
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| net.links()[i].endpoints())
                .collect();
            if let Ok(tree) = AggregationTree::from_edges(NodeId::SINK, n, &edges) {
                out.push((inst.cost(&tree), inst.lifetime(&tree)));
            }
        }
        out
    }

    fn brute_opt_cost(inst: &MrlcInstance, bound: f64) -> Option<f64> {
        enumerate_trees(inst)
            .into_iter()
            .filter(|&(_, l)| l >= bound * (1.0 - 1e-12))
            .map(|(c, _)| c)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    fn brute_max_lifetime(inst: &MrlcInstance) -> f64 {
        enumerate_trees(inst).into_iter().map(|(_, l)| l).fold(0.0, f64::max)
    }

    #[test]
    fn loose_lc_reduces_to_mst() {
        let net = starry(5);
        // LC so small every tree qualifies and constraints are vacuous.
        let inst = MrlcInstance::new(net, EnergyModel::PAPER, 10.0).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.meets_lc);
        assert_eq!(sol.stats.guard_removals, 0);
        let mst = brute_opt_cost(&inst, 0.0).unwrap();
        assert!((sol.cost - mst).abs() < 1e-9, "IRA {} vs MST {}", sol.cost, mst);
        // The star at the sink is the MST here.
        assert_eq!(sol.tree.num_children(NodeId::SINK), 4);
    }

    #[test]
    fn tight_lc_forces_load_spreading() {
        let net = starry(6);
        let model = EnergyModel::PAPER;
        // Demand a lifetime achievable only if the sink has ≤ 4 children —
        // the MST (star, 5 children) violates it, and the bound leaves the
        // two-children slack the L' tightening consumes.
        let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.meets_lc, "lifetime {} < LC {lc}", sol.lifetime);
        assert!(!sol.stats.relaxed_to_lc, "L' must be feasible here");
        assert!(sol.tree.num_children(NodeId::SINK) <= 4);
        // Paper guarantee: cost ≤ OPT(L'), cost ≥ OPT(LC).
        let opt_lc = brute_opt_cost(&inst, lc).unwrap();
        let l_prime = sol.stats.l_prime;
        let opt_lp = brute_opt_cost(&inst, l_prime).unwrap();
        assert!(sol.cost >= opt_lc - 1e-9);
        assert!(sol.cost <= opt_lp + 1e-9, "IRA {} vs OPT(L') {}", sol.cost, opt_lp);
        // And strictly more expensive than the unconstrained MST.
        let mst = brute_opt_cost(&inst, 0.0).unwrap();
        assert!(sol.cost > mst + 1e-9);
    }

    #[test]
    fn unachievable_lc_is_reported() {
        let net = starry(4);
        // Beyond even a leaf's lifetime.
        let lc = 3000.0 / EnergyModel::PAPER.tx * 10.0;
        let inst = MrlcInstance::new(net, EnergyModel::PAPER, lc).unwrap();
        let err = solve_ira(&inst, &IraConfig::default()).unwrap_err();
        assert!(matches!(err, IraError::LifetimeUnachievable { .. }));
    }

    #[test]
    fn near_optimal_lc_uses_fallback_or_succeeds() {
        let net = starry(5);
        let model = EnergyModel::PAPER;
        let inst0 = MrlcInstance::new(net.clone(), model, 1.0).unwrap();
        let max_l = brute_max_lifetime(&inst0);
        // Ask for 99.9% of the absolute optimum: L' will typically be
        // infeasible, the LC fallback must kick in — this is the paper's
        // "optimal reliability by a little violation of lifetime" regime,
        // so the LC guarantee softens to an additive children-count slack.
        let inst = MrlcInstance::new(net, model, max_l * 0.999).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.stats.relaxed_to_lc, "the fallback should have engaged");
        // The violation is bounded: at most two extra children at the
        // bottleneneck, i.e. lifetime ≥ I_min/(Tx + Rx·(Ch_LC + 2)).
        let floor = lifetime::node_lifetime(
            3000.0,
            &model,
            lifetime::children_bound(3000.0, &model, max_l * 0.999).floor() as usize + 2,
        );
        assert!(
            sol.lifetime >= floor * (1.0 - 1e-9),
            "lifetime {} below the +2-children floor {}",
            sol.lifetime,
            floor
        );
    }

    #[test]
    fn strict_mode_rejects_near_optimal_lc() {
        let net = starry(5);
        let model = EnergyModel::PAPER;
        let inst0 = MrlcInstance::new(net.clone(), model, 1.0).unwrap();
        let max_l = brute_max_lifetime(&inst0);
        let inst = MrlcInstance::new(net, model, max_l * 0.9999).unwrap();
        let cfg = IraConfig { fallback_to_lc: false, ..IraConfig::default() };
        match solve_ira(&inst, &cfg) {
            // Either the strict bound is provably unreachable…
            Err(IraError::LifetimeUnachievable { .. }) => {}
            // …or the instance still admits it; then the guarantee is hard.
            Ok(sol) => assert!(sol.meets_lc),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn unconstrained_sink_config() {
        let net = starry(6);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 2) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let cfg = IraConfig { constrain_sink: false, ..IraConfig::default() };
        let sol = solve_ira(&inst, &cfg).unwrap();
        // With a mains-powered sink the star is permissible again.
        assert_eq!(sol.tree.num_children(NodeId::SINK), 5);
        // Every non-sink node still meets LC.
        for i in 1..6 {
            let v = NodeId::new(i);
            let l = lifetime::node_lifetime(3000.0, &model, sol.tree.num_children(v));
            assert!(l >= lc * (1.0 - 1e-9));
        }
    }

    #[test]
    fn single_vertex_removal_matches_batch() {
        let net = starry(6);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 2) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let batch = solve_ira(&inst, &IraConfig::default()).unwrap();
        let single =
            solve_ira(&inst, &IraConfig { batch_removal: false, ..IraConfig::default() }).unwrap();
        assert!((batch.cost - single.cost).abs() < 1e-9);
        assert!(single.stats.iterations >= batch.stats.iterations);
    }

    #[test]
    fn warm_and_cold_lp_agree_end_to_end() {
        // The LP optimum can be degenerate, so warm and cold runs may pick
        // different optimal extreme points and walk to different (equally
        // valid) trees. What must agree: feasibility, the LC guarantee, and
        // the paper's cost sandwich OPT(LC) ≤ cost ≤ OPT(L').
        let net = starry(6);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let warm = solve_ira(&inst, &IraConfig::default()).unwrap();
        let cold = solve_ira(&inst, &IraConfig { warm_lp: false, ..IraConfig::default() }).unwrap();
        assert_eq!(warm.meets_lc, cold.meets_lc);
        assert_eq!(warm.stats.relaxed_to_lc, cold.stats.relaxed_to_lc);
        let opt_lc = brute_opt_cost(&inst, lc).unwrap();
        for sol in [&warm, &cold] {
            assert!(sol.cost >= opt_lc - 1e-9, "cost {} below OPT(LC) {}", sol.cost, opt_lc);
            let opt_lp = brute_opt_cost(&inst, sol.stats.l_prime).unwrap();
            assert!(sol.cost <= opt_lp + 1e-9, "cost {} above OPT(L') {}", sol.cost, opt_lp);
        }
        assert!(warm.stats.pivots > 0 && cold.stats.pivots > 0);
        assert!(warm.stats.cut_rounds >= warm.stats.lp_solves);
    }

    #[test]
    fn single_node_network() {
        // Single node: no links needed, lifetime infinite.
        let mut b = NetworkBuilder::new(1);
        b.set_uniform_energy(3000.0).unwrap();
        let net = b.build().unwrap();
        let inst = MrlcInstance::new(net, EnergyModel::PAPER, 1e6).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.meets_lc);
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn heterogeneous_energy_protects_weak_nodes() {
        // Node 1 has little energy; cheap edges pull traffic through it.
        let mut b = NetworkBuilder::new(5);
        b.add_edge(0, 1, 0.999).unwrap();
        b.add_edge(1, 2, 0.999).unwrap();
        b.add_edge(1, 3, 0.999).unwrap();
        b.add_edge(1, 4, 0.999).unwrap();
        b.add_edge(0, 2, 0.95).unwrap();
        b.add_edge(0, 3, 0.95).unwrap();
        b.add_edge(2, 4, 0.95).unwrap();
        b.set_energy(NodeId::new(1), 400.0).unwrap();
        let net = b.build().unwrap();
        let model = EnergyModel::PAPER;
        // LC that node 1 can only meet with ≤ 3 children (so the tightened
        // bound L' still allows it one child); the cheap star at node 1
        // would give it 3 children + relay duty, pushing it to the limit.
        let lc = lifetime::node_lifetime(400.0, &model, 3) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.meets_lc, "lifetime {} < {lc}", sol.lifetime);
        assert!(sol.tree.num_children(NodeId::new(1)) <= 3);
        // Healthy nodes are unconstrained at this LC (their bound is ~22
        // children), so the solver must not have degraded their edges.
        assert!(!sol.stats.relaxed_to_lc);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_instance() -> impl Strategy<Value = (MrlcInstance, f64)> {
            // n in 4..=6, random extra edges over a guaranteed-connected
            // path, PRRs in (0.5, 1), energies in [1000, 5000].
            (4usize..7).prop_flat_map(|n| {
                let spine_q = proptest::collection::vec(50u32..100, n - 1);
                let extra = proptest::collection::vec((0usize..6, 0usize..6, 50u32..100), 0..6);
                let energy = proptest::collection::vec(1000u32..5000, n);
                let frac = 1u32..95u32;
                (Just(n), spine_q, extra, energy, frac).prop_map(
                    |(n, spine, extra, energy, frac)| {
                        let mut b = NetworkBuilder::new(n);
                        for (i, q) in spine.iter().enumerate() {
                            b.add_edge(i, i + 1, *q as f64 / 100.0).unwrap();
                        }
                        for (u, v, q) in extra {
                            if u < n && v < n && u != v {
                                let _ = b.add_edge(u, v, q as f64 / 100.0);
                            }
                        }
                        for (i, e) in energy.iter().enumerate() {
                            b.set_energy(NodeId::new(i), *e as f64).unwrap();
                        }
                        let net = b.build().unwrap();
                        let inst = MrlcInstance::new(net, EnergyModel::PAPER, 1.0).unwrap();
                        (inst, frac as f64 / 100.0)
                    },
                )
            })
        }

        /// Like [`arb_instance`], but with a per-edge jitter on the
        /// quantized PRRs so edge costs are pairwise distinct. Generic
        /// costs give the LP a unique optimum at every IRA iteration, so
        /// every terminating separation strategy must walk the same
        /// support sequence and decode the exact same tree — the property
        /// the engine A/B proptest pins.
        fn arb_generic_instance() -> impl Strategy<Value = (MrlcInstance, f64)> {
            (4usize..7).prop_flat_map(|n| {
                let spine_q = proptest::collection::vec(50u32..100, n - 1);
                let extra = proptest::collection::vec((0usize..6, 0usize..6, 50u32..100), 0..6);
                let energy = proptest::collection::vec(1000u32..5000, n);
                let frac = 1u32..95u32;
                (Just(n), spine_q, extra, energy, frac).prop_map(
                    |(n, spine, extra, energy, frac)| {
                        let mut b = NetworkBuilder::new(n);
                        let mut serial = 0u32;
                        let mut jitter = |k: u32| {
                            serial += 1;
                            // ≤ 2e-4 of skew: never crosses the 1e-2 PRR
                            // quantum, always separates equal quanta.
                            k as f64 / 100.0 + serial as f64 * 1e-5
                        };
                        for (i, q) in spine.iter().enumerate() {
                            b.add_edge(i, i + 1, jitter(*q)).unwrap();
                        }
                        for (u, v, q) in extra {
                            if u < n && v < n && u != v {
                                let _ = b.add_edge(u, v, jitter(q));
                            }
                        }
                        for (i, e) in energy.iter().enumerate() {
                            b.set_energy(NodeId::new(i), *e as f64).unwrap();
                        }
                        let net = b.build().unwrap();
                        let inst = MrlcInstance::new(net, EnergyModel::PAPER, 1.0).unwrap();
                        (inst, frac as f64 / 100.0)
                    },
                )
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]
            #[test]
            fn ira_is_sandwiched_by_brute_force((inst0, frac) in arb_instance()) {
                // Choose LC as a fraction of the best achievable lifetime so
                // the instance is always feasible at LC.
                let max_l = brute_max_lifetime(&inst0);
                prop_assume!(max_l.is_finite() && max_l > 0.0);
                let lc = max_l * frac;
                let inst = MrlcInstance::new(
                    inst0.network().clone(), *inst0.model(), lc).unwrap();
                // Strict mode: success means the full Theorem-2 guarantee.
                let cfg = IraConfig { fallback_to_lc: false, ..IraConfig::default() };
                let sol = match solve_ira(&inst, &cfg) {
                    Ok(s) => s,
                    // LC within the 2-children band of the optimum: the
                    // strict algorithm legitimately reports unachievable.
                    Err(IraError::LifetimeUnachievable { .. }) => return Ok(()),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                };
                prop_assert_eq!(sol.stats.guard_removals, 0,
                    "Theorem 2 guard fired on a tiny instance");
                prop_assert!(sol.meets_lc,
                    "lifetime {} < LC {}", sol.lifetime, lc);
                let opt_lc = brute_opt_cost(&inst, lc).unwrap();
                prop_assert!(sol.cost >= opt_lc - 1e-7,
                    "cost {} below OPT(LC) {}", sol.cost, opt_lc);
                let opt_lp = brute_opt_cost(&inst, sol.stats.l_prime)
                    .unwrap_or(f64::INFINITY);
                prop_assert!(sol.cost <= opt_lp + 1e-7,
                    "cost {} above OPT(L') {}", sol.cost, opt_lp);
            }

            #[test]
            fn pooled_engine_reproduces_single_cut_trees(
                (inst0, frac) in arb_generic_instance()
            ) {
                let max_l = brute_max_lifetime(&inst0);
                prop_assume!(max_l.is_finite() && max_l > 0.0);
                let lc = max_l * frac;
                let inst = MrlcInstance::new(
                    inst0.network().clone(), *inst0.model(), lc).unwrap();
                let engine = IraConfig::default();
                let single = IraConfig {
                    separation: SeparationConfig::single_cut(),
                    ..IraConfig::default()
                };
                match (solve_ira(&inst, &engine), solve_ira(&inst, &single)) {
                    (Ok(a), Ok(b)) => {
                        let n = inst.network().n();
                        let pa: Vec<Option<NodeId>> =
                            (0..n).map(|v| a.tree.parent(NodeId::new(v))).collect();
                        let pb: Vec<Option<NodeId>> =
                            (0..n).map(|v| b.tree.parent(NodeId::new(v))).collect();
                        prop_assert_eq!(pa, pb, "engine and single-cut trees differ");
                        prop_assert!((a.cost - b.cost).abs() < 1e-9);
                        prop_assert!((a.reliability - b.reliability).abs() < 1e-9);
                        prop_assert!((a.lifetime - b.lifetime).abs() < 1e-9);
                        prop_assert_eq!(a.meets_lc, b.meets_lc);
                    }
                    (Err(IraError::LifetimeUnachievable { .. }),
                     Err(IraError::LifetimeUnachievable { .. })) => {}
                    (a, b) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome mismatch: engine {:?} vs single-cut {:?}",
                            a.map(|s| s.cost), b.map(|s| s.cost))));
                    }
                }
            }
        }
    }
}

//! Bounds on the two objectives: the MST cost floor and the achievable
//! lifetime ceiling.
//!
//! The paper uses the MST as the lower bound on any MRLC optimum ("The
//! optimal solution of MRLC should be at least the cost of MST"). For the
//! lifetime axis we add the complementary tool: the largest `LC` for which
//! the *fractional* `LP(G, LC, V)` is feasible upper-bounds the best
//! integral lifetime, while AAML provides the constructive lower bound —
//! together they bracket the feasibility frontier that Fig. 7's
//! `LC`-multiplier sweep probes.

use crate::formulation::{CutLp, CutLpError, CutLpOutcome, LpEdge};
use wsn_model::{lifetime, EnergyModel, Network, NodeId};

/// Brackets on the maximum achievable network lifetime.
#[derive(Clone, Copy, Debug)]
pub struct LifetimeBounds {
    /// Largest candidate lifetime with a feasible fractional LP — an upper
    /// bound on what any tree can achieve.
    pub fractional_upper: f64,
    /// Lifetime of the AAML tree — a constructive lower bound.
    pub heuristic_lower: f64,
}

/// Every value the network lifetime can possibly take: `L(v, k)` for each
/// node `v` and children count `k ∈ 0..n−1`, deduplicated and sorted
/// descending.
pub fn candidate_lifetimes(net: &Network, model: &EnergyModel) -> Vec<f64> {
    let n = net.n();
    let mut vals: Vec<f64> = (0..n)
        .flat_map(|i| {
            let e = net.initial_energy(NodeId::new(i));
            (0..n).map(move |k| e / (model.tx + model.rx * k as f64))
        })
        .collect();
    // total_cmp: energies/rates are validated finite, but a pathological
    // model must at worst produce a misordered list — never a panic.
    vals.sort_by(|a, b| b.total_cmp(a));
    vals.dedup_by(|a, b| (*a - *b).abs() < 1e-9 * b.abs());
    vals
}

/// Is the fractional `LP(G, bound, V)` feasible?
fn fractionally_feasible(
    net: &Network,
    model: &EnergyModel,
    bound: f64,
) -> Result<bool, CutLpError> {
    let n = net.n();
    let mut caps = Vec::with_capacity(n);
    for i in 0..n {
        let v = NodeId::new(i);
        let beta = lifetime::degree_cap(net.initial_energy(v), model, bound, v == NodeId::SINK);
        if beta < 1.0 - 1e-9 {
            return Ok(false);
        }
        caps.push((i, beta.min(n as f64 - 1.0)));
    }
    let edges: Vec<LpEdge> = net
        .edges()
        .map(|(e, l)| LpEdge { u: l.u().index(), v: l.v().index(), cost: l.cost(), tag: e.index() })
        .collect();
    let mut cut = CutLp::new();
    Ok(matches!(cut.solve(n, &edges, &caps)?, CutLpOutcome::Optimal { .. }))
}

/// Brackets the maximum achievable lifetime: binary search over the finite
/// candidate set for the fractional ceiling, AAML-equivalent local search
/// for the constructive floor.
pub fn lifetime_bounds(net: &Network, model: &EnergyModel) -> Result<LifetimeBounds, CutLpError> {
    let candidates = candidate_lifetimes(net, model);
    // Feasibility is monotone: a larger bound only tightens the caps, so
    // binary-search the first feasible candidate in descending order.
    let mut lo = 0usize; // invariant: all indices < lo are infeasible
    let mut hi = candidates.len(); // invariant: hi - 1 ... must be checked
                                   // First, ensure the loosest candidate is feasible at all (it always is:
                                   // the smallest positive lifetime gives caps ≥ n − 1).
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Shade the bound down a hair so the tree *attaining* the candidate
        // value still passes the strict cap comparison.
        if fractionally_feasible(net, model, candidates[mid] * (1.0 - 1e-12))? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let fractional_upper = candidates.get(lo).copied().unwrap_or(0.0);

    // Constructive floor: the best of BFS-tree local search (AAML) — reuse
    // the baseline through a minimal inline dependency-free reimplementation
    // is pointless; callers who want AAML's exact tree should call
    // `wsn_baselines::aaml_tree`. Here the MST's lifetime suffices as a
    // valid (weaker) constructive bound without a dependency cycle.
    let mst = wsn_graph::mst_tree(net).map_err(|_| CutLpError::StalledCut)?;
    let heuristic_lower = lifetime::network_lifetime(net, &mst, model);
    Ok(LifetimeBounds { fractional_upper, heuristic_lower })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    fn complete(n: usize) -> Network {
        let mut b = NetworkBuilder::new(n);
        for u in 0..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.95).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn candidates_are_sorted_and_complete() {
        let net = complete(5);
        let model = EnergyModel::PAPER;
        let c = candidate_lifetimes(&net, &model);
        // Equal energies: exactly n distinct values (k = 0..n−1).
        assert_eq!(c.len(), 5);
        for w in c.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!((c[0] - lifetime::node_lifetime(3000.0, &model, 0)).abs() < 1.0);
    }

    #[test]
    fn complete_graph_ceiling_is_one_child() {
        // On K6 a Hamiltonian path gives everyone ≤ 1 child; nothing can do
        // better (the sink needs a child; someone must relay... in fact the
        // sink could have 1 child and that child n−2? No — fractional LP
        // knows the ceiling is L(1)).
        let net = complete(6);
        let model = EnergyModel::PAPER;
        let b = lifetime_bounds(&net, &model).unwrap();
        let l1 = lifetime::node_lifetime(3000.0, &model, 1);
        assert!(
            (b.fractional_upper - l1).abs() < 1.0,
            "ceiling {} vs L(1 child) {}",
            b.fractional_upper,
            l1
        );
        assert!(b.heuristic_lower <= b.fractional_upper * (1.0 + 1e-9));
    }

    #[test]
    fn star_topology_ceiling_is_the_hub() {
        // A physical star: the hub must parent everyone.
        let mut b = NetworkBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v, 0.95).unwrap();
        }
        let net = b.build().unwrap();
        let model = EnergyModel::PAPER;
        let bounds = lifetime_bounds(&net, &model).unwrap();
        let hub = lifetime::node_lifetime(3000.0, &model, 4);
        assert!(
            (bounds.fractional_upper - hub).abs() < 1.0,
            "star ceiling {} vs hub {}",
            bounds.fractional_upper,
            hub
        );
        // The MST on a star IS the star, so the bracket is tight here.
        assert!((bounds.heuristic_lower - hub).abs() < 1.0);
    }

    #[test]
    fn bounds_bracket_ira() {
        use crate::ira::{solve_ira, IraConfig};
        use crate::problem::MrlcInstance;
        let net = complete(6);
        let model = EnergyModel::PAPER;
        let b = lifetime_bounds(&net, &model).unwrap();
        // IRA at 90% of the floor must succeed and sit inside the bracket.
        let inst = MrlcInstance::new(net, model, b.heuristic_lower * 0.9).unwrap();
        let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(sol.lifetime <= b.fractional_upper * (1.0 + 1e-9));
    }
}

//! Deadline-bounded resilient solve pipeline: the **degradation ladder**.
//!
//! [`solve_resilient`] wraps the exact IRA pipeline in a [`SolveBudget`] and
//! guarantees a graceful answer under any failure the budget or the fault
//! injector can produce:
//!
//! 1. **Exact** — [`solve_ira_budgeted`] under the caller's budget. Success
//!    carries the paper's `C(T) ≤ OPT(L')` certificate.
//! 2. **Resumed** — an interrupted solve (deadline, pivot/round cap, or a
//!    cooperative cancellation triggered by an injected oracle timeout)
//!    leaves an [`IraCheckpoint`] with the warm LP basis and cut pool;
//!    one continuation attempt runs under a fresh sub-budget.
//! 3. **Approximate** — numerical failures past what the sentinels can
//!    repair, or a second interruption, fall through to the Lagrangian
//!    degree-bounded MST ([`lagrangian_dbmst`]) whose dual bound certifies
//!    the reported gap, with AAML local search as the final rung. Neither
//!    touches the LP layer, so this tier is immune to every injected
//!    solver fault.
//!
//! Every rung returns a spanning tree with a finite reported gap; only a
//! genuinely `LC`-infeasible (or disconnected) instance yields an error,
//! and nothing in the ladder panics.

use std::sync::Arc;

use wsn_lp::{FaultKind, SolveBudget, SolveCtx};
use wsn_model::AggregationTree;

use crate::ira::{resume_ira, solve_ira_budgeted, IraCheckpoint, IraConfig, IraError, IraSolution};
use crate::lagrangian::{lagrangian_dbmst, LagrangianConfig};
use crate::problem::MrlcInstance;

/// Which rung of the degradation ladder produced the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveTier {
    /// IRA closed within the original budget.
    Exact,
    /// IRA was interrupted and the checkpoint continuation closed.
    Resumed,
    /// The Lagrangian / AAML approximate pipeline produced the tree.
    Approximate,
}

impl SolveTier {
    fn as_str(self) -> &'static str {
        match self {
            SolveTier::Exact => "exact",
            SolveTier::Resumed => "resumed",
            SolveTier::Approximate => "approximate",
        }
    }
}

impl std::fmt::Display for SolveTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The ladder's answer: always a feasible tree, always a finite gap.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The aggregation tree. Meets `LC` on every rung (the approximate
    /// rungs only accept `LC`-feasible trees).
    pub tree: AggregationTree,
    /// Which rung produced it.
    pub tier: SolveTier,
    /// Certified relative optimality gap. `0.0` on the exact/resumed rungs
    /// (the `C(T) ≤ OPT(L')` guarantee); on the approximate rung it is
    /// measured against the Lagrangian dual bound, falling back to the
    /// degree-free MST bound. Always finite and non-negative.
    pub gap: f64,
    /// Human-readable account of how the ladder got here.
    pub why: String,
    /// Natural-log cost `C(T)`.
    pub cost: f64,
    /// Network lifetime `L(T)` in rounds.
    pub lifetime: f64,
}

/// Ladder tuning knobs.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// IRA configuration used by the exact and resumed rungs.
    pub ira: IraConfig,
    /// Subgradient configuration for the approximate rung.
    pub lagrangian: LagrangianConfig,
    /// Fraction of the original wall allowance granted to the checkpoint
    /// continuation (caps and deadline scale together).
    pub resume_fraction: f64,
    /// Chaos injections armed on the primary solve context (one-shot; the
    /// continuation context is not re-armed). Empty in production.
    pub faults: Vec<(FaultKind, u64)>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            ira: IraConfig::default(),
            lagrangian: LagrangianConfig::default(),
            resume_fraction: 0.5,
            faults: Vec::new(),
        }
    }
}

/// The only unrecoverable outcome: the instance itself has no answer.
#[derive(Clone, Debug)]
pub enum ResilienceError {
    /// No aggregation tree meets the lifetime bound (or the network is
    /// disconnected), so no rung can produce a feasible tree.
    Infeasible {
        /// The requested bound.
        lc: f64,
        /// Which rung(s) established infeasibility.
        reason: String,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::Infeasible { lc, reason } => {
                write!(f, "no feasible tree with lifetime ≥ {lc}: {reason}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Runs the degradation ladder under `budget`.
///
/// Never panics: every failure class — deadline expiry, pivot/round caps,
/// cooperative cancellation, sentinel-detected numerical corruption, and
/// each injected fault — lands on a feasible [`SolveOutcome`] whose `tier`
/// and `why` record the path taken. Only a genuinely infeasible instance
/// returns [`ResilienceError::Infeasible`].
pub fn solve_resilient(
    inst: &MrlcInstance,
    config: &ResilienceConfig,
    budget: SolveBudget,
) -> Result<SolveOutcome, ResilienceError> {
    let ctx = budget.start();
    match solve_resilient_ctx(inst, config, budget, &ctx, None)? {
        ResilientRun::Done(out) => Ok(out),
        // The context is private to this call, so nobody can have asked
        // for a handback.
        ResilientRun::Handback(_) => unreachable!("handback requires an external ctx"),
    }
}

/// A run driven through an external context: either a finished ladder
/// outcome, or — when the caller requested a handback mid-solve — the
/// interrupted attempt's checkpoint for a later [`resume_ira`].
#[derive(Debug)]
pub enum ResilientRun {
    /// The ladder terminated normally.
    Done(SolveOutcome),
    /// [`SolveCtx::request_handback`] fired while the exact/resumed rungs
    /// were running; the warm checkpoint is returned instead of being
    /// consumed, so a restarted caller can continue where this left off.
    Handback(Box<IraCheckpoint>),
}

/// [`solve_resilient`] with an externally owned context and an optional
/// starting checkpoint — the entry point for the solve service.
///
/// The caller arms the budget itself (typically via
/// [`SolveBudget::start_with_clock`]) so it can cancel or drain the solve
/// from another thread. Behaviour is identical to [`solve_resilient`]
/// except that [`SolveCtx::request_handback`] short-circuits the ladder:
/// instead of spending the resume sub-budget, the interrupted
/// checkpoint is handed back as [`ResilientRun::Handback`]. Passing
/// `resume_from` starts from a previously handed-back checkpoint (the
/// restarted-service path); success from there lands on the
/// [`SolveTier::Resumed`] rung.
pub fn solve_resilient_ctx(
    inst: &MrlcInstance,
    config: &ResilienceConfig,
    budget: SolveBudget,
    ctx: &Arc<SolveCtx>,
    resume_from: Option<Box<IraCheckpoint>>,
) -> Result<ResilientRun, ResilienceError> {
    let _span =
        wsn_obs::span_with("solve-resilient", vec![wsn_obs::field("n", inst.network().n())]);
    for &(kind, after) in &config.faults {
        ctx.arm_fault(kind, after);
    }

    let from_checkpoint = resume_from.is_some();
    let first = match resume_from {
        Some(cp) => resume_ira(inst, &config.ira, *cp, Some(ctx)),
        None => solve_ira_budgeted(inst, &config.ira, ctx),
    };

    match first {
        // A corrupted-but-self-consistent LP can let IRA terminate with a
        // tree that misses LC (it reports, it does not guarantee) — only
        // an LC-feasible tree earns the exact tier.
        Ok(sol) if sol.meets_lc => {
            let (tier, why) = if from_checkpoint {
                (SolveTier::Resumed, "parked checkpoint continuation closed".to_string())
            } else {
                (SolveTier::Exact, "IRA closed within budget".to_string())
            };
            Ok(ResilientRun::Done(finish(sol, tier, why)))
        }
        Ok(_) => {
            record_degrade("exact_missed_lc", 0);
            approximate(inst, config, "IRA tree missed LC; approximate tier".to_string())
                .map(ResilientRun::Done)
        }
        Err(IraError::Interrupted(cp)) => {
            if ctx.handback_requested() {
                record_handback(cp.iterations());
                return Ok(ResilientRun::Handback(cp));
            }
            record_degrade("interrupted", cp.iterations());
            let resume_ctx =
                sub_budget(&budget, config.resume_fraction).start_with_clock(ctx.time_source());
            match resume_ira(inst, &config.ira, *cp, Some(&resume_ctx)) {
                Ok(sol) if sol.meets_lc => Ok(ResilientRun::Done(finish(
                    sol,
                    SolveTier::Resumed,
                    "budget expired; checkpoint continuation closed".to_string(),
                ))),
                Ok(_) => {
                    record_degrade("resumed_missed_lc", 0);
                    approximate(
                        inst,
                        config,
                        "resumed tree missed LC; approximate tier".to_string(),
                    )
                    .map(ResilientRun::Done)
                }
                Err(IraError::Interrupted(cp2)) if ctx.handback_requested() => {
                    // Drain landed while the continuation was running; park
                    // the freshest checkpoint instead of degrading.
                    record_handback(cp2.iterations());
                    Ok(ResilientRun::Handback(cp2))
                }
                Err(IraError::LifetimeUnachievable { lc, reason }) => {
                    Err(ResilienceError::Infeasible { lc, reason })
                }
                Err(e) => {
                    record_degrade("resume_failed", 0);
                    approximate(inst, config, format!("resume failed ({e}); approximate tier"))
                        .map(ResilientRun::Done)
                }
            }
        }
        Err(IraError::LifetimeUnachievable { lc, reason }) => {
            // The LP relaxation (after any configured fallback) is
            // infeasible, which certifies integral infeasibility.
            Err(ResilienceError::Infeasible { lc, reason })
        }
        Err(e) => {
            record_degrade("exact_failed", 0);
            approximate(inst, config, format!("exact tier failed ({e}); approximate tier"))
                .map(ResilientRun::Done)
        }
    }
}

/// Derives the continuation budget: `fraction` of the wall allowance and of
/// each cap, never less than one round/pivot so the continuation can move.
fn sub_budget(budget: &SolveBudget, fraction: f64) -> SolveBudget {
    let f = if fraction.is_finite() && fraction > 0.0 { fraction } else { 0.5 };
    SolveBudget {
        wall: budget.wall.map(|w| w.mul_f64(f)),
        max_pivots: budget.max_pivots.map(|p| ((p as f64 * f) as u64).max(1)),
        max_rounds: budget.max_rounds.map(|r| ((r as f64 * f) as u64).max(1)),
    }
}

fn finish(sol: IraSolution, tier: SolveTier, why: String) -> SolveOutcome {
    record_tier(tier, 0.0);
    SolveOutcome { cost: sol.cost, lifetime: sol.lifetime, tree: sol.tree, tier, gap: 0.0, why }
}

/// The final rung: Lagrangian DB-MST with a dual-bound gap certificate,
/// AAML local search as the backstop. LP-free, hence fault-immune.
fn approximate(
    inst: &MrlcInstance,
    config: &ResilienceConfig,
    why: String,
) -> Result<SolveOutcome, ResilienceError> {
    let lr = lagrangian_dbmst(inst, &config.lagrangian);
    if let Some(tree) = lr.best_tree.clone() {
        let gap = lr.gap().or_else(|| mst_gap(inst, lr.best_cost)).unwrap_or(0.0);
        let outcome = SolveOutcome {
            cost: inst.cost(&tree),
            lifetime: inst.lifetime(&tree),
            tree,
            tier: SolveTier::Approximate,
            gap,
            why: format!("{why}: Lagrangian DB-MST with dual-bound certificate"),
        };
        record_tier(SolveTier::Approximate, outcome.gap);
        return Ok(outcome);
    }

    // The subgradient never found a cap-feasible tree; let AAML chase the
    // lifetime directly and accept its tree if it clears LC.
    match wsn_baselines::aaml_tree(
        inst.network(),
        inst.model(),
        None,
        &wsn_baselines::AamlConfig::default(),
    ) {
        Ok(r) if inst.meets_lifetime(&r.tree) => {
            let cost = inst.cost(&r.tree);
            let gap = mst_gap(inst, cost).unwrap_or(0.0);
            record_tier(SolveTier::Approximate, gap);
            Ok(SolveOutcome {
                cost,
                lifetime: r.lifetime,
                tree: r.tree,
                tier: SolveTier::Approximate,
                gap,
                why: format!("{why}: AAML local search (no dual certificate)"),
            })
        }
        Ok(_) => Err(ResilienceError::Infeasible {
            lc: inst.lc(),
            reason: format!("{why}; AAML's lifetime-maximal tree misses LC"),
        }),
        Err(e) => Err(ResilienceError::Infeasible {
            lc: inst.lc(),
            reason: format!("{why}; AAML failed: {e}"),
        }),
    }
}

/// Gap against the degree-free MST cost — a valid (if loose) lower bound on
/// `OPT(LC)`, used when the Lagrangian dual bound is absent.
fn mst_gap(inst: &MrlcInstance, cost: f64) -> Option<f64> {
    if !cost.is_finite() {
        return None;
    }
    let mst = wsn_graph::mst_tree(inst.network()).ok()?;
    let lb = inst.cost(&mst);
    if !lb.is_finite() {
        return None;
    }
    Some(((cost - lb) / lb.abs().max(1e-12)).max(0.0))
}

fn record_handback(iterations: usize) {
    if let Some(obs) = wsn_obs::current() {
        obs.registry().counter("resilience.handback").inc();
    }
    wsn_obs::event("resilience.handback", vec![wsn_obs::field("iterations", iterations)]);
}

fn record_degrade(stage: &'static str, iterations: usize) {
    if let Some(obs) = wsn_obs::current() {
        obs.registry().counter("resilience.degrade").inc();
    }
    wsn_obs::warn(
        "resilience.degrade",
        vec![wsn_obs::field("stage", stage), wsn_obs::field("iterations", iterations)],
    );
}

fn record_tier(tier: SolveTier, gap: f64) {
    if let Some(obs) = wsn_obs::current() {
        obs.registry().counter(&format!("resilience.tier.{tier}")).inc();
    }
    wsn_obs::event(
        "resilience.outcome",
        vec![wsn_obs::field("tier", tier.as_str()), wsn_obs::field("gap", gap)],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wsn_model::{lifetime, EnergyModel, NetworkBuilder};

    fn grid(side: usize) -> wsn_model::Network {
        let n = side * side;
        let mut b = NetworkBuilder::new(n);
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    b.add_edge(i, i + 1, 0.90 + 0.005 * ((i % 10) as f64)).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(i, i + side, 0.90 + 0.005 * ((i % 7) as f64)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn inst(side: usize) -> MrlcInstance {
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.99;
        MrlcInstance::new(grid(side), model, lc).unwrap()
    }

    #[test]
    fn unlimited_budget_is_exact_tier() {
        let inst = inst(4);
        let out =
            solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited()).unwrap();
        assert_eq!(out.tier, SolveTier::Exact);
        assert_eq!(out.gap, 0.0);
        assert!(inst.meets_lifetime(&out.tree));
    }

    #[test]
    fn exact_tier_matches_plain_ira() {
        let inst = inst(4);
        let out =
            solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited()).unwrap();
        let ira = crate::ira::solve_ira(&inst, &IraConfig::default()).unwrap();
        let a: Vec<_> = out.tree.edges().collect();
        let b: Vec<_> = ira.tree.edges().collect();
        assert_eq!(a, b);
        assert!((out.cost - ira.cost).abs() < 1e-12);
    }

    #[test]
    fn zero_deadline_still_returns_feasible_tree() {
        let inst = inst(5);
        let out =
            solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::wall(Duration::ZERO))
                .unwrap();
        assert!(inst.meets_lifetime(&out.tree), "tier {:?} missed LC", out.tier);
        assert!(out.gap.is_finite() && out.gap >= 0.0);
    }

    #[test]
    fn tight_round_cap_degrades_not_panics() {
        let inst = inst(5);
        let budget = SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() };
        let out = solve_resilient(&inst, &ResilienceConfig::default(), budget).unwrap();
        assert!(inst.meets_lifetime(&out.tree));
        assert!(out.gap.is_finite());
    }

    #[test]
    fn infeasible_lc_is_typed_error() {
        let net = grid(3);
        let model = EnergyModel::PAPER;
        let lc = 3000.0 / model.tx * 2.0; // beyond any node's reach
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        match solve_resilient(&inst, &ResilienceConfig::default(), SolveBudget::unlimited()) {
            Err(ResilienceError::Infeasible { .. }) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn handback_before_start_parks_a_resumable_checkpoint() {
        let inst = inst(4);
        let config = ResilienceConfig::default();
        let budget = SolveBudget::unlimited();
        let ctx = budget.start();
        ctx.request_handback();
        let cp = match solve_resilient_ctx(&inst, &config, budget, &ctx, None).unwrap() {
            ResilientRun::Handback(cp) => cp,
            other => panic!("expected a handback, got {other:?}"),
        };
        // A fresh context resumes the parked checkpoint to completion and
        // matches the uninterrupted ladder exactly.
        let ctx2 = SolveBudget::unlimited().start();
        let out =
            match solve_resilient_ctx(&inst, &config, SolveBudget::unlimited(), &ctx2, Some(cp))
                .unwrap()
            {
                ResilientRun::Done(out) => out,
                other => panic!("expected completion, got {other:?}"),
            };
        assert_eq!(out.tier, SolveTier::Resumed);
        let direct = solve_resilient(&inst, &config, SolveBudget::unlimited()).unwrap();
        let a: Vec<_> = out.tree.edges().collect();
        let b: Vec<_> = direct.tree.edges().collect();
        assert_eq!(a, b, "resumed tree must match the uninterrupted solve");
    }

    #[test]
    fn handback_mid_solve_keeps_partial_progress() {
        let inst = inst(5);
        let config = ResilienceConfig::default();
        // Interrupt via the round cap, with handback pre-requested: the
        // ladder must not consume the checkpoint on the resume rung.
        let budget = SolveBudget { max_rounds: Some(1), ..SolveBudget::unlimited() };
        let ctx = budget.start();
        ctx.request_handback();
        match solve_resilient_ctx(&inst, &config, budget, &ctx, None).unwrap() {
            ResilientRun::Handback(_) => {}
            other => panic!("expected a handback, got {other:?}"),
        }
    }

    #[test]
    fn external_ctx_without_handback_matches_solve_resilient() {
        let inst = inst(4);
        let config = ResilienceConfig::default();
        let budget = SolveBudget::unlimited();
        let ctx = budget.start();
        let out = match solve_resilient_ctx(&inst, &config, budget, &ctx, None).unwrap() {
            ResilientRun::Done(out) => out,
            other => panic!("expected completion, got {other:?}"),
        };
        let direct = solve_resilient(&inst, &config, SolveBudget::unlimited()).unwrap();
        assert_eq!(out.tier, direct.tier);
        let a: Vec<_> = out.tree.edges().collect();
        let b: Vec<_> = direct.tree.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_fault_kind_lands_on_feasible_outcome() {
        for kind in wsn_lp::FAULT_KINDS {
            let inst = inst(4);
            let config =
                ResilienceConfig { faults: vec![(kind, 2)], ..ResilienceConfig::default() };
            let out = solve_resilient(&inst, &config, SolveBudget::unlimited())
                .unwrap_or_else(|e| panic!("fault {kind} produced {e}"));
            assert!(inst.meets_lifetime(&out.tree), "fault {kind} (tier {:?}) missed LC", out.tier);
            assert!(out.gap.is_finite() && out.gap >= 0.0, "fault {kind}");
        }
    }
}

//! The paper's primary contribution: the **MRLC** problem and the
//! **Iterative Relaxation Algorithm (IRA)**.
//!
//! Given a connected network `G = (V, E)` with per-link PRR `q_e`, per-node
//! initial energy `I(v)`, the send/receive energy model, and a lifetime
//! bound `LC`, IRA finds a data-aggregation tree `T` with `L(T) ≥ LC` whose
//! cost `C(T) = Σ −log q_e` is at most `OPT(L')`, where
//! `L' = I_min·LC/(I_min − 2·Rx·LC)` is the tightened bound of Algorithm 1.
//!
//! The pipeline:
//!
//! 1. [`formulation`] encodes `LP(G, L', W)` (Eqs. 11–15): spanning-tree
//!    (subtour) constraints plus per-node lifetime constraints, which — via
//!    `L(v) ≥ L' ⟺ Ch(v) ≤ (I(v)/L' − Tx)/Rx` — become fractional degree
//!    caps `x(δ(v)) ≤ β_v`.
//! 2. The exponential family of subtour constraints is handled by **cutting
//!    planes**: solve a relaxation with [`wsn_lp`]'s extreme-point simplex,
//!    find a violated set with the min-cut [`separation`] oracle, add it,
//!    repeat. An extreme point of a relaxation that satisfies every subtour
//!    constraint is an extreme point of the full polytope.
//! 3. [`ira`] runs Algorithm 1: drop `x_e = 0` edges, remove the lifetime
//!    constraint of any node whose **worst-case** lifetime over the support
//!    already meets `LC` (Theorem 2 guarantees one exists), iterate; once
//!    `W = ∅` the LP is the subtour LP, whose extreme points are spanning
//!    trees (Lemma 1).
//! 4. [`verify`] independently checks every returned tree.
//!
//! # Example
//!
//! ```
//! use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
//! use wsn_model::{EnergyModel, NetworkBuilder};
//!
//! // A diamond with one weak shortcut; node 0 is the sink.
//! let mut b = NetworkBuilder::new(4);
//! b.add_edge(0, 1, 0.99).unwrap();
//! b.add_edge(1, 2, 0.98).unwrap();
//! b.add_edge(2, 3, 0.97).unwrap();
//! b.add_edge(0, 3, 0.80).unwrap();
//! let net = b.build().unwrap();
//!
//! let inst = MrlcInstance::new(net, EnergyModel::PAPER, 2.0e6).unwrap();
//! let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
//! assert!(sol.meets_lc);
//! assert!(sol.reliability > 0.9); // the 0.80 link is avoided
//! ```

pub mod bounds;
pub mod cutpool;
pub mod exact;
pub mod formulation;
pub mod ira;
pub mod lagrangian;
pub mod pareto;
pub mod problem;
pub mod resilience;
pub mod separation;
pub mod verify;

pub use bounds::{lifetime_bounds, LifetimeBounds};
pub use cutpool::CutPool;
pub use exact::{solve_exact, solve_exact_budgeted, ExactConfig, ExactOutcome};
pub use formulation::{CutLp, CutLpOutcome};
pub use ira::{
    resume_ira, solve_ira, solve_ira_budgeted, IraCheckpoint, IraConfig, IraError, IraSolution,
    IraStats,
};
pub use lagrangian::{lagrangian_dbmst, LagrangianConfig, LagrangianResult};
pub use pareto::{dominant_points, pareto_frontier, ParetoPoint};
pub use problem::MrlcInstance;
pub use resilience::{
    solve_resilient, solve_resilient_ctx, ResilienceConfig, ResilienceError, ResilientRun,
    SolveOutcome, SolveTier,
};
pub use separation::{CutStrategy, SeparationConfig};
pub use verify::{verify_tree, Verification};

//! Lagrangian relaxation of the degree-bounded spanning tree — an
//! alternative solver to IRA, and an independent source of lower bounds.
//!
//! Dualizing the degree caps `deg_T(v) ≤ b_v` (the integer image of the
//! lifetime constraints) with multipliers `λ ≥ 0` gives
//!
//! `L(λ) = min_T Σ_{(u,v)∈T} (c_e + λ_u + λ_v) − Σ_v λ_v·b_v`,
//!
//! an ordinary MST under reweighted costs, so each subgradient step is one
//! Kruskal run. Weak duality makes every `L(λ)` a lower bound on `OPT(LC)`;
//! whenever the reweighted MST happens to satisfy the caps it is a feasible
//! incumbent. This is the classical Held–Karp-style approach the OR
//! literature uses for degree-constrained trees — here it serves as an
//! ablation against IRA (which solves LPs instead) and as a bound
//! certificate the optimality-gap experiment can cross-check.

use crate::problem::MrlcInstance;
use wsn_graph::{kruskal, WeightedEdge};
use wsn_model::{lifetime, AggregationTree, NodeId};

/// Subgradient-ascent parameters.
#[derive(Clone, Copy, Debug)]
pub struct LagrangianConfig {
    /// Subgradient iterations.
    pub iterations: usize,
    /// Initial step size (scaled by the mean edge cost).
    pub step0: f64,
    /// Geometric step decay per iteration.
    pub decay: f64,
}

impl Default for LagrangianConfig {
    fn default() -> Self {
        LagrangianConfig { iterations: 300, step0: 0.5, decay: 0.985 }
    }
}

/// Result of the subgradient run.
#[derive(Clone, Debug)]
pub struct LagrangianResult {
    /// Best feasible tree found (meets every degree cap), if any.
    pub best_tree: Option<AggregationTree>,
    /// Its natural-log cost (`∞` when none was found).
    pub best_cost: f64,
    /// The best (largest) Lagrangian lower bound on `OPT(LC)`.
    pub lower_bound: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

impl LagrangianResult {
    /// Relative duality gap between incumbent and bound.
    ///
    /// `None` without an incumbent **or** when either side is non-finite
    /// (an absent dual bound is `−∞` and certifies nothing). Numerical
    /// drift can push the bound a hair past the primal; a negative gap is
    /// clamped to zero — the certificate is then exact.
    pub fn gap(&self) -> Option<f64> {
        self.best_tree.as_ref()?;
        if !self.best_cost.is_finite() || !self.lower_bound.is_finite() {
            return None;
        }
        let denom = self.lower_bound.abs().max(1e-12);
        Some(((self.best_cost - self.lower_bound) / denom).max(0.0))
    }
}

/// Integer degree caps implied by `LC` (as in the exact solver); `None`
/// when some node cannot even hold one edge.
fn degree_caps(inst: &MrlcInstance) -> Option<Vec<usize>> {
    let net = inst.network();
    let model = inst.model();
    let n = net.n();
    let mut caps = Vec::with_capacity(n);
    for i in 0..n {
        let v = NodeId::new(i);
        let cb = lifetime::children_bound(net.initial_energy(v), model, inst.lc());
        if cb < -1e-9 {
            return None;
        }
        let cap = (cb + 1e-9).floor() as usize + usize::from(v != NodeId::SINK);
        if cap == 0 {
            return None;
        }
        caps.push(cap.min(n - 1));
    }
    Some(caps)
}

/// Runs subgradient ascent on the dual.
pub fn lagrangian_dbmst(inst: &MrlcInstance, config: &LagrangianConfig) -> LagrangianResult {
    let net = inst.network();
    let n = net.n();
    let Some(caps) = degree_caps(inst) else {
        return LagrangianResult {
            best_tree: None,
            best_cost: f64::INFINITY,
            lower_bound: f64::NEG_INFINITY,
            iterations: 0,
        };
    };

    let base: Vec<WeightedEdge> = net
        .edges()
        .map(|(e, l)| WeightedEdge {
            u: l.u().index(),
            v: l.v().index(),
            w: l.cost(),
            id: e.index(),
        })
        .collect();
    let mean_cost = if base.is_empty() {
        0.0
    } else {
        base.iter().map(|e| e.w).sum::<f64>() / base.len() as f64
    };

    let mut lambda = vec![0.0f64; n];
    let mut best_lb = f64::NEG_INFINITY;
    let mut best_cost = f64::INFINITY;
    let mut best_tree: Option<AggregationTree> = None;
    let mut step = config.step0 * mean_cost.max(1e-6);

    for _iter in 0..config.iterations {
        // MST under reweighted costs.
        let reweighted: Vec<WeightedEdge> = base
            .iter()
            .map(|e| WeightedEdge { w: e.w + lambda[e.u] + lambda[e.v], ..*e })
            .collect();
        let Some(chosen) = kruskal(n, &reweighted) else {
            break; // disconnected network — cannot happen for valid instances
        };

        // Dual value and subgradient.
        let mut deg = vec![0usize; n];
        let mut reweighted_cost = 0.0;
        for &id in &chosen {
            let e = &base[id_to_index(&base, id)];
            deg[e.u] += 1;
            deg[e.v] += 1;
            reweighted_cost += e.w + lambda[e.u] + lambda[e.v];
        }
        let dual: f64 =
            reweighted_cost - lambda.iter().zip(&caps).map(|(l, &b)| l * b as f64).sum::<f64>();
        best_lb = best_lb.max(dual);

        // Incumbent: the reweighted MST directly if feasible, else its
        // greedy repair (move children off over-cap nodes at minimum added
        // cost — standard Lagrangian-heuristic practice).
        let edges: Vec<(NodeId, NodeId)> =
            chosen.iter().map(|&id| net.links()[id].endpoints()).collect();
        if let Ok(t) = AggregationTree::from_edges(NodeId::SINK, n, &edges) {
            if let Some((repaired, cost)) = repair_to_caps(inst, &caps, t) {
                if cost < best_cost - 1e-12 {
                    best_cost = cost;
                    best_tree = Some(repaired);
                }
            }
        }

        // Subgradient step on violated/slack caps.
        let norm_sq: f64 = deg
            .iter()
            .zip(&caps)
            .map(|(&d, &b)| {
                let g = d as f64 - b as f64;
                g * g
            })
            .sum();
        if norm_sq < 1e-18 {
            break; // the unconstrained MST already satisfies all caps
        }
        for v in 0..n {
            let g = deg[v] as f64 - caps[v] as f64;
            lambda[v] = (lambda[v] + step * g / norm_sq.sqrt()).max(0.0);
        }
        step *= config.decay;
    }

    LagrangianResult { best_tree, best_cost, lower_bound: best_lb, iterations: config.iterations }
}

/// Edge ids equal indices into `base` by construction; this helper keeps
/// that assumption in one checked place.
fn id_to_index(base: &[WeightedEdge], id: usize) -> usize {
    debug_assert_eq!(base[id].id, id);
    id
}

/// Greedy cap repair: while any node exceeds its degree cap, re-home one of
/// its children to the cheapest under-cap alternative parent. Returns the
/// repaired tree and its cost, or `None` when some violation cannot be
/// fixed.
fn repair_to_caps(
    inst: &MrlcInstance,
    caps: &[usize],
    mut tree: AggregationTree,
) -> Option<(AggregationTree, f64)> {
    let net = inst.network();
    let n = net.n();
    let tree_degree = |t: &AggregationTree, v: NodeId| t.degree(v);
    for _ in 0..2 * n {
        let over = (0..n).map(NodeId::new).find(|&v| tree_degree(&tree, v) > caps[v.index()]);
        let Some(v) = over else {
            let cost = inst.cost(&tree);
            return Some((tree, cost));
        };
        // Cheapest re-homing of any child of v to an under-cap parent.
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for &c in tree.children(v) {
            let old_cost = net.find_edge(c, v).map(|e| net.link(e).cost()).unwrap_or(f64::INFINITY);
            for &(e, w) in net.neighbors(c) {
                if w == v || tree_degree(&tree, w) + 1 > caps[w.index()] || tree.in_subtree(w, c) {
                    continue;
                }
                let delta = net.link(e).cost() - old_cost;
                if best.is_none_or(|(d, _, _)| delta < d) {
                    best = Some((delta, c, w));
                }
            }
        }
        let (_, c, w) = best?;
        // Candidates were validated above, but a reattach that still fails
        // (corrupted tree state) just abandons this iterate — the
        // subgradient loop treats it like any other unrepairable point.
        if tree.reattach(c, w).is_err() {
            return None;
        }
    }
    None // cycling between violations — give up on this iterate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactConfig, ExactOutcome};
    use crate::ira::{solve_ira, IraConfig};
    use wsn_model::{EnergyModel, NetworkBuilder};

    fn starry(n: usize) -> wsn_model::Network {
        let mut b = NetworkBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v, 0.99).unwrap();
        }
        for u in 1..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.90).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn unconstrained_case_returns_mst_immediately() {
        let net = starry(6);
        let inst = MrlcInstance::new(net.clone(), EnergyModel::PAPER, 10.0).unwrap();
        let res = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        let mst = wsn_graph::mst_tree(&net).unwrap();
        assert!((res.best_cost - inst.cost(&mst)).abs() < 1e-9);
        // With zero multipliers the dual equals the MST cost: a tight bound.
        assert!((res.lower_bound - res.best_cost).abs() < 1e-9);
        assert_eq!(res.gap().unwrap(), 0.0);
    }

    #[test]
    fn bound_sandwiches_the_exact_optimum() {
        let net = starry(7);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 2) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let res = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        let ExactOutcome::Optimal { cost: opt, .. } = solve_exact(&inst, &ExactConfig::default())
        else {
            panic!("feasible by construction")
        };
        assert!(
            res.lower_bound <= opt + 1e-9,
            "lower bound {} exceeds OPT {}",
            res.lower_bound,
            opt
        );
        if let Some(t) = &res.best_tree {
            assert!(inst.meets_lifetime(t), "incumbent violates LC");
            assert!(res.best_cost >= opt - 1e-9);
        }
        // The dual should come reasonably close on this small instance.
        assert!(res.lower_bound > 0.25 * opt, "bound {} too loose vs OPT {}", res.lower_bound, opt);
    }

    #[test]
    fn finds_feasible_incumbents_on_constrained_instances() {
        let net = starry(8);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let res = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        let t = res.best_tree.as_ref().expect("incumbent expected on this instance");
        assert!(inst.meets_lifetime(t));
        // Comparable to IRA (neither dominates in theory; both near OPT).
        let ira = solve_ira(&inst, &IraConfig::default()).unwrap();
        assert!(
            res.best_cost <= ira.cost * 1.5 + 1e-9,
            "Lagrangian {} far above IRA {}",
            res.best_cost,
            ira.cost
        );
    }

    #[test]
    fn gap_edge_cases() {
        let tree = AggregationTree::from_parents(NodeId::SINK, vec![None]).unwrap();
        // No incumbent: nothing to certify.
        let none = LagrangianResult {
            best_tree: None,
            best_cost: f64::INFINITY,
            lower_bound: 1.0,
            iterations: 0,
        };
        assert!(none.gap().is_none());
        // Absent dual bound (−∞) certifies nothing even with an incumbent.
        let no_bound = LagrangianResult {
            best_tree: Some(tree.clone()),
            best_cost: 2.0,
            lower_bound: f64::NEG_INFINITY,
            iterations: 0,
        };
        assert!(no_bound.gap().is_none());
        // NaN on either side yields None, never a NaN gap.
        let nan = LagrangianResult {
            best_tree: Some(tree.clone()),
            best_cost: f64::NAN,
            lower_bound: 1.0,
            iterations: 0,
        };
        assert!(nan.gap().is_none());
        // Drift pushing the bound past the primal clamps to exactly zero.
        let crossed = LagrangianResult {
            best_tree: Some(tree.clone()),
            best_cost: 1.0,
            lower_bound: 1.0 + 1e-9,
            iterations: 0,
        };
        assert_eq!(crossed.gap(), Some(0.0));
        // The ordinary case is finite and positive.
        let normal = LagrangianResult {
            best_tree: Some(tree),
            best_cost: 1.2,
            lower_bound: 1.0,
            iterations: 0,
        };
        let g = normal.gap().unwrap();
        assert!(g > 0.19 && g < 0.21, "gap {g}");
    }

    #[test]
    fn infeasible_caps_reported() {
        let net = starry(5);
        let model = EnergyModel::PAPER;
        let lc = 3000.0 / model.tx * 2.0;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let res = lagrangian_dbmst(&inst, &LagrangianConfig::default());
        assert!(res.best_tree.is_none());
        assert!(res.lower_bound == f64::NEG_INFINITY);
        assert!(res.gap().is_none());
    }
}

//! Separation oracle for the subtour constraints (Eq. 13).
//!
//! Given a fractional point `x` with `x(E(V)) = |V| − 1`, we must find a set
//! `S ⊆ V`, `|S| ≥ 2`, with `x(E(S)) > |S| − 1`, or certify none exists.
//!
//! Writing `w(v) = 1 − x(δ(v))/2` and using
//! `x(E(S)) = ½(Σ_{v∈S} x(δ(v)) − x(δ(S)))`, the violation functional is
//!
//! `|S| − 1 − x(E(S)) = Σ_{v∈S} w(v) + x(δ(S))/2 − 1`,
//!
//! a modular term plus a cut — minimized, for each forced seed `s ∈ S`, by
//! one s–t min-cut on an auxiliary network (the classical
//! project-selection transformation handles negative `w`). `S = V` attains
//! exactly 0 under the cardinality equality, so any value below `−tol`
//! certifies a genuine violation (Theorem 1 / \[12\]).
//!
//! Two cheap pre-checks run first: disconnected support (some component
//! must violate) and dense pairs/components (`x(E(S))` summed directly).
//!
//! The per-seed min-cuts are independent, so [`violated_sets_with`] can fan
//! them across cores with one reusable [`FlowNetwork`] per worker thread:
//! the auxiliary network is built **once** per thread, each seed query
//! flips a single pre-declared `src → s` edge to infinite capacity via
//! [`FlowNetwork::set_cap`] and a [`FlowNetwork::reset`] undoes the
//! residual state — no per-seed allocation. Results are merged through a
//! `BTreeSet`, so the parallel and serial paths return **identical** output
//! (a property the proptests pin down).

use wsn_graph::{components, FlowEdgeId, FlowNetwork};
use wsn_obs::Counter;
use wsn_util::parallel_map_with;

/// Counter handles for the oracle, resolved from the ambient registry once
/// per call on the coordinating thread. The handles are plain `Arc`
/// atomics, so the parallel workers bump them without inheriting (or even
/// knowing about) the ambient collector — final sums are
/// schedule-independent, keeping the serial/parallel equivalence intact.
struct SepMetrics {
    calls: Counter,
    min_cut_seeds: Counter,
    violated: Counter,
}

impl SepMetrics {
    fn ambient() -> Option<SepMetrics> {
        let obs = wsn_obs::current()?;
        let reg = obs.registry();
        Some(SepMetrics {
            calls: reg.counter("sep.calls"),
            min_cut_seeds: reg.counter("sep.min_cut_seeds"),
            violated: reg.counter("sep.violated_sets"),
        })
    }
}

/// Node count at which the per-seed min-cuts are worth fanning out.
const PARALLEL_SEP_THRESHOLD: usize = 32;

/// An edge of the current LP together with its fractional value.
#[derive(Clone, Copy, Debug)]
pub struct FracEdge {
    /// Endpoint (dense index).
    pub u: usize,
    /// Endpoint (dense index).
    pub v: usize,
    /// LP value `x_e ∈ [0, 1]`.
    pub x: f64,
}

/// Returns violated subtour sets (each as a sorted node list), or empty if
/// `x` satisfies every subtour constraint within `tol`.
///
/// The list is deduplicated; each returned `S` is verified to violate
/// `x(E(S)) ≤ |S| − 1` by at least `tol` before being reported.
pub fn violated_sets(n: usize, edges: &[FracEdge], tol: f64) -> Vec<Vec<usize>> {
    violated_sets_with(n, edges, tol, n >= PARALLEL_SEP_THRESHOLD)
}

/// Per-thread scratch for the seeded min-cut oracle: the auxiliary network
/// plus one pre-declared zero-capacity `src → s` edge per seed.
struct SepScratch {
    net: FlowNetwork,
    seed_edges: Vec<FlowEdgeId>,
    side: Vec<bool>,
}

/// As [`violated_sets`], with explicit control over parallel fan-out of
/// the per-seed min-cuts. Output is identical either way: every returned
/// set is sorted, and the collection order is canonical (`BTreeSet`).
pub fn violated_sets_with(
    n: usize,
    edges: &[FracEdge],
    tol: f64,
    parallel: bool,
) -> Vec<Vec<usize>> {
    let metrics = SepMetrics::ambient();
    if let Some(m) = &metrics {
        m.calls.inc();
    }
    let mut found: std::collections::BTreeSet<Vec<usize>> = std::collections::BTreeSet::new();

    // --- Pre-check: components of the support graph. ---
    let support: Vec<(usize, usize)> =
        edges.iter().filter(|e| e.x > tol).map(|e| (e.u, e.v)).collect();
    let (labels, k) = components(n, support.iter().copied());
    if k > 1 {
        for comp in 0..k {
            let set: Vec<usize> = (0..n).filter(|&v| labels[v] == comp).collect();
            if set.len() >= 2 && violation(edges, &set) > tol {
                found.insert(set);
            }
        }
        if !found.is_empty() {
            if let Some(m) = &metrics {
                m.violated.add(found.len() as u64);
            }
            return found.into_iter().collect();
        }
    }

    // --- Exact oracle: one min-cut per forced seed. ---
    // Node weights w(v) = 1 − x(δ(v))/2.
    let mut half_deg = vec![0.0f64; n];
    for e in edges {
        half_deg[e.u] += e.x / 2.0;
        half_deg[e.v] += e.x / 2.0;
    }
    let w: Vec<f64> = (0..n).map(|v| 1.0 - half_deg[v]).collect();
    let p_neg: f64 = w.iter().filter(|&&x| x < 0.0).sum();

    let src = n;
    let snk = n + 1;
    // Project-selection network, built once per worker; seed edges start at
    // capacity 0 so each query only flips one of them to ∞.
    let make_scratch = || {
        let mut net = FlowNetwork::new(n + 2);
        for (v, &wv) in w.iter().enumerate() {
            if wv < 0.0 {
                net.add_edge(src, v, -wv);
            } else if wv > 0.0 {
                net.add_edge(v, snk, wv);
            }
        }
        for e in edges {
            if e.x > 0.0 {
                net.add_undirected_edge(e.u, e.v, e.x / 2.0);
            }
        }
        let seed_edges: Vec<FlowEdgeId> = (0..n).map(|s| net.add_edge(src, s, 0.0)).collect();
        SepScratch { net, seed_edges, side: Vec::new() }
    };
    let run_seed = |sc: &mut SepScratch, s: usize| -> Option<Vec<usize>> {
        if let Some(m) = &metrics {
            m.min_cut_seeds.inc();
        }
        sc.net.reset();
        sc.net.set_cap(sc.seed_edges[s], f64::INFINITY);
        let flow = sc.net.max_flow(src, snk);
        let min_f = p_neg + flow - 1.0;
        if min_f >= -tol {
            return None;
        }
        let side = &mut sc.side;
        sc.net.min_cut_source_side_into(src, side);
        let set: Vec<usize> = (0..n).filter(|&v| side[v]).collect();
        (set.len() >= 2 && set.len() < n && violation(edges, &set) > tol).then_some(set)
    };

    if parallel {
        for set in parallel_map_with(n, make_scratch, run_seed).into_iter().flatten() {
            found.insert(set);
        }
    } else {
        let mut sc = make_scratch();
        for s in 0..n {
            if let Some(set) = run_seed(&mut sc, s) {
                found.insert(set);
            }
        }
    }
    if let Some(m) = &metrics {
        m.violated.add(found.len() as u64);
    }
    found.into_iter().collect()
}

/// `x(E(S)) − (|S| − 1)`: positive means `S` violates the subtour bound.
pub fn violation(edges: &[FracEdge], set: &[usize]) -> f64 {
    let in_set: std::collections::HashSet<usize> = set.iter().copied().collect();
    let internal: f64 =
        edges.iter().filter(|e| in_set.contains(&e.u) && in_set.contains(&e.v)).map(|e| e.x).sum();
    internal - (set.len() as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(u: usize, v: usize, x: f64) -> FracEdge {
        FracEdge { u, v, x }
    }

    #[test]
    fn spanning_tree_point_has_no_violation() {
        // A path with x = 1 on each edge satisfies all subtour constraints.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(2, 3, 1.0)];
        assert!(violated_sets(4, &edges, 1e-7).is_empty());
    }

    #[test]
    fn integral_cycle_detected() {
        // Triangle with all ones plus isolated vertex covered by edge mass
        // elsewhere: x(E({0,1,2})) = 3 > 2.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(0, 2, 1.0), fe(2, 3, 0.0)];
        let sets = violated_sets(4, &edges, 1e-7);
        assert!(!sets.is_empty());
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn fractional_violation_detected() {
        // x = 2/3 on each triangle edge: x(E(S)) = 2 > |S| − 1 = 2? No —
        // equals exactly 2... use 0.75: 2.25 > 2.
        let edges = vec![fe(0, 1, 0.75), fe(1, 2, 0.75), fe(0, 2, 0.75), fe(0, 3, 0.75)];
        let sets = violated_sets(4, &edges, 1e-7);
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn fractional_tight_is_not_violated() {
        // Exactly 2/3 each: x(E(S)) = 2 = |S| − 1; must NOT be reported.
        let x = 2.0 / 3.0;
        let edges = vec![fe(0, 1, x), fe(1, 2, x), fe(0, 2, x), fe(0, 3, 1.0)];
        let sets = violated_sets(4, &edges, 1e-6);
        assert!(sets.is_empty(), "tight sets are feasible: {sets:?}");
    }

    #[test]
    fn disconnected_support_flagged_by_precheck() {
        // Two cliques, each with too much internal mass; total = n−1 = 5.
        let edges = vec![
            fe(0, 1, 1.0),
            fe(1, 2, 1.0),
            fe(0, 2, 1.0), // component {0,1,2}: mass 3 > 2
            fe(3, 4, 1.0),
            fe(4, 5, 1.0), // component {3,4,5}: mass 2 = 2 (tight, fine)
        ];
        let sets = violated_sets(6, &edges, 1e-7);
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn violation_helper() {
        let edges = vec![fe(0, 1, 0.9), fe(1, 2, 0.9), fe(0, 2, 0.9)];
        assert!((violation(&edges, &[0, 1, 2]) - 0.7).abs() < 1e-12);
        assert!((violation(&edges, &[0, 1]) - (-0.1)).abs() < 1e-12);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force check over all subsets (n ≤ 7).
        fn brute_violated(n: usize, edges: &[FracEdge], tol: f64) -> bool {
            (0u32..(1 << n)).any(|mask| {
                if mask.count_ones() < 2 {
                    return false;
                }
                let set: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                violation(edges, &set) > tol
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn oracle_agrees_with_brute_force(
                raw in proptest::collection::vec((0usize..6, 0usize..6, 0u32..=100), 5..14)
            ) {
                let n = 6;
                // Build an edge set and normalize total mass to n−1 so the
                // cardinality equality holds (the oracle's S=V argument
                // assumes it).
                let mut edges: Vec<FracEdge> = raw
                    .into_iter()
                    .filter(|&(u, v, _)| u != v)
                    .map(|(u, v, x)| fe(u.min(v), u.max(v), x as f64 / 100.0))
                    .collect();
                prop_assume!(!edges.is_empty());
                let mass: f64 = edges.iter().map(|e| e.x).sum();
                prop_assume!(mass > 1e-6);
                let scale = (n as f64 - 1.0) / mass;
                for e in &mut edges {
                    e.x *= scale;
                }
                // Keep x_e within [0, 1] after scaling (else skip the case —
                // the LP would never produce it).
                prop_assume!(edges.iter().all(|e| e.x <= 1.0 + 1e-9));

                let tol = 1e-6;
                let sets = violated_sets(n, &edges, tol);
                let brute = brute_violated(n, &edges, tol);
                if brute {
                    // The oracle must find at least one genuinely violated set.
                    prop_assert!(!sets.is_empty(), "oracle missed a violation");
                }
                for s in &sets {
                    prop_assert!(violation(&edges, s) > tol, "bogus set {s:?}");
                }
            }

            #[test]
            fn parallel_separation_identical_to_serial(
                raw in proptest::collection::vec((0usize..9, 0usize..9, 0u32..=100), 8..24)
            ) {
                let n = 9;
                let mut edges: Vec<FracEdge> = raw
                    .into_iter()
                    .filter(|&(u, v, _)| u != v)
                    .map(|(u, v, x)| fe(u.min(v), u.max(v), x as f64 / 100.0))
                    .collect();
                prop_assume!(!edges.is_empty());
                let mass: f64 = edges.iter().map(|e| e.x).sum();
                prop_assume!(mass > 1e-6);
                let scale = (n as f64 - 1.0) / mass;
                for e in &mut edges {
                    e.x *= scale;
                }
                prop_assume!(edges.iter().all(|e| e.x <= 1.0 + 1e-9));

                let serial = violated_sets_with(n, &edges, 1e-6, false);
                let parallel = violated_sets_with(n, &edges, 1e-6, true);
                prop_assert_eq!(serial, parallel);
            }
        }
    }

    #[test]
    fn parallel_path_used_above_threshold() {
        // A big cycle: x = 1 on every edge of a 40-cycle violates the
        // subtour bound on the full... no — S = V attains exactly 0; put
        // the cycle on a 39-node subset and attach the last node by a
        // fractional edge so total mass is n − 1.
        let n = 40usize;
        let mut edges: Vec<FracEdge> = (0..n - 1).map(|v| fe(v, (v + 1) % (n - 1), 1.0)).collect();
        // mass so far = 39 = n − 1; steal mass from one cycle edge for the
        // attachment so the equality still holds.
        edges[0].x = 0.5;
        edges.push(fe(0, n - 1, 0.5));
        let sets = violated_sets(n, &edges, 1e-7); // n ≥ threshold → parallel
        let expected: Vec<usize> = (0..n - 1).collect();
        assert!(sets.iter().any(|s| s == &expected), "cycle must be separated");
        assert_eq!(sets, violated_sets_with(n, &edges, 1e-7, false));
    }
}

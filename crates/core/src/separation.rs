//! Separation oracle for the subtour constraints (Eq. 13).
//!
//! Given a fractional point `x` with `x(E(V)) = |V| − 1`, we must find a set
//! `S ⊆ V`, `|S| ≥ 2`, with `x(E(S)) > |S| − 1`, or certify none exists.
//!
//! Writing `w(v) = 1 − x(δ(v))/2` and using
//! `x(E(S)) = ½(Σ_{v∈S} x(δ(v)) − x(δ(S)))`, the violation functional is
//!
//! `|S| − 1 − x(E(S)) = Σ_{v∈S} w(v) + x(δ(S))/2 − 1`,
//!
//! a modular term plus a cut — minimized, for each forced seed `s ∈ S`, by
//! one s–t min-cut on an auxiliary network (the classical
//! project-selection transformation handles negative `w`). `S = V` attains
//! exactly 0 under the cardinality equality, so any value below `−tol`
//! certifies a genuine violation (Theorem 1 / \[12\]).
//!
//! # The separation engine
//!
//! [`SeedOracle`] is the stateful engine behind both entry points. The
//! auxiliary network's *topology* depends only on the instance `(n, edges)`
//! — the fractional point affects capacities alone — so the oracle keeps
//! its built networks in a shared scratch store across calls. Each call
//! re-declares only the capacities that drifted beyond [`CAP_EPS`]
//! (delta updates via [`FlowNetwork::set_base_cap_undirected`]) instead of
//! rebuilding one network per worker thread per call; a seed query then
//! flips a single pre-declared `src → s` edge to infinite capacity and a
//! [`FlowNetwork::reset`] undoes the residual state — no per-seed
//! allocation. Worker threads lease scratches from the store and return
//! them on drop, so serial (traced) and parallel (untraced) calls share
//! the same networks. Results are merged through a `BTreeMap`, so the
//! parallel and serial paths return **identical** output (a property the
//! proptests pin down).
//!
//! With pruning enabled ([`SeparationConfig::prune_seeds`]) three
//! sound short-circuits cut the per-call min-cut count well below `n`:
//!
//! * **component pre-check bound** — a violated set within a support
//!   component `C` needs `x(E(S)) > |S| − 1 ≥ 1`, and any violated set
//!   spanning several components implies a violated set inside one of
//!   them; components with `x(E(C)) ≤ 1 + tol` (singletons included:
//!   their mass is 0) therefore contain no violated set and all their
//!   seeds are skipped;
//! * **dense-pair shortcut** — a vertex pair whose aggregated edge mass
//!   exceeds `1 + tol` is itself a violated set and is reported without
//!   any min-cut;
//! * **covered-seed skip** — seeds already contained in a violated set
//!   found earlier this call are skipped. Seeds are processed in
//!   fixed-width waves of [`SEED_CHUNK`] so the serial and parallel paths
//!   skip exactly the same seeds.
//!
//! Skipping a covered seed can suppress *additional* violated sets, never
//! all of them: whenever a violated set exists, one within a single heavy
//! component exists, and that component's first uncovered seed finds a
//! violated set (or is covered because one was already found). The oracle
//! therefore still returns a nonempty result iff the point is infeasible.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use wsn_graph::{components, FlowEdgeId, FlowNetwork};
use wsn_obs::{Counter, Histogram, Registry};
use wsn_util::parallel_map_with;

/// Node count at which the per-seed min-cuts are worth fanning out.
pub(crate) const PARALLEL_SEP_THRESHOLD: usize = 32;

/// Seeds are processed in waves of this width; violated sets found by
/// earlier waves veto covered seeds in later ones. A fixed constant keeps
/// the serial and parallel paths output-identical.
const SEED_CHUNK: usize = 16;

/// Capacity drift below which a delta sync leaves an edge untouched.
const CAP_EPS: f64 = 1e-12;

/// An edge of the current LP together with its fractional value.
#[derive(Clone, Copy, Debug)]
pub struct FracEdge {
    /// Endpoint (dense index).
    pub u: usize,
    /// Endpoint (dense index).
    pub v: usize,
    /// LP value `x_e ∈ [0, 1]`.
    pub x: f64,
}

/// A violated subtour set together with its violation amount.
#[derive(Clone, Debug, PartialEq)]
pub struct ViolatedSet {
    /// Member nodes, sorted ascending.
    pub set: Vec<usize>,
    /// `x(E(S)) − (|S| − 1) > tol`.
    pub violation: f64,
}

/// How `CutLp` turns separated sets into LP rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutStrategy {
    /// Add exactly one (most violated) cut per round — the classical
    /// textbook loop, kept as the A/B baseline for benchmarks.
    SingleCut,
    /// Add the top-K most violated, non-nested cuts per round and park the
    /// rest in the cut pool for later reactivation.
    Batched,
}

/// Tuning knobs for the cut-pool separation engine (DESIGN.md §10).
#[derive(Clone, Copy, Debug)]
pub struct SeparationConfig {
    /// Row-addition policy per cut round.
    pub strategy: CutStrategy,
    /// Cap on cuts activated per round under [`CutStrategy::Batched`].
    pub max_cuts_per_round: usize,
    /// Keep separated-but-unactivated cuts in a pool and screen the pool
    /// against `x` (a dot-product scan, no maxflow) before calling the
    /// oracle.
    pub use_pool: bool,
    /// Enable the seed-pruning short-circuits (component pre-check bound,
    /// dense-pair shortcut, covered-seed skip).
    pub prune_seeds: bool,
    /// Deepen each oracle cut by violation-maximizing local search
    /// ([`strengthen`]) before batching it.
    pub strengthen_cuts: bool,
    /// Minimum violation gain a strengthening move must bring. Small
    /// margins absorb everything marginally attached and can bloat cuts;
    /// larger margins keep only decisive moves.
    pub strengthen_margin: f64,
}

impl Default for SeparationConfig {
    fn default() -> Self {
        SeparationConfig {
            strategy: CutStrategy::Batched,
            max_cuts_per_round: 64,
            use_pool: true,
            prune_seeds: true,
            strengthen_cuts: true,
            strengthen_margin: 0.25,
        }
    }
}

impl SeparationConfig {
    /// The pre-engine baseline: one cut per round, no pool, no pruning,
    /// no strengthening.
    pub fn single_cut() -> Self {
        SeparationConfig {
            strategy: CutStrategy::SingleCut,
            use_pool: false,
            prune_seeds: false,
            strengthen_cuts: false,
            ..SeparationConfig::default()
        }
    }
}

/// Counter handles for the oracle. The owner (`CutLp`, or the free
/// functions below) resolves these once from a metrics registry and the
/// engine bumps them from whatever thread runs a seed — the handles are
/// plain `Arc` atomics, so parallel workers need not inherit (or even know
/// about) an ambient collector and final sums are schedule-independent.
#[derive(Clone, Debug)]
pub struct SepCounters {
    pub(crate) calls: Counter,
    pub(crate) min_cut_seeds: Counter,
    pub(crate) violated: Counter,
    pub(crate) seeds_pruned: Counter,
    /// Cumulative wall time inside per-seed maxflow calls. A sum of
    /// atomics, so it stays schedule-independent under parallel fan-out.
    pub(crate) maxflow_ns: Counter,
    /// Per-seed maxflow wall time (µs) — the profiler's attribution of
    /// oracle cost to individual seeds, not just the stage total.
    pub(crate) maxflow_us: Histogram,
}

/// Per-seed maxflow wall-time buckets (µs, up to 100 ms then overflow).
const MAXFLOW_US_BUCKETS: &[u64] =
    &[10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

impl SepCounters {
    /// Resolves the `sep.*` handles from `reg`.
    pub fn from_registry(reg: &Registry) -> Self {
        SepCounters {
            calls: reg.counter("sep.calls"),
            min_cut_seeds: reg.counter("sep.min_cut_seeds"),
            violated: reg.counter("sep.violated_sets"),
            seeds_pruned: reg.counter("sep.seeds_pruned"),
            maxflow_ns: reg.counter("sep.maxflow_ns"),
            maxflow_us: reg.histogram("sep.maxflow_us", MAXFLOW_US_BUCKETS),
        }
    }

    fn ambient_or_detached() -> Self {
        SepCounters::from_registry(wsn_obs::current_or_detached().registry())
    }
}

/// Returns violated subtour sets (each as a sorted node list), or empty if
/// `x` satisfies every subtour constraint within `tol`.
///
/// The list is deduplicated; each returned `S` is verified to violate
/// `x(E(S)) ≤ |S| − 1` by at least `tol` before being reported.
pub fn violated_sets(n: usize, edges: &[FracEdge], tol: f64) -> Vec<Vec<usize>> {
    violated_sets_with(n, edges, tol, n >= PARALLEL_SEP_THRESHOLD)
}

/// As [`violated_sets`], with explicit control over parallel fan-out of
/// the per-seed min-cuts. Output is identical either way: every returned
/// set is sorted, and the collection order is canonical (`BTreeMap`).
///
/// This is a convenience wrapper that runs a throwaway [`SeedOracle`]
/// without seed pruning; long-lived callers (the cutting-plane loop) keep
/// their own oracle so the scratch networks survive between calls.
pub fn violated_sets_with(
    n: usize,
    edges: &[FracEdge],
    tol: f64,
    parallel: bool,
) -> Vec<Vec<usize>> {
    let counters = SepCounters::ambient_or_detached();
    let mut oracle = SeedOracle::new();
    oracle
        .separate(n, edges, tol, parallel, false, &counters)
        .into_iter()
        .map(|vs| vs.set)
        .collect()
}

/// One reusable auxiliary network plus the edge ids needed to delta-update
/// and query it.
#[derive(Debug)]
struct SeedScratch {
    net: FlowNetwork,
    /// Per node `v`: `src → v` edge carrying `max(−w(v), 0)`.
    node_src: Vec<FlowEdgeId>,
    /// Per node `v`: `v → snk` edge carrying `max(w(v), 0)`.
    node_snk: Vec<FlowEdgeId>,
    /// Per instance edge: undirected edge carrying `x_e / 2`.
    graph_edges: Vec<FlowEdgeId>,
    /// Per seed `s`: `src → s` edge at 0, flipped to ∞ for one query.
    seed_edges: Vec<FlowEdgeId>,
    /// The fractional point the capacities currently encode.
    last_x: Vec<f64>,
    last_w: Vec<f64>,
    side: Vec<bool>,
}

impl SeedScratch {
    fn build(n: usize, edges: &[FracEdge], w: &[f64]) -> Self {
        let src = n;
        let snk = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        // Both directions of every node weight are pre-declared (at most
        // one is nonzero at a time) so later sign flips of w(v) are plain
        // capacity updates, not topology changes.
        let node_src: Vec<FlowEdgeId> =
            (0..n).map(|v| net.add_edge(src, v, (-w[v]).max(0.0))).collect();
        let node_snk: Vec<FlowEdgeId> =
            (0..n).map(|v| net.add_edge(v, snk, w[v].max(0.0))).collect();
        // Every instance edge is declared even at x_e = 0: zero-capacity
        // edges carry no flow, and keeping them makes a later x_e > 0 a
        // capacity update too.
        let graph_edges: Vec<FlowEdgeId> =
            edges.iter().map(|e| net.add_undirected_edge(e.u, e.v, (e.x / 2.0).max(0.0))).collect();
        let seed_edges: Vec<FlowEdgeId> = (0..n).map(|s| net.add_edge(src, s, 0.0)).collect();
        SeedScratch {
            net,
            node_src,
            node_snk,
            graph_edges,
            seed_edges,
            last_x: edges.iter().map(|e| e.x).collect(),
            last_w: w.to_vec(),
            side: Vec::new(),
        }
    }

    /// Re-declares only the capacities that moved beyond [`CAP_EPS`].
    fn sync(&mut self, edges: &[FracEdge], w: &[f64]) {
        for (i, e) in edges.iter().enumerate() {
            if (e.x - self.last_x[i]).abs() > CAP_EPS {
                self.net.set_base_cap_undirected(self.graph_edges[i], (e.x / 2.0).max(0.0));
                self.last_x[i] = e.x;
            }
        }
        for (v, &wv) in w.iter().enumerate() {
            if (wv - self.last_w[v]).abs() > CAP_EPS {
                self.net.set_base_cap(self.node_src[v], (-wv).max(0.0));
                self.net.set_base_cap(self.node_snk[v], wv.max(0.0));
                self.last_w[v] = wv;
            }
        }
    }
}

/// RAII lease on a scratch network: returns it to the oracle's shared
/// store on drop, so worker threads recycle networks across calls instead
/// of rebuilding per thread.
struct ScratchLease<'a> {
    store: &'a Mutex<Vec<SeedScratch>>,
    sc: Option<SeedScratch>,
}

impl ScratchLease<'_> {
    fn get(&mut self) -> &mut SeedScratch {
        self.sc.as_mut().expect("lease holds a scratch until drop")
    }
}

// Scratches are a pure allocation cache — a panicking sibling thread cannot
// leave one inconsistent — so every lock below recovers from poisoning
// instead of cascading the panic.
impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(sc) = self.sc.take() {
            self.store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(sc);
        }
    }
}

/// The stateful separation engine: a store of reusable auxiliary networks
/// keyed to one instance topology, plus the pruned seeded-min-cut sweep.
///
/// Owned by `CutLp` so the networks survive across cut rounds and IRA
/// shrink steps; a call with a different topology retargets transparently.
#[derive(Debug, Default)]
pub struct SeedOracle {
    n: usize,
    /// Edge endpoints of the instance the cached scratches were built for.
    sig: Vec<(usize, usize)>,
    store: Mutex<Vec<SeedScratch>>,
}

impl Clone for SeedOracle {
    fn clone(&self) -> Self {
        // Scratches are an allocation cache, not state: clones start cold.
        SeedOracle { n: self.n, sig: self.sig.clone(), store: Mutex::new(Vec::new()) }
    }
}

impl SeedOracle {
    /// Creates an engine with no cached networks.
    pub fn new() -> Self {
        SeedOracle::default()
    }

    /// Number of cached scratch networks (test/diagnostic hook).
    pub fn cached_scratches(&self) -> usize {
        self.store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Drops cached scratches if the instance topology changed.
    fn retarget(&mut self, n: usize, edges: &[FracEdge]) {
        let matches = self.n == n
            && self.sig.len() == edges.len()
            && self.sig.iter().zip(edges).all(|(&(u, v), e)| u == e.u && v == e.v);
        if !matches {
            self.n = n;
            self.sig = edges.iter().map(|e| (e.u, e.v)).collect();
            self.store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
    }

    fn lease<'a>(&'a self, edges: &[FracEdge], w: &[f64]) -> ScratchLease<'a> {
        let cached = self.store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop();
        let sc = match cached {
            Some(mut sc) => {
                sc.sync(edges, w);
                sc
            }
            None => SeedScratch::build(self.n, edges, w),
        };
        ScratchLease { store: &self.store, sc: Some(sc) }
    }

    /// Runs the separation oracle against the fractional point `edges`,
    /// reusing (and delta-updating) the cached networks.
    ///
    /// Returns every violated set found — sorted members, canonical
    /// collection order, verified violation — or empty iff `x` satisfies
    /// all subtour constraints within `tol`. `prune` enables the seed
    /// short-circuits described in the module docs; they never change the
    /// empty/nonempty verdict, only how many distinct sets one call
    /// reports.
    pub fn separate(
        &mut self,
        n: usize,
        edges: &[FracEdge],
        tol: f64,
        parallel: bool,
        prune: bool,
        counters: &SepCounters,
    ) -> Vec<ViolatedSet> {
        counters.calls.inc();
        self.retarget(n, edges);
        let mut found: BTreeMap<Vec<usize>, f64> = BTreeMap::new();

        // --- Pre-check: components of the support graph. ---
        let support: Vec<(usize, usize)> =
            edges.iter().filter(|e| e.x > tol).map(|e| (e.u, e.v)).collect();
        let (labels, k) = components(n, support.iter().copied());
        let mut comp_mass = vec![0.0f64; k];
        let mut comp_size = vec![0usize; k];
        for e in edges {
            if labels[e.u] == labels[e.v] {
                comp_mass[labels[e.u]] += e.x;
            }
        }
        for v in 0..n {
            comp_size[labels[v]] += 1;
        }
        if k > 1 {
            for comp in 0..k {
                let viol = comp_mass[comp] - (comp_size[comp] as f64 - 1.0);
                if comp_size[comp] >= 2 && viol > tol {
                    let set: Vec<usize> = (0..n).filter(|&v| labels[v] == comp).collect();
                    found.insert(set, viol);
                }
            }
            if !found.is_empty() {
                counters.violated.add(found.len() as u64);
                return collect(found);
            }
        }

        // --- Pruning pre-passes. ---
        let mut covered = vec![false; n];
        let mut pruned = 0u64;
        if prune {
            // Dense pairs: aggregated mass above 1 + tol is a violation of
            // the two-element subtour bound, no min-cut needed.
            let mut pair_mass: HashMap<(usize, usize), f64> = HashMap::new();
            for e in edges {
                if e.u != e.v {
                    *pair_mass.entry((e.u.min(e.v), e.u.max(e.v))).or_insert(0.0) += e.x;
                }
            }
            for (&(u, v), &m) in &pair_mass {
                if m > 1.0 + tol {
                    found.insert(vec![u, v], m - 1.0);
                    covered[u] = true;
                    covered[v] = true;
                }
            }
        }

        // --- Exact oracle: one min-cut per surviving seed. ---
        // Node weights w(v) = 1 − x(δ(v))/2.
        let mut half_deg = vec![0.0f64; n];
        for e in edges {
            half_deg[e.u] += e.x / 2.0;
            half_deg[e.v] += e.x / 2.0;
        }
        let w: Vec<f64> = (0..n).map(|v| 1.0 - half_deg[v]).collect();
        let p_neg: f64 = w.iter().filter(|&&x| x < 0.0).sum();

        let src = n;
        let snk = n + 1;
        let run_seed = |sc: &mut SeedScratch, s: usize| -> Option<ViolatedSet> {
            counters.min_cut_seeds.inc();
            sc.net.reset();
            sc.net.set_cap(sc.seed_edges[s], f64::INFINITY);
            let flow_start = std::time::Instant::now();
            let flow = sc.net.max_flow(src, snk);
            let flow_elapsed = flow_start.elapsed();
            counters.maxflow_ns.add(flow_elapsed.as_nanos() as u64);
            counters.maxflow_us.observe(flow_elapsed.as_micros() as u64);
            let min_f = p_neg + flow - 1.0;
            if min_f >= -tol {
                return None;
            }
            let side = &mut sc.side;
            sc.net.min_cut_source_side_into(src, side);
            let set: Vec<usize> = (0..n).filter(|&v| side[v]).collect();
            if set.len() < 2 || set.len() >= n {
                return None;
            }
            let viol = violation(edges, &set);
            (viol > tol).then_some(ViolatedSet { set, violation: viol })
        };

        let mut chunk = Vec::with_capacity(SEED_CHUNK);
        for base in (0..n).step_by(SEED_CHUNK) {
            chunk.clear();
            for s in base..(base + SEED_CHUNK).min(n) {
                let skip = prune && (comp_mass[labels[s]] <= 1.0 + tol || covered[s]);
                if skip {
                    pruned += 1;
                } else {
                    chunk.push(s);
                }
            }
            if chunk.is_empty() {
                continue;
            }
            let wave: Vec<Option<ViolatedSet>> = if parallel && chunk.len() > 1 {
                parallel_map_with(
                    chunk.len(),
                    || self.lease(edges, &w),
                    |lease, i| run_seed(lease.get(), chunk[i]),
                )
            } else {
                let mut lease = self.lease(edges, &w);
                chunk.iter().map(|&s| run_seed(lease.get(), s)).collect()
            };
            for vs in wave.into_iter().flatten() {
                for &v in &vs.set {
                    covered[v] = true;
                }
                found.insert(vs.set, vs.violation);
            }
        }
        counters.violated.add(found.len() as u64);
        counters.seeds_pruned.add(pruned);
        collect(found)
    }
}

fn collect(found: BTreeMap<Vec<usize>, f64>) -> Vec<ViolatedSet> {
    found.into_iter().map(|(set, violation)| ViolatedSet { set, violation }).collect()
}

/// Violation-maximizing local strengthening of a separated set.
///
/// Every `S ⊆ V` yields a valid subtour row, so a separated set may be
/// traded for any deeper one. Greedy moves with strictly positive gain:
/// absorbing `v ∉ S` changes the violation by `x(v : S) − 1`, shedding
/// `v ∈ S` by `1 − x(v : S∖{v})` — the pass applies the best move until
/// none gains more than `eps`. Deeper cuts stay violated across more LP
/// reoptimizations, which is what lets the batched engine retire the
/// cutting loop in fewer rounds (DESIGN.md §10). Violation never
/// decreases, so a violated input stays violated. Returns the sorted set.
pub fn strengthen(n: usize, edges: &[FracEdge], set: &[usize], eps: f64) -> Vec<usize> {
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v] = true;
    }
    let mut size = set.len();
    // mass[v] = Σ x_e over edges between v and S∖{v}.
    let mut mass = vec![0.0f64; n];
    for e in edges {
        if e.u != e.v {
            if in_set[e.v] {
                mass[e.u] += e.x;
            }
            if in_set[e.u] {
                mass[e.v] += e.x;
            }
        }
    }
    // Each applied move raises the violation by at least `eps`, and the
    // violation is bounded by the total edge mass, so this terminates; the
    // explicit cap is belt-and-braces against float drift.
    for _ in 0..2 * n {
        let mut best = eps;
        let mut pick: Option<(usize, bool)> = None; // (node, absorb?)
        for v in 0..n {
            if in_set[v] {
                if size > 2 && 1.0 - mass[v] > best {
                    best = 1.0 - mass[v];
                    pick = Some((v, false));
                }
            } else if mass[v] - 1.0 > best {
                best = mass[v] - 1.0;
                pick = Some((v, true));
            }
        }
        let Some((v, absorb)) = pick else { break };
        in_set[v] = absorb;
        size = if absorb { size + 1 } else { size - 1 };
        for e in edges {
            if e.u == e.v {
                continue;
            }
            let delta = if absorb { e.x } else { -e.x };
            if e.u == v {
                mass[e.v] += delta;
            } else if e.v == v {
                mass[e.u] += delta;
            }
        }
    }
    (0..n).filter(|&v| in_set[v]).collect()
}

/// `x(E(S)) − (|S| − 1)`: positive means `S` violates the subtour bound.
pub fn violation(edges: &[FracEdge], set: &[usize]) -> f64 {
    let in_set: std::collections::HashSet<usize> = set.iter().copied().collect();
    let internal: f64 =
        edges.iter().filter(|e| in_set.contains(&e.u) && in_set.contains(&e.v)).map(|e| e.x).sum();
    internal - (set.len() as f64 - 1.0)
}

/// As [`violation`], for a **sorted** set, via binary search — the
/// allocation-free form the cut pool's screening scan uses.
pub fn violation_sorted(edges: &[FracEdge], set: &[usize]) -> f64 {
    debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
    let member = |v: usize| set.binary_search(&v).is_ok();
    let internal: f64 = edges.iter().filter(|e| member(e.u) && member(e.v)).map(|e| e.x).sum();
    internal - (set.len() as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(u: usize, v: usize, x: f64) -> FracEdge {
        FracEdge { u, v, x }
    }

    fn detached_counters() -> (std::sync::Arc<wsn_obs::Obs>, SepCounters) {
        let obs = wsn_obs::Obs::detached();
        let counters = SepCounters::from_registry(obs.registry());
        (obs, counters)
    }

    #[test]
    fn spanning_tree_point_has_no_violation() {
        // A path with x = 1 on each edge satisfies all subtour constraints.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(2, 3, 1.0)];
        assert!(violated_sets(4, &edges, 1e-7).is_empty());
    }

    #[test]
    fn integral_cycle_detected() {
        // Triangle with all ones plus isolated vertex covered by edge mass
        // elsewhere: x(E({0,1,2})) = 3 > 2.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(0, 2, 1.0), fe(2, 3, 0.0)];
        let sets = violated_sets(4, &edges, 1e-7);
        assert!(!sets.is_empty());
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn fractional_violation_detected() {
        // x = 2/3 on each triangle edge: x(E(S)) = 2 > |S| − 1 = 2? No —
        // equals exactly 2... use 0.75: 2.25 > 2.
        let edges = vec![fe(0, 1, 0.75), fe(1, 2, 0.75), fe(0, 2, 0.75), fe(0, 3, 0.75)];
        let sets = violated_sets(4, &edges, 1e-7);
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn fractional_tight_is_not_violated() {
        // Exactly 2/3 each: x(E(S)) = 2 = |S| − 1; must NOT be reported.
        let x = 2.0 / 3.0;
        let edges = vec![fe(0, 1, x), fe(1, 2, x), fe(0, 2, x), fe(0, 3, 1.0)];
        let sets = violated_sets(4, &edges, 1e-6);
        assert!(sets.is_empty(), "tight sets are feasible: {sets:?}");
    }

    #[test]
    fn disconnected_support_flagged_by_precheck() {
        // Two cliques, each with too much internal mass; total = n−1 = 5.
        let edges = vec![
            fe(0, 1, 1.0),
            fe(1, 2, 1.0),
            fe(0, 2, 1.0), // component {0,1,2}: mass 3 > 2
            fe(3, 4, 1.0),
            fe(4, 5, 1.0), // component {3,4,5}: mass 2 = 2 (tight, fine)
        ];
        let sets = violated_sets(6, &edges, 1e-7);
        assert!(sets.iter().any(|s| s == &vec![0, 1, 2]));
    }

    #[test]
    fn violation_helper() {
        let edges = vec![fe(0, 1, 0.9), fe(1, 2, 0.9), fe(0, 2, 0.9)];
        assert!((violation(&edges, &[0, 1, 2]) - 0.7).abs() < 1e-12);
        assert!((violation(&edges, &[0, 1]) - (-0.1)).abs() < 1e-12);
        assert!((violation_sorted(&edges, &[0, 1, 2]) - 0.7).abs() < 1e-12);
        assert!((violation_sorted(&edges, &[0, 1]) - (-0.1)).abs() < 1e-12);
    }

    #[test]
    fn engine_reports_violation_amounts() {
        let (_obs, counters) = detached_counters();
        let edges = vec![fe(0, 1, 0.9), fe(1, 2, 0.9), fe(0, 2, 0.9), fe(0, 3, 0.3)];
        let mut oracle = SeedOracle::new();
        let sets = oracle.separate(4, &edges, 1e-7, false, false, &counters);
        let tri = sets.iter().find(|vs| vs.set == vec![0, 1, 2]).expect("triangle separated");
        assert!((tri.violation - 0.7).abs() < 1e-9, "got {}", tri.violation);
    }

    #[test]
    fn scratch_store_survives_and_retargets() {
        let (_obs, counters) = detached_counters();
        let edges = vec![fe(0, 1, 0.9), fe(1, 2, 0.9), fe(0, 2, 0.9), fe(0, 3, 0.3)];
        let mut oracle = SeedOracle::new();
        let first = oracle.separate(4, &edges, 1e-7, false, false, &counters);
        assert_eq!(oracle.cached_scratches(), 1, "serial call leaves one cached network");

        // Same topology, different point: the cached network is reused via
        // delta updates and must answer exactly like a fresh oracle.
        let moved = vec![fe(0, 1, 0.75), fe(1, 2, 0.75), fe(0, 2, 0.75), fe(0, 3, 0.75)];
        let warm = oracle.separate(4, &moved, 1e-7, false, false, &counters);
        let fresh = SeedOracle::new().separate(4, &moved, 1e-7, false, false, &counters);
        assert_eq!(warm, fresh);
        assert_ne!(warm, first);

        // New topology: the store retargets (old networks dropped).
        let other = vec![fe(0, 1, 1.0), fe(1, 2, 1.0)];
        let _ = oracle.separate(3, &other, 1e-7, false, false, &counters);
        assert_eq!(oracle.cached_scratches(), 1);
    }

    #[test]
    fn component_bound_prunes_light_components_and_singletons() {
        let (obs, counters) = detached_counters();
        // No support component is violated *as a whole* (so the
        // disconnected-support pre-check falls through), but component
        // {0,1,2,3} hides a violated triangle. The light pendant pair
        // {4,5} (mass 0.8 ≤ 1) and the singleton {6} (mass 0) are pruned
        // by the component bound without a single min-cut.
        let edges = vec![
            fe(0, 1, 0.9),
            fe(1, 2, 0.9),
            fe(0, 2, 0.9),
            fe(2, 3, 0.2), // component mass 2.9 ≤ |C| − 1 = 3: not violated
            fe(4, 5, 0.8),
        ];
        let mut oracle = SeedOracle::new();
        let sets = oracle.separate(7, &edges, 1e-7, false, true, &counters);
        assert!(sets.iter().any(|vs| vs.set == vec![0, 1, 2]));
        // Seeds 4, 5 (light component) and 6 (singleton) pruned; all seven
        // seeds fit one wave, so the four heavy-component seeds all run.
        assert_eq!(obs.registry().counter("sep.seeds_pruned").get(), 3);
        assert_eq!(obs.registry().counter("sep.min_cut_seeds").get(), 4);
    }

    #[test]
    fn dense_pair_shortcut_avoids_min_cuts_for_its_nodes() {
        let (obs, counters) = detached_counters();
        // Connected support (single component, so the component pre-check
        // does not intercept). Aggregated (0,1) mass 1.2 > 1 triggers the
        // dense-pair shortcut; seeds 0 and 1 are covered by the found set
        // and only seed 2 runs a min-cut.
        let edges = vec![fe(0, 1, 0.6), fe(0, 1, 0.6), fe(1, 2, 0.8)];
        let mut oracle = SeedOracle::new();
        let sets = oracle.separate(3, &edges, 1e-7, false, true, &counters);
        assert!(sets.iter().any(|vs| vs.set == vec![0, 1]));
        let pair = sets.iter().find(|vs| vs.set == vec![0, 1]).unwrap();
        assert!((pair.violation - 0.2).abs() < 1e-9);
        assert_eq!(obs.registry().counter("sep.min_cut_seeds").get(), 1);
        assert_eq!(obs.registry().counter("sep.seeds_pruned").get(), 2);
    }

    #[test]
    fn dense_pair_shortcut_needs_strict_excess() {
        let (_obs, counters) = detached_counters();
        // Pair mass exactly 1.0 is tight, not violated.
        let edges = vec![fe(0, 1, 0.5), fe(0, 1, 0.5), fe(1, 2, 1.0)];
        let mut oracle = SeedOracle::new();
        let sets = oracle.separate(3, &edges, 1e-7, false, true, &counters);
        assert!(sets.is_empty(), "tight pair must not be reported: {sets:?}");
    }

    #[test]
    fn covered_seed_skip_crosses_waves() {
        let (obs, counters) = detached_counters();
        // One connected component spanning 18 nodes (> SEED_CHUNK), with a
        // heavy triangle at {15,16,17}. Wave 1 (seeds 0..16) finds the
        // triangle via seed 15; wave 2's seeds 16 and 17 are covered and
        // skipped. The connecting path is light (0.1) so the component
        // stays heavy only through the triangle.
        let mut edges: Vec<FracEdge> = (0..15).map(|v| fe(v, v + 1, 0.1)).collect();
        edges.push(fe(15, 16, 0.9));
        edges.push(fe(16, 17, 0.9));
        edges.push(fe(15, 17, 0.9));
        let mut oracle = SeedOracle::new();
        let sets = oracle.separate(18, &edges, 1e-7, false, true, &counters);
        assert!(sets.iter().any(|vs| vs.set == vec![15, 16, 17]));
        assert_eq!(obs.registry().counter("sep.seeds_pruned").get(), 2, "wave-2 seeds covered");
        assert_eq!(obs.registry().counter("sep.min_cut_seeds").get(), 16);
    }

    #[test]
    fn strengthening_absorbs_a_heavily_attached_neighbor() {
        // Triangle {0,1,2} at x = 1 plus node 3 attached with mass 1.8:
        // absorbing it gains 0.8 > margin, raising the violation 1.0 → 1.8.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(0, 2, 1.0), fe(0, 3, 0.9), fe(1, 3, 0.9)];
        let deep = strengthen(4, &edges, &[0, 1, 2], 0.25);
        assert_eq!(deep, vec![0, 1, 2, 3]);
        assert!((violation(&edges, &deep) - 1.8).abs() < 1e-9);
    }

    #[test]
    fn strengthening_sheds_a_weakly_attached_member() {
        // Node 3 hangs off the violated triangle by mass 0.3: shedding it
        // gains 0.7, and the pendant edge to node 4 never matters.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(0, 2, 1.0), fe(2, 3, 0.3), fe(3, 4, 0.4)];
        let deep = strengthen(5, &edges, &[0, 1, 2, 3], 0.25);
        assert_eq!(deep, vec![0, 1, 2]);
        assert!(violation(&edges, &deep) > violation(&edges, &[0, 1, 2, 3]));
    }

    #[test]
    fn strengthening_with_no_gaining_move_is_identity() {
        // Every outside node is attached by well under 1 + margin and every
        // member holds more than 1 − margin inside: no move fires.
        let edges = vec![fe(0, 1, 1.0), fe(1, 2, 1.0), fe(0, 2, 1.0), fe(2, 3, 0.5)];
        assert_eq!(strengthen(4, &edges, &[0, 1, 2], 0.25), vec![0, 1, 2]);
    }

    #[test]
    fn strengthening_never_shrinks_below_a_pair() {
        // A violated pair with nothing worth absorbing stays a pair even
        // though both members hold less than 1 − margin... they cannot:
        // the shed guard requires |S| > 2.
        let edges = vec![fe(0, 1, 0.6), fe(0, 1, 0.6), fe(1, 2, 0.8)];
        let deep = strengthen(3, &edges, &[0, 1], 0.25);
        assert!(deep.len() >= 2);
        assert!(violation(&edges, &deep) >= violation(&edges, &[0, 1]) - 1e-12);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force check over all subsets (n ≤ 7).
        fn brute_violated(n: usize, edges: &[FracEdge], tol: f64) -> bool {
            (0u32..(1 << n)).any(|mask| {
                if mask.count_ones() < 2 {
                    return false;
                }
                let set: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                violation(edges, &set) > tol
            })
        }

        /// Normalizes raw proptest edge tuples into a point with total mass
        /// `n − 1` (the cardinality equality the oracle assumes); `None`
        /// when the draw can't be normalized into [0, 1] values.
        fn normalized(n: usize, raw: Vec<(usize, usize, u32)>) -> Option<Vec<FracEdge>> {
            let mut edges: Vec<FracEdge> = raw
                .into_iter()
                .filter(|&(u, v, _)| u != v)
                .map(|(u, v, x)| fe(u.min(v), u.max(v), x as f64 / 100.0))
                .collect();
            if edges.is_empty() {
                return None;
            }
            let mass: f64 = edges.iter().map(|e| e.x).sum();
            if mass <= 1e-6 {
                return None;
            }
            let scale = (n as f64 - 1.0) / mass;
            for e in &mut edges {
                e.x *= scale;
            }
            edges.iter().all(|e| e.x <= 1.0 + 1e-9).then_some(edges)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn oracle_agrees_with_brute_force(
                raw in proptest::collection::vec((0usize..6, 0usize..6, 0u32..=100), 5..14)
            ) {
                let n = 6;
                let Some(edges) = normalized(n, raw) else { return Ok(()) };
                let tol = 1e-6;
                let sets = violated_sets(n, &edges, tol);
                let brute = brute_violated(n, &edges, tol);
                if brute {
                    // The oracle must find at least one genuinely violated set.
                    prop_assert!(!sets.is_empty(), "oracle missed a violation");
                }
                for s in &sets {
                    prop_assert!(violation(&edges, s) > tol, "bogus set {s:?}");
                }
            }

            #[test]
            fn pruned_oracle_matches_brute_force_verdict(
                raw in proptest::collection::vec((0usize..6, 0usize..6, 0u32..=100), 5..14)
            ) {
                let n = 6;
                let Some(edges) = normalized(n, raw) else { return Ok(()) };
                let tol = 1e-6;
                let (_obs, counters) = detached_counters();
                let sets = SeedOracle::new().separate(n, &edges, tol, false, true, &counters);
                let brute = brute_violated(n, &edges, tol);
                prop_assert_eq!(!sets.is_empty(), brute,
                    "pruning changed the feasibility verdict");
                for vs in &sets {
                    prop_assert!(violation(&edges, &vs.set) > tol, "bogus set {:?}", vs.set);
                    prop_assert!((violation(&edges, &vs.set) - vs.violation).abs() < 1e-9);
                }
            }

            #[test]
            fn parallel_separation_identical_to_serial(
                raw in proptest::collection::vec((0usize..9, 0usize..9, 0u32..=100), 8..24)
            ) {
                let n = 9;
                let Some(edges) = normalized(n, raw) else { return Ok(()) };
                let serial = violated_sets_with(n, &edges, 1e-6, false);
                let parallel = violated_sets_with(n, &edges, 1e-6, true);
                prop_assert_eq!(serial, parallel);

                // The pruned engine is wave-chunked precisely so this holds
                // with pruning too.
                let (_obs, counters) = detached_counters();
                let ser = SeedOracle::new().separate(n, &edges, 1e-6, false, true, &counters);
                let par = SeedOracle::new().separate(n, &edges, 1e-6, true, true, &counters);
                prop_assert_eq!(ser, par);
            }

            #[test]
            fn strengthening_is_monotone_and_well_formed(
                raw in proptest::collection::vec((0usize..7, 0usize..7, 0u32..=100), 6..18),
                mask in 3u32..(1 << 7),
                margin in 1u32..50,
            ) {
                let n = 7;
                let Some(edges) = normalized(n, raw) else { return Ok(()) };
                let set: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                if set.len() < 2 {
                    return Ok(());
                }
                let deep = strengthen(n, &edges, &set, margin as f64 / 100.0);
                prop_assert!(deep.len() >= 2);
                prop_assert!(deep.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
                prop_assert!(
                    violation(&edges, &deep) >= violation(&edges, &set) - 1e-9,
                    "strengthening lowered the violation: {set:?} -> {deep:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_path_used_above_threshold() {
        // A big cycle: x = 1 on every edge of a 40-cycle violates the
        // subtour bound on the full... no — S = V attains exactly 0; put
        // the cycle on a 39-node subset and attach the last node by a
        // fractional edge so total mass is n − 1.
        let n = 40usize;
        let mut edges: Vec<FracEdge> = (0..n - 1).map(|v| fe(v, (v + 1) % (n - 1), 1.0)).collect();
        // mass so far = 39 = n − 1; steal mass from one cycle edge for the
        // attachment so the equality still holds.
        edges[0].x = 0.5;
        edges.push(fe(0, n - 1, 0.5));
        let sets = violated_sets(n, &edges, 1e-7); // n ≥ threshold → parallel
        let expected: Vec<usize> = (0..n - 1).collect();
        assert!(sets.iter().any(|s| s == &expected), "cycle must be separated");
        assert_eq!(sets, violated_sets_with(n, &edges, 1e-7, false));
    }
}

//! Persistent pool of separated subtour cuts.
//!
//! Every set the oracle ever separates is parked here, partitioned into
//! **active** cuts (materialized as LP rows) and **inactive** ones (found
//! in a batch but not yet worth a row). Each cut round screens the
//! inactive side against the current fractional point — a dot-product
//! scan per cut, no maxflow — and re-activates violated members, so the
//! expensive seeded min-cut oracle only runs when the pool is clean. The
//! pool deliberately survives IRA shrink steps and lifetime-constraint
//! drops: subtour cuts stay valid on any edge subset of the instance that
//! produced them.

use crate::separation::{violation_sorted, FracEdge, ViolatedSet};
use std::collections::BTreeMap;

/// Deduplicated store of subtour sets with activation state.
#[derive(Clone, Debug, Default)]
pub struct CutPool {
    /// All pooled sets (sorted member lists), in first-seen order.
    sets: Vec<Vec<usize>>,
    active: Vec<bool>,
    /// Set → index into `sets`.
    index: BTreeMap<Vec<usize>, usize>,
    /// Activation sequence; LP row materialization follows this order.
    active_order: Vec<usize>,
}

impl CutPool {
    /// An empty pool.
    pub fn new() -> Self {
        CutPool::default()
    }

    /// Total pooled cuts, active and inactive.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when nothing has been pooled yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Cuts currently materialized (or due to be) as LP rows.
    pub fn active_count(&self) -> usize {
        self.active_order.len()
    }

    /// Cuts parked for screening.
    pub fn inactive_count(&self) -> usize {
        self.sets.len() - self.active_order.len()
    }

    /// The `i`-th cut in activation order (append-only, so LP row builders
    /// can materialize a stable prefix).
    pub fn active_set(&self, i: usize) -> &[usize] {
        &self.sets[self.active_order[i]]
    }

    /// True if `set` is pooled and active.
    pub fn is_active(&self, set: &[usize]) -> bool {
        self.index.get(set).is_some_and(|&i| self.active[i])
    }

    /// True if `set` is pooled at all.
    pub fn contains(&self, set: &[usize]) -> bool {
        self.index.contains_key(set)
    }

    /// Parks `set` without activating it; no-op when already pooled (in
    /// either state). Returns true when the set is new to the pool.
    pub fn insert_inactive(&mut self, set: Vec<usize>) -> bool {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "pool sets arrive sorted");
        if self.index.contains_key(&set) {
            return false;
        }
        let idx = self.sets.len();
        self.index.insert(set.clone(), idx);
        self.sets.push(set);
        self.active.push(false);
        true
    }

    /// Inserts (if new) and activates `set`. Returns true when the call
    /// changed its state to active — i.e. the LP gains a row.
    pub fn activate(&mut self, set: Vec<usize>) -> bool {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "pool sets arrive sorted");
        let idx = match self.index.get(&set) {
            Some(&i) => i,
            None => {
                let i = self.sets.len();
                self.index.insert(set.clone(), i);
                self.sets.push(set);
                self.active.push(false);
                i
            }
        };
        if self.active[idx] {
            return false;
        }
        self.active[idx] = true;
        self.active_order.push(idx);
        true
    }

    /// Screens every inactive cut against the fractional point, returning
    /// `(screened, violated)` where `violated` lists the inactive cuts
    /// whose violation exceeds `tol` (in first-seen pool order).
    pub fn screen(&self, edges: &[FracEdge], tol: f64) -> (usize, Vec<ViolatedSet>) {
        let mut screened = 0;
        let mut violated = Vec::new();
        for (i, set) in self.sets.iter().enumerate() {
            if self.active[i] {
                continue;
            }
            screened += 1;
            let v = violation_sorted(edges, set);
            if v > tol {
                violated.push(ViolatedSet { set: set.clone(), violation: v });
            }
        }
        (screened, violated)
    }
}

/// Splits `candidates` into `(picked, rest)`: up to `k` cuts, most violated
/// first (ties toward the lexicographically smaller set), with no picked
/// cut nested (⊆ or ⊇, duplicates included) inside another picked one.
/// Nested near-copies of one violated structure add almost-parallel LP rows
/// for one reoptimization to retire, so only the strongest representative
/// of each chain is worth a row this round; the rest go to the pool.
pub fn select_batch(
    mut candidates: Vec<ViolatedSet>,
    k: usize,
) -> (Vec<ViolatedSet>, Vec<ViolatedSet>) {
    candidates.sort_by(|a, b| {
        b.violation
            .partial_cmp(&a.violation)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.set.cmp(&b.set))
    });
    let mut picked: Vec<ViolatedSet> = Vec::new();
    let mut rest = Vec::new();
    for c in candidates {
        if picked.len() < k && !picked.iter().any(|p| nested(&p.set, &c.set)) {
            picked.push(c);
        } else {
            rest.push(c);
        }
    }
    (picked, rest)
}

/// True when one sorted set contains the other (equality included).
fn nested(a: &[usize], b: &[usize]) -> bool {
    if a.len() <= b.len() {
        is_subset(a, b)
    } else {
        is_subset(b, a)
    }
}

/// Sorted-merge subset test.
fn is_subset(small: &[usize], big: &[usize]) -> bool {
    let mut it = big.iter();
    'outer: for &x in small {
        for &y in it.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(u: usize, v: usize, x: f64) -> FracEdge {
        FracEdge { u, v, x }
    }

    fn vs(set: &[usize], violation: f64) -> ViolatedSet {
        ViolatedSet { set: set.to_vec(), violation }
    }

    #[test]
    fn duplicates_are_pooled_once() {
        let mut pool = CutPool::new();
        assert!(pool.insert_inactive(vec![1, 2, 3]));
        assert!(!pool.insert_inactive(vec![1, 2, 3]));
        assert_eq!(pool.len(), 1);
        assert!(pool.activate(vec![1, 2, 3]), "first activation adds a row");
        assert!(!pool.activate(vec![1, 2, 3]), "re-activation is a no-op");
        assert!(!pool.insert_inactive(vec![1, 2, 3]), "active cuts stay active");
        assert!(pool.is_active(&[1, 2, 3]));
        assert_eq!((pool.active_count(), pool.inactive_count()), (1, 0));
    }

    #[test]
    fn activation_order_is_stable() {
        let mut pool = CutPool::new();
        pool.insert_inactive(vec![0, 1]);
        pool.activate(vec![2, 3]);
        pool.activate(vec![0, 1]);
        pool.activate(vec![4, 5]);
        assert_eq!(pool.active_set(0), &[2, 3]);
        assert_eq!(pool.active_set(1), &[0, 1]);
        assert_eq!(pool.active_set(2), &[4, 5]);
    }

    #[test]
    fn screening_finds_only_violated_inactive_cuts() {
        let mut pool = CutPool::new();
        pool.activate(vec![0, 1, 2]); // active: never screened
        pool.insert_inactive(vec![3, 4, 5]); // violated below
        pool.insert_inactive(vec![0, 3]); // not violated
        let edges = vec![
            fe(0, 1, 1.0),
            fe(1, 2, 1.0),
            fe(0, 2, 1.0), // {0,1,2} violated but active
            fe(3, 4, 0.9),
            fe(4, 5, 0.9),
            fe(3, 5, 0.9), // {3,4,5}: 2.7 > 2
            fe(0, 3, 0.5),
        ];
        let (screened, violated) = pool.screen(&edges, 1e-7);
        assert_eq!(screened, 2);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].set, vec![3, 4, 5]);
        assert!((violated[0].violation - 0.7).abs() < 1e-9);
    }

    #[test]
    fn screening_skips_nothing_when_pool_is_clean() {
        let pool = CutPool::new();
        let (screened, violated) = pool.screen(&[fe(0, 1, 1.0)], 1e-7);
        assert_eq!((screened, violated.len()), (0, 0));
    }

    #[test]
    fn batch_selection_ranks_by_violation() {
        let (picked, rest) =
            select_batch(vec![vs(&[0, 1], 0.1), vs(&[4, 5], 0.9), vs(&[2, 3], 0.5)], 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].set, vec![4, 5]);
        assert_eq!(picked[1].set, vec![2, 3]);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].set, vec![0, 1]);
    }

    #[test]
    fn batch_selection_rejects_nested_and_duplicate_sets() {
        let (picked, rest) = select_batch(
            vec![
                vs(&[0, 1, 2, 3], 0.8), // superset of the winner: rejected
                vs(&[0, 1, 2], 0.9),
                vs(&[0, 1, 2], 0.9), // duplicate: nested in itself
                vs(&[1, 2], 0.7),    // subset: rejected
                vs(&[4, 5, 6], 0.3), // disjoint: picked
            ],
            16,
        );
        let picked_sets: Vec<&[usize]> = picked.iter().map(|c| c.set.as_slice()).collect();
        assert_eq!(picked_sets, vec![&[0, 1, 2][..], &[4, 5, 6][..]]);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn batch_selection_tie_breaks_lexicographically() {
        let (picked, _) = select_batch(vec![vs(&[2, 3], 0.5), vs(&[0, 4], 0.5)], 1);
        assert_eq!(picked[0].set, vec![0, 4]);
    }

    #[test]
    fn overlapping_but_unnested_sets_coexist() {
        let (picked, rest) = select_batch(vec![vs(&[0, 1, 2], 0.9), vs(&[2, 3, 4], 0.8)], 16);
        assert_eq!(picked.len(), 2, "overlap without containment is allowed");
        assert!(rest.is_empty());
    }

    #[test]
    fn subset_merge_is_correct() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(!is_subset(&[5], &[0, 1]));
        assert!(nested(&[0, 1, 2], &[0, 1]));
        assert!(nested(&[0, 1], &[0, 1]));
        assert!(!nested(&[0, 1], &[1, 2]));
    }
}

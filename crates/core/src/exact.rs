//! Exact MRLC solver by combinatorial branch-and-bound.
//!
//! MRLC is NP-complete, so this is exponential in the worst case — but for
//! evaluation-scale instances (the paper's n = 16) it closes quickly and
//! provides the ground truth IRA's approximation guarantee is measured
//! against (the optimality-gap experiment).
//!
//! Search: edges sorted by cost ascending, include/exclude branching with
//! three prunes —
//!
//! * **degree caps**: `L(v) ≥ LC` with integer children counts is exactly
//!   `deg_T(v) ≤ ⌊(I(v)/LC − Tx)/Rx⌋ + [v ≠ sink]`;
//! * **connectivity**: the not-yet-excluded edges must still be able to
//!   span the remaining components;
//! * **cost bound**: partial cost plus the MST completion over the
//!   remaining edges (degree-free, hence a valid relaxation) must beat the
//!   incumbent.

use crate::problem::MrlcInstance;
use wsn_graph::UnionFind;
use wsn_lp::SolveCtx;
use wsn_model::{lifetime, AggregationTree, NodeId};

/// How many branch-and-bound nodes between deadline/cancellation polls.
const CTX_STRIDE: u64 = 512;

/// Search budget.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Maximum branch-and-bound nodes explored before giving up.
    pub node_limit: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig { node_limit: 20_000_000 }
    }
}

/// Outcome of the exact search.
#[derive(Clone, Debug)]
pub enum ExactOutcome {
    /// The minimum-cost tree meeting `LC`, with its natural-log cost.
    Optimal {
        /// The optimal tree.
        tree: AggregationTree,
        /// Its natural-log cost.
        cost: f64,
        /// Branch-and-bound nodes explored.
        nodes: u64,
    },
    /// No spanning tree satisfies the lifetime bound.
    Infeasible {
        /// Branch-and-bound nodes explored.
        nodes: u64,
    },
    /// The node budget ran out before the search closed.
    NodeLimit,
}

struct Search<'a> {
    edges: Vec<(usize, usize, f64, usize)>, // (u, v, cost, network edge idx)
    n: usize,
    caps: Vec<usize>, // max tree degree per node
    best_cost: f64,
    best_edges: Option<Vec<usize>>,
    nodes: u64,
    limit: u64,
    inst: &'a MrlcInstance,
    ctx: Option<&'a SolveCtx>,
}

impl Search<'_> {
    /// Degree-free MST completion over `edges[from..]` starting from the
    /// partial forest `uf` — a lower bound on any feasible completion.
    fn completion_bound(&self, from: usize, uf: &UnionFind) -> Option<f64> {
        let mut uf = uf.clone();
        let mut bound = 0.0;
        let mut needed = uf.num_components() - 1;
        if needed == 0 {
            return Some(0.0);
        }
        for &(u, v, c, _) in &self.edges[from..] {
            if uf.union(u, v) {
                bound += c;
                needed -= 1;
                if needed == 0 {
                    return Some(bound);
                }
            }
        }
        None // cannot even span without the excluded edges
    }

    fn dfs(
        &mut self,
        idx: usize,
        chosen: &mut Vec<usize>,
        deg: &mut [usize],
        uf: &UnionFind,
        cost: f64,
    ) -> bool {
        self.nodes += 1;
        if self.nodes > self.limit {
            return false; // budget exhausted; propagate
        }
        if let Some(ctx) = self.ctx {
            if self.nodes.is_multiple_of(CTX_STRIDE) && (ctx.is_cancelled() || ctx.is_expired()) {
                return false; // cooperative stop, reported as NodeLimit
            }
        }
        if chosen.len() == self.n - 1 {
            if cost < self.best_cost - 1e-12 {
                self.best_cost = cost;
                self.best_edges = Some(chosen.clone());
            }
            return true;
        }
        if idx >= self.edges.len() {
            return true;
        }
        // Cost bound (also certifies connectivity is still possible).
        match self.completion_bound(idx, uf) {
            Some(b) if cost + b < self.best_cost - 1e-12 => {}
            _ => return true, // pruned
        }

        let (u, v, c, _) = self.edges[idx];
        // Branch 1: include (if acyclic and within degree caps).
        if deg[u] < self.caps[u] && deg[v] < self.caps[v] {
            let mut uf2 = uf.clone();
            if uf2.union(u, v) {
                chosen.push(idx);
                deg[u] += 1;
                deg[v] += 1;
                let ok = self.dfs(idx + 1, chosen, deg, &uf2, cost + c);
                deg[u] -= 1;
                deg[v] -= 1;
                chosen.pop();
                if !ok {
                    return false;
                }
            }
        }
        // Branch 2: exclude.
        self.dfs(idx + 1, chosen, deg, uf, cost)
    }
}

/// Runs the exact search.
pub fn solve_exact(inst: &MrlcInstance, config: &ExactConfig) -> ExactOutcome {
    solve_exact_budgeted(inst, config, None)
}

/// Runs the exact search under an optional cooperative budget.
///
/// A cancelled or expired `ctx` stops the search at the next poll stride and
/// reports [`ExactOutcome::NodeLimit`] — the search did not close, exactly as
/// if the node budget had run out.
pub fn solve_exact_budgeted(
    inst: &MrlcInstance,
    config: &ExactConfig,
    ctx: Option<&SolveCtx>,
) -> ExactOutcome {
    let net = inst.network();
    let model = inst.model();
    let n = net.n();
    if n == 1 {
        let tree = AggregationTree::from_parents(NodeId::SINK, vec![None])
            .expect("the single-node tree is always valid");
        return ExactOutcome::Optimal { tree, cost: 0.0, nodes: 0 };
    }

    // Integer degree caps implied by LC.
    let mut caps = Vec::with_capacity(n);
    for i in 0..n {
        let v = NodeId::new(i);
        let cb = lifetime::children_bound(net.initial_energy(v), model, inst.lc());
        let max_children = if cb < -1e-9 {
            return ExactOutcome::Infeasible { nodes: 0 };
        } else {
            (cb + 1e-9).floor() as usize
        };
        let cap = max_children + usize::from(v != NodeId::SINK);
        if cap == 0 {
            return ExactOutcome::Infeasible { nodes: 0 };
        }
        caps.push(cap.min(n - 1));
    }

    let mut edges: Vec<(usize, usize, f64, usize)> =
        net.edges().map(|(e, l)| (l.u().index(), l.v().index(), l.cost(), e.index())).collect();
    // total_cmp: costs are finite by construction, but a NaN-perturbed
    // instance must degrade (wrong order, still a valid tree) — not panic.
    edges.sort_by(|a, b| a.2.total_cmp(&b.2));

    let mut search = Search {
        edges,
        n,
        caps,
        best_cost: f64::INFINITY,
        best_edges: None,
        nodes: 0,
        limit: config.node_limit,
        inst,
        ctx,
    };
    let mut chosen = Vec::with_capacity(n - 1);
    let mut deg = vec![0usize; n];
    let uf = UnionFind::new(n);
    let closed = search.dfs(0, &mut chosen, &mut deg, &uf, 0.0);
    if !closed {
        return ExactOutcome::NodeLimit;
    }
    match search.best_edges {
        Some(idxs) => {
            let tree_edges: Vec<(NodeId, NodeId)> = idxs
                .iter()
                .map(|&i| {
                    let (u, v, _, _) = search.edges[i];
                    (NodeId::new(u), NodeId::new(v))
                })
                .collect();
            let tree = AggregationTree::from_edges(NodeId::SINK, n, &tree_edges)
                .expect("search invariants guarantee a spanning tree");
            debug_assert!(
                search.inst.meets_lifetime(&tree),
                "degree caps must imply the lifetime bound"
            );
            ExactOutcome::Optimal { tree, cost: search.best_cost, nodes: search.nodes }
        }
        None => ExactOutcome::Infeasible { nodes: search.nodes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ira::{solve_ira, IraConfig};
    use wsn_model::{EnergyModel, NetworkBuilder};

    fn starry(n: usize) -> wsn_model::Network {
        let mut b = NetworkBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v, 0.99).unwrap();
        }
        for u in 1..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.90).unwrap();
            }
        }
        b.build().unwrap()
    }

    /// All spanning trees by brute force.
    fn brute_opt(inst: &MrlcInstance) -> Option<f64> {
        let net = inst.network();
        let n = net.n();
        let m = net.num_edges();
        assert!(m <= 22);
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| net.links()[i].endpoints())
                .collect();
            if let Ok(tree) = AggregationTree::from_edges(NodeId::SINK, n, &edges) {
                if inst.meets_lifetime(&tree) {
                    let c = inst.cost(&tree);
                    best = Some(best.map_or(c, |b: f64| b.min(c)));
                }
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_constrained_star() {
        let net = starry(6);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 2) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let brute = brute_opt(&inst).unwrap();
        match solve_exact(&inst, &ExactConfig::default()) {
            ExactOutcome::Optimal { cost, tree, .. } => {
                assert!((cost - brute).abs() < 1e-9, "exact {cost} vs brute {brute}");
                assert!(inst.meets_lifetime(&tree));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        let net = starry(5);
        let model = EnergyModel::PAPER;
        let lc = 3000.0 / model.tx * 2.0; // beyond any leaf's lifetime
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        assert!(matches!(
            solve_exact(&inst, &ExactConfig::default()),
            ExactOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn unconstrained_equals_mst() {
        let net = starry(6);
        let inst = MrlcInstance::new(net.clone(), EnergyModel::PAPER, 10.0).unwrap();
        let mst = wsn_graph::mst_tree(&net).unwrap();
        match solve_exact(&inst, &ExactConfig::default()) {
            ExactOutcome::Optimal { cost, .. } => {
                assert!((cost - inst.cost(&mst)).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn node_limit_respected() {
        let net = starry(8);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 2) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        match solve_exact(&inst, &ExactConfig { node_limit: 3 }) {
            ExactOutcome::NodeLimit => {}
            other => panic!("expected NodeLimit, got {other:?}"),
        }
    }

    #[test]
    fn sandwiches_ira() {
        // OPT(LC) ≤ C(IRA) ≤ OPT(L'): the exact solver at both bounds
        // brackets IRA — the optimality-gap experiment's core identity.
        let net = starry(7);
        let model = EnergyModel::PAPER;
        let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.999;
        let inst = MrlcInstance::new(net, model, lc).unwrap();
        let ira = solve_ira(&inst, &IraConfig::default()).unwrap();
        let ExactOutcome::Optimal { cost: opt_lc, .. } =
            solve_exact(&inst, &ExactConfig::default())
        else {
            panic!("feasible by construction")
        };
        assert!(ira.cost >= opt_lc - 1e-9, "IRA {} below OPT {}", ira.cost, opt_lc);
        let inst_lp =
            MrlcInstance::new(inst.network().clone(), *inst.model(), ira.stats.l_prime).unwrap();
        match solve_exact(&inst_lp, &ExactConfig::default()) {
            ExactOutcome::Optimal { cost: opt_lp, .. } => {
                assert!(ira.cost <= opt_lp + 1e-9, "IRA {} above OPT(L') {}", ira.cost, opt_lp);
            }
            // L' can be integrally infeasible even when the LP was not.
            ExactOutcome::Infeasible { .. } => {}
            ExactOutcome::NodeLimit => panic!("tiny instance must close"),
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn exact_matches_brute_force(
                n in 4usize..7,
                spine_q in proptest::collection::vec(60u32..100, 6),
                extra in proptest::collection::vec((0usize..7, 0usize..7, 60u32..100), 0..8),
                k in 1usize..4,
            ) {
                let mut b = NetworkBuilder::new(n);
                for i in 0..n - 1 {
                    b.add_edge(i, i + 1, spine_q[i] as f64 / 100.0).unwrap();
                }
                for (u, v, q) in extra {
                    if u < n && v < n && u != v {
                        let _ = b.add_edge(u, v, q as f64 / 100.0);
                    }
                }
                let net = b.build().unwrap();
                prop_assume!(net.num_edges() <= 20);
                let model = EnergyModel::PAPER;
                let lc = lifetime::node_lifetime(3000.0, &model, k) * 0.999;
                let inst = MrlcInstance::new(net, model, lc).unwrap();
                let brute = brute_opt(&inst);
                match solve_exact(&inst, &ExactConfig::default()) {
                    ExactOutcome::Optimal { cost, tree, .. } => {
                        let b = brute.expect("brute force must agree on feasibility");
                        prop_assert!((cost - b).abs() < 1e-9,
                            "exact {cost} vs brute {b}");
                        prop_assert!(inst.meets_lifetime(&tree));
                    }
                    ExactOutcome::Infeasible { .. } => {
                        prop_assert!(brute.is_none(),
                            "exact says infeasible but brute found {brute:?}");
                    }
                    ExactOutcome::NodeLimit => {
                        prop_assert!(false, "tiny instance hit the node limit");
                    }
                }
            }
        }
    }

    #[test]
    fn single_node() {
        let mut b = NetworkBuilder::new(1);
        b.set_uniform_energy(3000.0).unwrap();
        let inst = MrlcInstance::new(b.build().unwrap(), EnergyModel::PAPER, 1e6).unwrap();
        assert!(matches!(
            solve_exact(&inst, &ExactConfig::default()),
            ExactOutcome::Optimal { cost, .. } if cost == 0.0
        ));
    }
}

//! The MRLC problem instance (Problem 1 / Problem 2 of the paper).

use wsn_model::{lifetime, reliability, AggregationTree, EnergyModel, ModelError, Network, NodeId};

/// An instance of the Maximizing-Reliability-of-Lifetime-Constrained
/// aggregation tree problem.
///
/// By Lemma 3 the reliability-maximization form (Problem 1) and the
/// cost-minimization form (Problem 2) coincide; this type exposes both
/// views.
#[derive(Clone, Debug)]
pub struct MrlcInstance {
    network: Network,
    model: EnergyModel,
    /// The lifetime bound `LC` in aggregation rounds.
    lc: f64,
}

impl MrlcInstance {
    /// Creates an instance; `lc` must be positive and finite.
    pub fn new(network: Network, model: EnergyModel, lc: f64) -> Result<Self, ModelError> {
        if !(lc.is_finite() && lc > 0.0) {
            return Err(ModelError::InvalidEnergy(lc));
        }
        Ok(MrlcInstance { network, model, lc })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The energy model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// The lifetime bound `LC`.
    pub fn lc(&self) -> f64 {
        self.lc
    }

    /// Natural-log cost of a candidate tree (Eq. 10).
    pub fn cost(&self, tree: &AggregationTree) -> f64 {
        reliability::tree_cost(&self.network, tree)
    }

    /// Reliability `Q(T)` of a candidate tree.
    pub fn reliability(&self, tree: &AggregationTree) -> f64 {
        reliability::tree_reliability(&self.network, tree)
    }

    /// Lifetime `L(T)` of a candidate tree (Eq. 1, min over nodes).
    pub fn lifetime(&self, tree: &AggregationTree) -> f64 {
        lifetime::network_lifetime(&self.network, tree, &self.model)
    }

    /// True if the tree meets the lifetime bound (with a relative slack for
    /// floating-point comparison).
    pub fn meets_lifetime(&self, tree: &AggregationTree) -> bool {
        self.lifetime(tree) >= self.lc * (1.0 - 1e-9)
    }

    /// Worst-case lifetime of node `v` if **every** edge of `support`
    /// incident to `v` ended up adjacent to it in the final tree — the
    /// quantity `E*(L(v))` of Algorithm 1 line 8. Non-root nodes keep one
    /// incident edge as the parent link, so their worst-case children count
    /// is `deg(v) − 1`; the sink's is `deg(v)`.
    pub fn worst_case_lifetime(&self, v: NodeId, support_degree: usize) -> f64 {
        let children =
            if v == NodeId::SINK { support_degree } else { support_degree.saturating_sub(1) };
        lifetime::node_lifetime(self.network.initial_energy(v), &self.model, children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    fn tiny() -> MrlcInstance {
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        b.add_edge(0, 2, 0.7).unwrap();
        MrlcInstance::new(b.build().unwrap(), EnergyModel::PAPER, 1.0e6).unwrap()
    }

    #[test]
    fn accessors() {
        let inst = tiny();
        assert_eq!(inst.network().n(), 3);
        assert_eq!(inst.lc(), 1.0e6);
    }

    #[test]
    fn rejects_bad_lc() {
        let mut b = NetworkBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        let net = b.build().unwrap();
        assert!(MrlcInstance::new(net.clone(), EnergyModel::PAPER, 0.0).is_err());
        assert!(MrlcInstance::new(net, EnergyModel::PAPER, f64::NAN).is_err());
    }

    #[test]
    fn tree_metrics_are_consistent() {
        let inst = tiny();
        let edges = [(NodeId::new(0), NodeId::new(1)), (NodeId::new(1), NodeId::new(2))];
        let t = AggregationTree::from_edges(NodeId::SINK, 3, &edges).unwrap();
        let c = inst.cost(&t);
        let q = inst.reliability(&t);
        assert!((q - 0.9 * 0.8).abs() < 1e-12);
        assert!((c + q.ln()).abs() < 1e-12);
        assert!(inst.lifetime(&t) > 0.0);
    }

    #[test]
    fn worst_case_lifetime_root_vs_nonroot() {
        let inst = tiny();
        // With support degree 2: non-root keeps a parent edge → 1 child;
        // the sink gets 2 children.
        let wc_root = inst.worst_case_lifetime(NodeId::SINK, 2);
        let wc_other = inst.worst_case_lifetime(NodeId::new(1), 2);
        assert!(wc_root < wc_other);
        // Degree 0 saturates instead of underflowing.
        let wc_leafish = inst.worst_case_lifetime(NodeId::new(1), 0);
        assert!(wc_leafish.is_finite() && wc_leafish > 0.0);
    }
}

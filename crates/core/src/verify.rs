//! Independent verification of candidate aggregation trees.

use crate::problem::MrlcInstance;
use wsn_model::{AggregationTree, NodeId, PaperCost};

/// The result of checking a tree against an instance.
#[derive(Clone, Debug)]
pub struct Verification {
    /// Every tree edge exists in the network and the tree spans all nodes.
    pub is_valid_spanning_tree: bool,
    /// `L(T)` in rounds.
    pub lifetime: f64,
    /// `L(T) ≥ LC` within floating-point slack.
    pub meets_lc: bool,
    /// Natural-log cost `C(T)`.
    pub cost: f64,
    /// Cost in the paper's reporting unit (`−1000·log₂ q`).
    pub paper_cost: f64,
    /// Reliability `Q(T)`.
    pub reliability: f64,
}

/// Checks structure, lifetime, and cost/reliability of a candidate tree.
pub fn verify_tree(inst: &MrlcInstance, tree: &AggregationTree) -> Verification {
    let net = inst.network();
    let structural = tree.n() == net.n()
        && tree.root() == NodeId::SINK
        && tree.edges().all(|(c, p)| net.find_edge(c, p).is_some());
    if !structural {
        return Verification {
            is_valid_spanning_tree: false,
            lifetime: 0.0,
            meets_lc: false,
            cost: f64::INFINITY,
            paper_cost: f64::INFINITY,
            reliability: 0.0,
        };
    }
    let lifetime = inst.lifetime(tree);
    let cost = inst.cost(tree);
    Verification {
        is_valid_spanning_tree: true,
        lifetime,
        meets_lc: lifetime >= inst.lc() * (1.0 - 1e-9),
        cost,
        paper_cost: PaperCost::from_nat(cost).0,
        reliability: inst.reliability(tree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::{EnergyModel, NetworkBuilder};

    fn setup() -> MrlcInstance {
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(0, 3, 0.9).unwrap();
        MrlcInstance::new(b.build().unwrap(), EnergyModel::PAPER, 1.0e6).unwrap()
    }

    #[test]
    fn valid_tree_verifies() {
        let inst = setup();
        let edges = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(1), NodeId::new(2)),
            (NodeId::new(2), NodeId::new(3)),
        ];
        let t = AggregationTree::from_edges(NodeId::SINK, 4, &edges).unwrap();
        let v = verify_tree(&inst, &t);
        assert!(v.is_valid_spanning_tree);
        assert!(v.meets_lc);
        assert!((v.reliability - 0.9f64.powi(3)).abs() < 1e-12);
        assert!((v.paper_cost - (-1000.0 * 3.0 * 0.9f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn foreign_edge_tree_fails_structurally() {
        let inst = setup();
        // Uses the nonexistent chord (0, 2).
        let edges = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(0), NodeId::new(2)),
            (NodeId::new(2), NodeId::new(3)),
        ];
        let t = AggregationTree::from_edges(NodeId::SINK, 4, &edges).unwrap();
        let v = verify_tree(&inst, &t);
        assert!(!v.is_valid_spanning_tree);
        assert!(!v.meets_lc);
    }

    #[test]
    fn lifetime_bound_enforced() {
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(0, 3, 0.9).unwrap();
        // Impossible LC: even leaves die earlier.
        let inst = MrlcInstance::new(
            b.build().unwrap(),
            EnergyModel::PAPER,
            3000.0 / EnergyModel::PAPER.tx * 2.0,
        )
        .unwrap();
        let edges = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(1), NodeId::new(2)),
            (NodeId::new(2), NodeId::new(3)),
        ];
        let t = AggregationTree::from_edges(NodeId::SINK, 4, &edges).unwrap();
        let v = verify_tree(&inst, &t);
        assert!(v.is_valid_spanning_tree);
        assert!(!v.meets_lc);
    }
}

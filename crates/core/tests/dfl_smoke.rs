//! End-to-end smoke test on the paper's DFL scenario: IRA vs AAML vs MST,
//! checking the qualitative relationships of Fig. 7.

use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use wsn_baselines::{aaml_tree, mst, AamlConfig};
use wsn_model::{lifetime, reliability, EnergyModel, PaperCost};
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

#[test]
fn fig7_qualitative_relationships() {
    let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).unwrap();
    let model = EnergyModel::PAPER;

    // AAML over the q ≥ 0.95 filtered graph (as in §VII-A).
    let filtered = net.restrict_edges(|l| l.prr().value() >= 0.95).unwrap();
    let aaml = aaml_tree(&filtered, &model, None, &AamlConfig::default()).unwrap();
    let aaml_cost = PaperCost::of_tree(&net, &aaml.tree).0;
    let aaml_rel = reliability::tree_reliability(&net, &aaml.tree);

    // MST: the cost lower bound.
    let mst_tree = mst(&net).unwrap();
    let mst_cost = PaperCost::of_tree(&net, &mst_tree).0;
    let mst_life = lifetime::network_lifetime(&net, &mst_tree, &model);

    // IRA at LC1 = L_AAML.
    let inst = MrlcInstance::new(net.clone(), model, aaml.lifetime).unwrap();
    let sol = solve_ira(&inst, &IraConfig::default()).unwrap();
    let ira_cost = PaperCost::from_nat(sol.cost).0;

    eprintln!("AAML: cost {aaml_cost:.1} rel {aaml_rel:.3} life {:.3e}", aaml.lifetime);
    eprintln!("MST : cost {mst_cost:.1} life {mst_life:.3e}");
    eprintln!(
        "IRA : cost {ira_cost:.1} rel {:.3} life {:.3e} (relaxed={}, guards={})",
        sol.reliability, sol.lifetime, sol.stats.relaxed_to_lc, sol.stats.guard_removals
    );

    // The paper's ordering: MST ≤ IRA(LC1) ≪ AAML in cost.
    assert!(mst_cost <= ira_cost + 1e-6);
    assert!(
        ira_cost < aaml_cost,
        "IRA ({ira_cost:.1}) must beat AAML ({aaml_cost:.1}) on cost at equal lifetime"
    );
    // Lifetime parity with AAML (the whole point of LC1 = L_AAML), allowing
    // the documented 2-children fallback slack.
    assert!(
        sol.lifetime >= aaml.lifetime * 0.75,
        "IRA lifetime {:.3e} far below L_AAML {:.3e}",
        sol.lifetime,
        aaml.lifetime
    );
    // Reliability improves on AAML.
    assert!(sol.reliability > aaml_rel);
}

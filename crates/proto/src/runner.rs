//! The link-dynamics experiment driver behind Figs. 11–13.
//!
//! Starting from an initial aggregation tree (IRA's output in the paper),
//! each round degrades one random tree link — its `−log₂ q` cost grows by
//! `10⁻³`, i.e. the PRR is multiplied by `2^(−10⁻³)` — and lets the
//! distributed protocol repair locally, while a caller-supplied centralized
//! solver (IRA in the paper; injected as a closure so this crate stays
//! independent of the solver) recomputes from scratch on the same degraded
//! network. Costs, reliabilities and message counts are recorded per round.

use crate::update::ProtocolState;
use rand::{RngExt, SeedableRng};
use wsn_model::{reliability, AggregationTree, EnergyModel, Network, PaperCost};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsConfig {
    /// Degradation rounds (paper: 100).
    pub rounds: usize,
    /// Per-event cost increase in raw `−log₂ q` units (paper: `10⁻³`,
    /// i.e. one unit of the reported ×1000 cost scale).
    pub cost_step: f64,
    /// RNG seed for the edge selection.
    pub seed: u64,
    /// Lifetime bound the distributed protocol enforces when accepting
    /// children.
    pub lc: f64,
}

/// One row of the Figs. 11–13 data.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsRecord {
    /// Round index (1-based; round 0 is the initial state).
    pub round: usize,
    /// Distributed tree cost, paper units.
    pub distributed_cost: f64,
    /// Centralized (re-solved) tree cost, paper units.
    pub centralized_cost: f64,
    /// Distributed tree reliability.
    pub distributed_reliability: f64,
    /// Centralized tree reliability.
    pub centralized_reliability: f64,
    /// Messages spent by the distributed update this round.
    pub messages: usize,
    /// Running message total.
    pub total_messages: usize,
}

/// Runs the experiment. `centralized` recomputes a tree from scratch on the
/// current (degraded) network each round — pass IRA for the paper's
/// comparison, or any other builder for ablations. If it returns `None`
/// (solver infeasible), the previous centralized tree is carried forward.
pub fn run_link_dynamics(
    initial_net: &Network,
    initial_tree: &AggregationTree,
    model: EnergyModel,
    config: &DynamicsConfig,
    mut centralized: impl FnMut(&Network) -> Option<AggregationTree>,
) -> Vec<DynamicsRecord> {
    let mut net = initial_net.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut state =
        ProtocolState::new(initial_tree, config.lc, model).expect("initial tree must be codable");
    let mut central_tree = initial_tree.clone();
    let degrade_factor = 2f64.powf(-config.cost_step);

    let mut records = Vec::with_capacity(config.rounds + 1);
    let mut total_messages = 0usize;
    let record = |round: usize,
                  net: &Network,
                  dist: &AggregationTree,
                  cent: &AggregationTree,
                  messages: usize,
                  total: usize| DynamicsRecord {
        round,
        distributed_cost: PaperCost::of_tree(net, dist).0,
        centralized_cost: PaperCost::of_tree(net, cent).0,
        distributed_reliability: reliability::tree_reliability(net, dist),
        centralized_reliability: reliability::tree_reliability(net, cent),
        messages,
        total_messages: total,
    };
    records.push(record(0, &net, &state.tree(), &central_tree, 0, 0));

    for round in 1..=config.rounds {
        // Pick a random link of the *distributed* tree and degrade it.
        let tree = state.tree();
        let tree_edges: Vec<(wsn_model::NodeId, wsn_model::NodeId)> = tree.edges().collect();
        let (child, parent) = tree_edges[rng.random_range(0..tree_edges.len())];
        let e = net.find_edge(child, parent).expect("tree edge exists");
        let new_prr = net.link(e).prr().degraded(degrade_factor);
        net.set_prr(e, new_prr);

        // Distributed repair: the child of the degraded link reacts.
        let outcome = state.handle_link_worse(&net, child);
        total_messages += outcome.messages;

        // Centralized re-solve on the same degraded network.
        if let Some(t) = centralized(&net) {
            central_tree = t;
        }

        records.push(record(
            round,
            &net,
            &state.tree(),
            &central_tree,
            outcome.messages,
            total_messages,
        ));
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_baselines::mst;
    use wsn_model::lifetime;
    use wsn_radio::LinkModel;
    use wsn_testbed::{dfl_network, DflConfig};

    fn dfl_setup() -> (Network, AggregationTree, f64) {
        let net = dfl_network(&DflConfig::default(), &LinkModel::default(), 99).unwrap();
        let tree = mst(&net).unwrap();
        let lc = lifetime::network_lifetime(&net, &tree, &EnergyModel::PAPER) * 0.8;
        (net, tree, lc)
    }

    #[test]
    fn costs_are_monotone_in_expectation_and_protocol_tracks() {
        let (net, tree, lc) = dfl_setup();
        let cfg = DynamicsConfig { rounds: 60, cost_step: 1e-3, seed: 4, lc };
        let records = run_link_dynamics(&net, &tree, EnergyModel::PAPER, &cfg, |n| mst(n).ok());
        assert_eq!(records.len(), 61);
        let first = &records[0];
        let last = &records[60];
        // Initial state: both sides start from the same tree.
        assert!((first.distributed_cost - first.centralized_cost).abs() < 1e-9);
        // Degradation raises costs overall.
        assert!(last.distributed_cost > first.distributed_cost);
        // The centralized re-solver is at least as good as the local repair.
        for r in &records {
            assert!(
                r.centralized_cost <= r.distributed_cost + 1e-6,
                "round {}: centralized {} > distributed {}",
                r.round,
                r.centralized_cost,
                r.distributed_cost
            );
        }
        // Reliability mirrors cost (Lemma 3).
        assert!(last.distributed_reliability < first.distributed_reliability);
    }

    #[test]
    fn message_totals_accumulate() {
        let (net, tree, lc) = dfl_setup();
        let cfg = DynamicsConfig { rounds: 40, cost_step: 5e-2, seed: 5, lc };
        let records = run_link_dynamics(&net, &tree, EnergyModel::PAPER, &cfg, |_| None);
        let mut running = 0usize;
        for r in &records {
            running += r.messages;
            assert_eq!(r.total_messages, running);
        }
        // With an aggressive cost step some repairs must fire, and each
        // update costs fewer than 10 messages at n = 16 (Fig. 13).
        assert!(records.iter().any(|r| r.messages > 0), "no update ever fired");
        for r in &records {
            assert!(r.messages < 12, "update cost {} messages", r.messages);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, tree, lc) = dfl_setup();
        let cfg = DynamicsConfig { rounds: 20, cost_step: 1e-3, seed: 6, lc };
        let a = run_link_dynamics(&net, &tree, EnergyModel::PAPER, &cfg, |_| None);
        let b = run_link_dynamics(&net, &tree, EnergyModel::PAPER, &cfg, |_| None);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distributed_cost, y.distributed_cost);
            assert_eq!(x.messages, y.messages);
        }
    }
}

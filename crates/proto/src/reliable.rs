//! Per-hop reliable delivery over the lossy control channel: stop-and-wait
//! acks, bounded retransmission, exponential backoff.
//!
//! Each hop of a flood becomes a miniature ARQ exchange: the sender
//! transmits the data frame, the receiver answers every copy with an
//! [`Message::Ack`] carrying the frame's nonce, and the sender retries —
//! doubling its backoff window each time — until it sees an ack or exhausts
//! its attempt budget. The retry loop itself is the data plane's
//! geometric-retry machinery ([`wsn_sim::retransmission::retry_until`]),
//! so control-plane and data-plane overhead are counted with the same
//! ruler. Note the classic ARQ asymmetry: a hop whose *ack* is lost still
//! delivered the data frame, so the receiver may hold state the sender
//! does not know about — the anti-entropy layer reconciles that.

use crate::faults::LossyChannel;
use crate::messages::Message;
use bytes::Bytes;
use wsn_model::NodeId;
use wsn_sim::retransmission::retry_until;

/// Retry/backoff parameters for one hop.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum transmissions of one frame per hop (first try included).
    pub max_attempts: usize,
    /// Backoff window after the first failed attempt, in slots.
    pub base_backoff_slots: u64,
    /// The window doubles per retry up to `base << max_backoff_exp`.
    pub max_backoff_exp: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 8 attempts survive per-attempt loss up to ~45% with ack traffic
        // included; the window caps at 64 base slots.
        RetryPolicy { max_attempts: 8, base_backoff_slots: 1, max_backoff_exp: 6 }
    }
}

impl RetryPolicy {
    /// Backoff slots spent *before* transmission attempt `attempt`
    /// (1-based; the first attempt goes out immediately).
    pub fn backoff_slots(&self, attempt: usize) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = u32::try_from(attempt - 2).unwrap_or(u32::MAX).min(self.max_backoff_exp);
        self.base_backoff_slots << exp
    }

    /// Total virtual-time slots a hop costs if it needs `attempts` tries
    /// (each transmission occupies one slot plus its preceding backoff).
    pub fn slots_for(&self, attempts: usize) -> u64 {
        (1..=attempts).map(|a| self.backoff_slots(a) + 1).sum()
    }
}

/// Outcome of one reliable hop.
#[derive(Clone, Debug, Default)]
pub struct HopReport {
    /// Data-frame transmissions spent (≥ 1).
    pub attempts: usize,
    /// Ack frames the receiver transmitted.
    pub acks: usize,
    /// Did the *sender* observe an ack? (The receiver may have the frame
    /// even when this is false — the ack leg can fail independently.)
    pub acked: bool,
    /// Frame copies the receiver actually got, in arrival order.
    pub delivered: Vec<Bytes>,
    /// Virtual-time slots spent on this hop (transmissions + backoff).
    pub slots: u64,
}

impl HopReport {
    /// True if at least one copy reached the receiver.
    pub fn received(&self) -> bool {
        !self.delivered.is_empty()
    }
}

/// Sends `frame` from `from` to `to` with ack/retry/backoff. Every copy the
/// receiver gets is answered with an ack; the sender stops at the first ack
/// it hears or after `policy.max_attempts` tries.
pub fn send_hop(
    channel: &mut LossyChannel,
    policy: &RetryPolicy,
    from: NodeId,
    to: NodeId,
    frame: &Bytes,
) -> HopReport {
    let nonce = Message::frame_nonce(frame).unwrap_or(0);
    let ack_frame = Message::Ack { nonce }.encode();
    let mut report = HopReport::default();
    let (attempts, acked) = retry_until(policy.max_attempts, || {
        let copies = channel.transmit(from, to, frame);
        let mut ack_heard = false;
        for copy in copies {
            // Reordering can surface a stale held-back frame here; the
            // receiver acks only copies of *this* frame, but still gets
            // handed everything that arrived (the caller's state machine
            // rejects strays).
            let is_this_frame = Message::frame_nonce(&copy) == Some(nonce);
            report.delivered.push(copy);
            if is_this_frame {
                report.acks += 1;
                for back in channel.transmit(to, from, &ack_frame) {
                    if let Ok(Message::Ack { nonce: got }) = Message::decode(&back) {
                        if got == nonce {
                            ack_heard = true;
                        }
                    }
                }
            }
        }
        ack_heard
    });
    report.attempts = attempts;
    report.acked = acked;
    report.slots = policy.slots_for(attempts);
    publish_hop(&report, from, to);
    report
}

/// Attempts-per-hop histogram bucket bounds (inclusive upper edges); the
/// implicit overflow bucket catches pathological hops past 8 attempts.
const ATTEMPT_BUCKETS: [u64; 4] = [1, 2, 4, 8];

/// Registry + trace view of one finished hop. Counters sum over every hop
/// of every flood; the `proto.hop_failed` warn event marks a hop that
/// exhausted its retry budget without hearing an ack.
fn publish_hop(report: &HopReport, from: NodeId, to: NodeId) {
    let Some(obs) = wsn_obs::current() else {
        return;
    };
    let reg = obs.registry();
    reg.counter("proto.hop_attempts").add(report.attempts as u64);
    reg.counter("proto.hop_acks").add(report.acks as u64);
    reg.counter("proto.hop_slots").add(report.slots);
    // Each transmission occupies one slot; the rest of the budget is backoff.
    reg.counter("proto.backoff_slots").add(report.slots.saturating_sub(report.attempts as u64));
    reg.counter("proto.retransmissions").add(report.attempts.saturating_sub(1) as u64);
    reg.histogram("proto.attempts_per_hop", &ATTEMPT_BUCKETS).observe(report.attempts as u64);
    if !report.acked {
        wsn_obs::warn(
            "proto.hop_failed",
            vec![
                wsn_obs::field("from", from.index()),
                wsn_obs::field("to", to.index()),
                wsn_obs::field("attempts", report.attempts),
                wsn_obs::field("received", report.received()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pc_frame(seq: u16) -> Bytes {
        Message::ParentChange { epoch: 1, seq, child: n(2), new_parent: n(3) }.encode()
    }

    #[test]
    fn lossless_hop_takes_one_attempt() {
        let mut ch = LossyChannel::new(FaultPlan::lossless());
        let r = send_hop(&mut ch, &RetryPolicy::default(), n(0), n(1), &pc_frame(0));
        assert_eq!(r.attempts, 1);
        assert!(r.acked);
        assert_eq!(r.delivered.len(), 1);
        assert_eq!(r.acks, 1);
        assert_eq!(r.slots, 1);
    }

    #[test]
    fn retries_until_ack_under_loss() {
        let mut ch = LossyChannel::new(FaultPlan::uniform(0.5).with_seed(3));
        let mut total_attempts = 0usize;
        let mut failures = 0usize;
        for s in 0..200u16 {
            let r = send_hop(&mut ch, &RetryPolicy::default(), n(0), n(1), &pc_frame(s));
            total_attempts += r.attempts;
            if !r.acked {
                failures += 1;
            }
        }
        // Mean attempts ≈ 1 / (0.5 · 0.5) = 4 (frame AND ack must survive).
        let mean = total_attempts as f64 / 200.0;
        assert!(mean > 2.0 && mean < 6.0, "mean attempts {mean}");
        // p(hop fails) = (1 − 0.25)^8 ≈ 10%; allow wide slack.
        assert!(failures < 60, "{failures} hops failed");
    }

    #[test]
    fn dead_link_exhausts_budget() {
        let mut ch = LossyChannel::new(FaultPlan::uniform(1.0));
        let policy = RetryPolicy::default();
        let r = send_hop(&mut ch, &policy, n(0), n(1), &pc_frame(0));
        assert_eq!(r.attempts, policy.max_attempts);
        assert!(!r.acked);
        assert!(!r.received());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 16, base_backoff_slots: 2, max_backoff_exp: 3 };
        assert_eq!(p.backoff_slots(1), 0);
        assert_eq!(p.backoff_slots(2), 2);
        assert_eq!(p.backoff_slots(3), 4);
        assert_eq!(p.backoff_slots(4), 8);
        assert_eq!(p.backoff_slots(5), 16);
        assert_eq!(p.backoff_slots(6), 16, "window caps at base << max_exp");
        // slots_for sums backoff plus one slot per transmission.
        assert_eq!(p.slots_for(1), 1);
        assert_eq!(p.slots_for(3), 1 + (2 + 1) + (4 + 1));
    }

    #[test]
    fn lost_ack_still_delivers_to_receiver() {
        // Craft a channel where the forward leg is clean but the reverse
        // leg is dead: per-link loss keyed on the pair is symmetric, so use
        // 50% overall loss and find a seed where the asymmetry shows.
        let mut ch = LossyChannel::new(FaultPlan::uniform(0.45).with_seed(10));
        let mut seen_asymmetry = false;
        for s in 0..300u16 {
            let r = send_hop(
                &mut ch,
                &RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
                n(0),
                n(1),
                &pc_frame(s),
            );
            if r.received() && !r.acked {
                seen_asymmetry = true;
                break;
            }
        }
        assert!(seen_asymmetry, "ack-loss asymmetry never observed");
    }

    #[test]
    fn duplicated_frames_are_acked_each_time() {
        let mut ch = LossyChannel::new(FaultPlan::lossless().with_duplication(1.0));
        let r = send_hop(&mut ch, &RetryPolicy::default(), n(0), n(1), &pc_frame(0));
        assert!(r.acked);
        assert_eq!(r.delivered.len(), 2);
        assert_eq!(r.acks, 2);
    }
}

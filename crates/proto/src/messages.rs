//! Wire format for the protocol's over-the-air messages.
//!
//! Two message kinds exist in §VI-B:
//!
//! * **TreeAnnounce** — the sink's initial broadcast of the full Prüfer
//!   code after centralized construction ("Once an aggregation tree is
//!   constructed, the sink calculates the Prüfer code and broadcasts to all
//!   sensors").
//! * **ParentChange** — the incremental update: `(child, new_parent)` plus
//!   a sequence number so replicas apply updates exactly once and in
//!   order.
//!
//! Two more support the fault-tolerant control plane (the paper assumes a
//! lossless channel; `faults`/`reliable` drop that assumption):
//!
//! * **Ack** — per-hop acknowledgement carrying the nonce (checksum) of the
//!   acked frame, so the sender's stop-and-wait retry loop can terminate.
//! * **Heartbeat** — a digest of the holder's coded-tree state, exchanged
//!   hop-wise so replica divergence is *detected* (and repaired by an epoch
//!   re-announce) instead of silently accumulating.
//!
//! Frames are tiny by design — the paper's radio payload is 34 bytes, and
//! the ParentChange frame is 12 bytes, so a single packet carries it. Each
//! frame ends with a 16-bit one's-complement checksum (IP-style) so
//! corrupted frames are rejected rather than decoded into bogus splices.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use wsn_model::NodeId;

/// Message kinds on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Full-code broadcast from the sink.
    TreeAnnounce {
        /// Monotone epoch (bumped on every centralized rebuild).
        epoch: u16,
        /// Number of nodes (the code has `n − 2` labels).
        n: u16,
        /// The Prüfer code `P`.
        code: Vec<NodeId>,
    },
    /// Incremental parent change.
    ParentChange {
        /// Epoch this update belongs to.
        epoch: u16,
        /// Per-epoch sequence number (replicas apply in order).
        seq: u16,
        /// The node changing its parent.
        child: NodeId,
        /// Its new parent.
        new_parent: NodeId,
    },
    /// Per-hop acknowledgement of one received frame.
    Ack {
        /// The acked frame's nonce (its checksum trailer).
        nonce: u16,
    },
    /// State digest for anti-entropy divergence detection.
    Heartbeat {
        /// Epoch of the sender's installed tree.
        epoch: u16,
        /// Sender's next expected sequence number.
        seq: u16,
        /// FNV-1a digest of the sender's coded state.
        digest: u64,
    },
}

/// Errors raised while decoding a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header claims.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Checksum mismatch — the frame was corrupted in flight.
    Checksum {
        /// Checksum carried by the frame.
        expected: u16,
        /// Checksum computed over the received bytes.
        actual: u16,
    },
    /// A label exceeded the node-count bound.
    LabelOutOfRange,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#x}"),
            WireError::Checksum { expected, actual } => {
                write!(f, "checksum mismatch: frame says {expected:#06x}, computed {actual:#06x}")
            }
            WireError::LabelOutOfRange => write!(f, "node label out of range"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_ANNOUNCE: u8 = 0xA1;
const TAG_PARENT_CHANGE: u8 = 0xA2;
const TAG_ACK: u8 = 0xA3;
const TAG_HEARTBEAT: u8 = 0xA4;

/// IP-style 16-bit one's-complement checksum.
fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

impl Message {
    /// Encodes the message into a checksummed frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        match self {
            Message::TreeAnnounce { epoch, n, code } => {
                b.put_u8(TAG_ANNOUNCE);
                b.put_u16(*epoch);
                b.put_u16(*n);
                debug_assert_eq!(code.len(), (*n as usize).saturating_sub(2));
                for label in code {
                    b.put_u16(label.label() as u16);
                }
            }
            Message::ParentChange { epoch, seq, child, new_parent } => {
                b.put_u8(TAG_PARENT_CHANGE);
                b.put_u16(*epoch);
                b.put_u16(*seq);
                b.put_u16(child.label() as u16);
                b.put_u16(new_parent.label() as u16);
            }
            Message::Ack { nonce } => {
                b.put_u8(TAG_ACK);
                b.put_u16(*nonce);
            }
            Message::Heartbeat { epoch, seq, digest } => {
                b.put_u8(TAG_HEARTBEAT);
                b.put_u16(*epoch);
                b.put_u16(*seq);
                b.put_u64(*digest);
            }
        }
        let cs = checksum(&b);
        b.put_u16(cs);
        b.freeze()
    }

    /// Decodes and validates one frame.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        if frame.len() < 3 {
            return Err(WireError::Truncated);
        }
        let (body, trailer) = frame.split_at(frame.len() - 2);
        let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
        let actual = checksum(body);
        if expected != actual {
            return Err(WireError::Checksum { expected, actual });
        }
        let mut buf = body;
        let tag = buf.get_u8();
        match tag {
            TAG_ANNOUNCE => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let epoch = buf.get_u16();
                let n = buf.get_u16();
                let want = (n as usize).saturating_sub(2);
                if buf.remaining() != 2 * want {
                    return Err(WireError::Truncated);
                }
                let mut code = Vec::with_capacity(want);
                for _ in 0..want {
                    let label = buf.get_u16();
                    if u32::from(label) >= u32::from(n) {
                        return Err(WireError::LabelOutOfRange);
                    }
                    code.push(NodeId::from(u32::from(label)));
                }
                Ok(Message::TreeAnnounce { epoch, n, code })
            }
            TAG_PARENT_CHANGE => {
                if buf.remaining() != 8 {
                    return Err(WireError::Truncated);
                }
                let epoch = buf.get_u16();
                let seq = buf.get_u16();
                let child = NodeId::from(u32::from(buf.get_u16()));
                let new_parent = NodeId::from(u32::from(buf.get_u16()));
                Ok(Message::ParentChange { epoch, seq, child, new_parent })
            }
            TAG_ACK => {
                if buf.remaining() != 2 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::Ack { nonce: buf.get_u16() })
            }
            TAG_HEARTBEAT => {
                if buf.remaining() != 12 {
                    return Err(WireError::Truncated);
                }
                let epoch = buf.get_u16();
                let seq = buf.get_u16();
                let digest = buf.get_u64();
                Ok(Message::Heartbeat { epoch, seq, digest })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// Frame size in bytes (useful for packet-budget checks).
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::TreeAnnounce { code, .. } => 1 + 2 + 2 + 2 * code.len() + 2,
            Message::ParentChange { .. } => 1 + 2 + 2 + 2 + 2 + 2,
            Message::Ack { .. } => 1 + 2 + 2,
            Message::Heartbeat { .. } => 1 + 2 + 2 + 8 + 2,
        }
    }

    /// The frame's nonce: its checksum trailer, echoed back in [`Message::Ack`]
    /// so a sender can match acks to the frame it is retrying.
    pub fn frame_nonce(frame: &[u8]) -> Option<u16> {
        if frame.len() < 2 {
            return None;
        }
        let t = &frame[frame.len() - 2..];
        Some(u16::from_be_bytes([t[0], t[1]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn parent_change_roundtrip() {
        let m = Message::ParentChange { epoch: 3, seq: 17, child: n(4), new_parent: n(7) };
        let frame = m.encode();
        assert_eq!(frame.len(), m.encoded_len());
        assert_eq!(Message::decode(&frame).unwrap(), m);
    }

    #[test]
    fn announce_roundtrip() {
        let code: Vec<NodeId> = [0usize, 2, 8, 4, 4, 0, 8].iter().map(|&i| n(i)).collect();
        let m = Message::TreeAnnounce { epoch: 1, n: 9, code };
        let frame = m.encode();
        assert_eq!(frame.len(), m.encoded_len());
        assert_eq!(Message::decode(&frame).unwrap(), m);
    }

    #[test]
    fn ack_roundtrip() {
        let m = Message::Ack { nonce: 0xBEEF };
        let frame = m.encode();
        assert_eq!(frame.len(), m.encoded_len());
        assert_eq!(Message::decode(&frame).unwrap(), m);
    }

    #[test]
    fn heartbeat_roundtrip() {
        let m = Message::Heartbeat { epoch: 7, seq: 42, digest: 0xDEAD_BEEF_CAFE_F00D };
        let frame = m.encode();
        assert_eq!(frame.len(), m.encoded_len());
        assert_eq!(Message::decode(&frame).unwrap(), m);
    }

    #[test]
    fn ack_nonce_matches_frame_trailer() {
        let data = Message::ParentChange { epoch: 3, seq: 9, child: n(4), new_parent: n(7) };
        let frame = data.encode();
        let nonce = Message::frame_nonce(&frame).unwrap();
        // The nonce is the checksum trailer, so distinct frames get
        // distinct nonces with overwhelming probability.
        let other = Message::ParentChange { epoch: 3, seq: 10, child: n(4), new_parent: n(7) };
        assert_ne!(nonce, Message::frame_nonce(&other.encode()).unwrap());
        assert_eq!(Message::frame_nonce(&[]), None);
    }

    #[test]
    fn control_frames_fit_one_radio_packet() {
        // The paper's packets are 34 bytes; ack and heartbeat must fit.
        assert!(Message::Ack { nonce: 0 }.encoded_len() <= 12);
        assert!(Message::Heartbeat { epoch: 0, seq: 0, digest: 0 }.encoded_len() <= 34);
    }

    #[test]
    fn truncated_ack_and_heartbeat_rejected() {
        for m in [Message::Ack { nonce: 77 }, Message::Heartbeat { epoch: 1, seq: 2, digest: 3 }] {
            let frame = m.encode();
            for cut in 0..frame.len() {
                assert!(Message::decode(&frame[..cut]).is_err(), "cut at {cut} decoded");
            }
        }
    }

    #[test]
    fn parent_change_fits_one_radio_packet() {
        // The paper's packets are 34 bytes; the incremental update must fit
        // with room for MAC headers.
        let m = Message::ParentChange { epoch: 1, seq: 1, child: n(15), new_parent: n(3) };
        assert!(m.encoded_len() <= 12, "frame is {} bytes", m.encoded_len());
    }

    #[test]
    fn corruption_detected() {
        let m = Message::ParentChange { epoch: 9, seq: 1, child: n(2), new_parent: n(5) };
        let mut bytes = m.encode().to_vec();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            let res = Message::decode(&corrupted);
            assert!(res != Ok(m.clone()), "flipping byte {i} went unnoticed");
        }
        // Untouched frame still decodes.
        bytes.rotate_left(0);
        assert_eq!(Message::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn truncation_detected() {
        let m = Message::TreeAnnounce { epoch: 1, n: 9, code: vec![n(0); 7] };
        let frame = m.encode();
        for cut in 0..frame.len() {
            assert!(Message::decode(&frame[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        // Build a validly checksummed frame with a bogus tag.
        let mut b = vec![0x77u8, 0, 1];
        let cs = super::checksum(&b);
        b.extend_from_slice(&cs.to_be_bytes());
        assert_eq!(Message::decode(&b), Err(WireError::UnknownTag(0x77)));
    }

    #[test]
    fn out_of_range_label_rejected() {
        // Announce for n=4 with a label 9.
        let mut b = vec![TAG_ANNOUNCE];
        b.extend_from_slice(&1u16.to_be_bytes()); // epoch
        b.extend_from_slice(&4u16.to_be_bytes()); // n
        b.extend_from_slice(&9u16.to_be_bytes()); // label 9 (invalid)
        b.extend_from_slice(&0u16.to_be_bytes()); // label 0
        let cs = super::checksum(&b);
        b.extend_from_slice(&cs.to_be_bytes());
        assert_eq!(Message::decode(&b), Err(WireError::LabelOutOfRange));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_any_parent_change(
                epoch in any::<u16>(), seq in any::<u16>(),
                child in 0u16..1000, parent in 0u16..1000,
            ) {
                let m = Message::ParentChange {
                    epoch, seq,
                    child: NodeId::from(u32::from(child)),
                    new_parent: NodeId::from(u32::from(parent)),
                };
                prop_assert_eq!(Message::decode(&m.encode()).unwrap(), m);
            }

            #[test]
            fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let _ = Message::decode(&bytes); // must not panic
            }
        }
    }
}

//! Message accounting for update dissemination.

use wsn_model::AggregationTree;

/// Messages needed to flood one Parent-Changing record to every sensor:
/// each **non-leaf** node forwards the record once (leaves only receive).
/// This is the quantity Fig. 13 tracks, "less than 10 messages" per update
/// at n = 16.
pub fn broadcast_message_count(tree: &AggregationTree) -> usize {
    (0..tree.n()).filter(|&i| !tree.is_leaf(wsn_model::NodeId::new(i))).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn path_has_all_but_one_forwarder() {
        // 0-1-2-3: non-leaves are 0, 1, 2.
        let edges = [(n(0), n(1)), (n(1), n(2)), (n(2), n(3))];
        let t = AggregationTree::from_edges(n(0), 4, &edges).unwrap();
        assert_eq!(broadcast_message_count(&t), 3);
    }

    #[test]
    fn star_has_single_forwarder() {
        let edges = [(n(0), n(1)), (n(0), n(2)), (n(0), n(3))];
        let t = AggregationTree::from_edges(n(0), 4, &edges).unwrap();
        assert_eq!(broadcast_message_count(&t), 1);
    }

    #[test]
    fn sixteen_node_trees_stay_under_ten_for_bushy_shapes() {
        // A 2-ary tree over 16 nodes: 7 internal nodes < 10 (the Fig. 13
        // claim holds for the bushy trees IRA produces).
        let mut parents: Vec<Option<NodeId>> = vec![None];
        for i in 1..16 {
            parents.push(Some(n((i - 1) / 2)));
        }
        let t = AggregationTree::from_parents(n(0), parents).unwrap();
        assert!(broadcast_message_count(&t) < 10);
    }
}

//! Fault injection for the control plane: a lossy, duplicating, reordering
//! channel plus node-crash switches.
//!
//! The paper's protocol (§VI-B) is specified over a lossless control
//! channel; the data plane, by contrast, models every link with a packet
//! reception ratio `q_e`. This module puts control traffic on the same
//! footing: a [`LossyChannel`] drops each transmission attempt with a
//! per-link probability (derived from the network's PRRs, uniform, or
//! zero), occasionally duplicates a delivery, occasionally holds a frame
//! back so it arrives *after* the next one (reordering), and swallows all
//! traffic to or from crashed nodes. Everything is driven by a seeded RNG
//! so experiments are reproducible.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use wsn_model::{Network, NodeId};
use wsn_obs::Counter;
use wsn_radio::LinkModel;

/// Where per-link loss probabilities come from.
#[derive(Clone, Debug, Default)]
pub enum LossModel {
    /// Every attempt is delivered (the paper's assumption).
    #[default]
    Lossless,
    /// Every link drops with the same probability.
    Uniform(f64),
    /// Per-link loss keyed by unordered endpoint pair; pairs not in the
    /// map fall back to the given default loss.
    PerLink {
        /// `(min_label, max_label) → loss probability`.
        map: HashMap<(u32, u32), f64>,
        /// Loss for pairs absent from the map.
        default: f64,
    },
}

/// A reproducible description of the faults to inject.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed; two channels built from equal plans behave identically.
    pub seed: u64,
    /// Per-attempt frame-loss model.
    pub loss: LossModel,
    /// Probability a delivered frame arrives twice.
    pub duplicate_prob: f64,
    /// Probability a delivered frame is held back and arrives after the
    /// next frame to the same receiver.
    pub reorder_prob: f64,
}

impl FaultPlan {
    /// No faults at all — the lossless channel the paper assumes.
    pub fn lossless() -> Self {
        FaultPlan { seed: 0, loss: LossModel::Lossless, duplicate_prob: 0.0, reorder_prob: 0.0 }
    }

    /// Uniform per-attempt loss on every link.
    pub fn uniform(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        FaultPlan { seed: 0, loss: LossModel::Uniform(loss), ..FaultPlan::lossless() }
    }

    /// Derives per-link loss from the network's own PRRs: a control frame
    /// crossing link `e` is lost with probability `1 − q_e` — the control
    /// plane faces exactly the channel the data plane models.
    pub fn from_network_prr(net: &Network) -> Self {
        let map = net
            .edges()
            .map(|(_, link)| (Self::key(link.u(), link.v()), 1.0 - link.prr().value()))
            .collect();
        // Pairs with no physical link cannot carry frames at all.
        FaultPlan {
            seed: 0,
            loss: LossModel::PerLink { map, default: 1.0 },
            ..FaultPlan::lossless()
        }
    }

    /// Like [`FaultPlan::from_network_prr`], but rescales each link's PRR
    /// to the control-frame length via the radio model: short ack/update
    /// frames survive better than the 34-byte data packets the PRR was
    /// estimated with (`wsn_radio::LinkModel::control_frame_prr`).
    pub fn from_network_ctrl(net: &Network, radio: &LinkModel, ctrl_bytes: usize) -> Self {
        let map = net
            .edges()
            .map(|(_, link)| {
                let q = radio.control_frame_prr(link.prr(), ctrl_bytes).value();
                (Self::key(link.u(), link.v()), 1.0 - q)
            })
            .collect();
        FaultPlan {
            seed: 0,
            loss: LossModel::PerLink { map, default: 1.0 },
            ..FaultPlan::lossless()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.duplicate_prob = p;
        self
    }

    /// Sets the reordering probability.
    pub fn with_reordering(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.reorder_prob = p;
        self
    }

    fn key(a: NodeId, b: NodeId) -> (u32, u32) {
        let (x, y) = (a.label(), b.label());
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// Loss probability for one attempt on `(a, b)`.
    pub fn loss(&self, a: NodeId, b: NodeId) -> f64 {
        match &self.loss {
            LossModel::Lossless => 0.0,
            LossModel::Uniform(l) => *l,
            LossModel::PerLink { map, default } => *map.get(&Self::key(a, b)).unwrap_or(default),
        }
    }
}

/// Channel-level accounting, kept separately from the per-node frame
/// counters so Fig. 13-style message accounting can distinguish offered
/// load from delivered load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmission attempts offered to the channel.
    pub offered: usize,
    /// Frame copies actually handed to a receiver.
    pub delivered: usize,
    /// Attempts dropped by link loss.
    pub dropped: usize,
    /// Extra copies injected by duplication.
    pub duplicated: usize,
    /// Frames that arrived late (after a newer frame).
    pub reordered: usize,
    /// Attempts swallowed because an endpoint had crashed.
    pub to_crashed: usize,
}

/// Registry mirrors of [`ChannelStats`], resolved once at channel
/// construction when an observability collector is installed on this
/// thread. The struct fields stay the source of truth for experiment
/// code; the counters exist so traces and `--metrics` dumps see the same
/// numbers without hand-threading the stats outward.
#[derive(Clone, Debug)]
struct ChannelObs {
    offered: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    to_crashed: Counter,
}

impl ChannelObs {
    fn ambient() -> Option<ChannelObs> {
        let obs = wsn_obs::current()?;
        let reg = obs.registry();
        Some(ChannelObs {
            offered: reg.counter("proto.frames_offered"),
            delivered: reg.counter("proto.frames_delivered"),
            dropped: reg.counter("proto.frames_dropped"),
            duplicated: reg.counter("proto.frames_duplicated"),
            reordered: reg.counter("proto.frames_reordered"),
            to_crashed: reg.counter("proto.frames_to_crashed"),
        })
    }
}

/// The lossy control channel: applies a [`FaultPlan`] to every
/// transmission attempt.
#[derive(Clone, Debug)]
pub struct LossyChannel {
    plan: FaultPlan,
    rng: StdRng,
    crashed: Vec<bool>,
    /// One frame per receiver may be "in flight late": it is delivered
    /// after the next frame addressed to that receiver.
    held: HashMap<u32, Bytes>,
    /// Running fault accounting.
    pub stats: ChannelStats,
    obs: Option<ChannelObs>,
}

impl LossyChannel {
    /// Builds a channel from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        LossyChannel {
            plan,
            rng,
            crashed: Vec::new(),
            held: HashMap::new(),
            stats: ChannelStats::default(),
            obs: ChannelObs::ambient(),
        }
    }

    /// The plan this channel injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Marks `v` as crashed: it neither sends nor receives until revived.
    pub fn crash(&mut self, v: NodeId) {
        if self.crashed.len() <= v.index() {
            self.crashed.resize(v.index() + 1, false);
        }
        self.crashed[v.index()] = true;
    }

    /// Brings `v` back (its protocol state is whatever it last held).
    pub fn revive(&mut self, v: NodeId) {
        if let Some(c) = self.crashed.get_mut(v.index()) {
            *c = false;
        }
    }

    /// Is `v` currently crashed?
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed.get(v.index()).copied().unwrap_or(false)
    }

    /// Offers one transmission attempt of `frame` from `from` to `to`.
    /// Returns the copies `to` actually receives for this attempt, in
    /// arrival order: possibly none (loss/crash), one, two (duplication),
    /// or a held-back earlier frame arriving late behind this one.
    pub fn transmit(&mut self, from: NodeId, to: NodeId, frame: &Bytes) -> Vec<Bytes> {
        self.stats.offered += 1;
        if let Some(o) = &self.obs {
            o.offered.inc();
        }
        if self.is_crashed(from) || self.is_crashed(to) {
            self.stats.to_crashed += 1;
            if let Some(o) = &self.obs {
                o.to_crashed.inc();
            }
            return Vec::new();
        }
        let loss = self.plan.loss(from, to);
        if self.rng.random::<f64>() < loss {
            self.stats.dropped += 1;
            if let Some(o) = &self.obs {
                o.dropped.inc();
            }
            return Vec::new();
        }
        let mut arrivals = Vec::with_capacity(2);
        if self.plan.reorder_prob > 0.0 && self.rng.random::<f64>() < self.plan.reorder_prob {
            // Hold this frame; it arrives behind the next one. If a frame
            // is already held for this receiver, it is released now (two
            // holds in a row degenerate to a swap, not unbounded delay).
            let late = self.held.insert(to.label(), frame.clone());
            if let Some(old) = late {
                self.stats.reordered += 1;
                if let Some(o) = &self.obs {
                    o.reordered.inc();
                }
                arrivals.push(old);
            }
            self.deliver(arrivals.len());
            return arrivals;
        }
        arrivals.push(frame.clone());
        if self.plan.duplicate_prob > 0.0 && self.rng.random::<f64>() < self.plan.duplicate_prob {
            self.stats.duplicated += 1;
            if let Some(o) = &self.obs {
                o.duplicated.inc();
            }
            arrivals.push(frame.clone());
        }
        if let Some(old) = self.held.remove(&to.label()) {
            self.stats.reordered += 1;
            if let Some(o) = &self.obs {
                o.reordered.inc();
            }
            arrivals.push(old);
        }
        self.deliver(arrivals.len());
        arrivals
    }

    fn deliver(&mut self, copies: usize) {
        self.stats.delivered += copies;
        if let Some(o) = &self.obs {
            o.delivered.add(copies as u64);
        }
    }

    /// Releases any frame still held back for `to` (end-of-epoch flush).
    pub fn flush(&mut self, to: NodeId) -> Option<Bytes> {
        let f = self.held.remove(&to.label());
        if f.is_some() {
            self.stats.reordered += 1;
            if let Some(o) = &self.obs {
                o.reordered.inc();
            }
            self.deliver(1);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn frame(b: u8) -> Bytes {
        Bytes::copy_from_slice(&[b; 4])
    }

    #[test]
    fn lossless_delivers_everything() {
        let mut ch = LossyChannel::new(FaultPlan::lossless());
        for i in 0..100 {
            assert_eq!(ch.transmit(n(0), n(1), &frame(i as u8)).len(), 1);
        }
        assert_eq!(ch.stats.offered, 100);
        assert_eq!(ch.stats.delivered, 100);
        assert_eq!(ch.stats.dropped, 0);
    }

    #[test]
    fn uniform_loss_drops_about_the_right_fraction() {
        let mut ch = LossyChannel::new(FaultPlan::uniform(0.3).with_seed(11));
        let mut got = 0usize;
        for i in 0..10_000 {
            got += ch.transmit(n(0), n(1), &frame(i as u8)).len();
        }
        let rate = got as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    fn per_link_loss_follows_network_prr() {
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.4).unwrap();
        let net = b.build().unwrap();
        let plan = FaultPlan::from_network_prr(&net);
        assert!((plan.loss(n(0), n(1)) - 0.1).abs() < 1e-12);
        assert!((plan.loss(n(1), n(0)) - 0.1).abs() < 1e-12, "loss is symmetric");
        assert!((plan.loss(n(1), n(2)) - 0.6).abs() < 1e-12);
        // No physical link → no control channel either.
        assert!((plan.loss(n(0), n(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ctrl_frames_lose_less_than_data_frames() {
        let mut b = NetworkBuilder::new(2);
        b.add_edge(0, 1, 0.7).unwrap();
        let net = b.build().unwrap();
        let radio = LinkModel::default();
        let data = FaultPlan::from_network_prr(&net);
        let ctrl = FaultPlan::from_network_ctrl(&net, &radio, 12);
        assert!(ctrl.loss(n(0), n(1)) < data.loss(n(0), n(1)));
    }

    #[test]
    fn duplication_yields_two_copies() {
        let mut ch = LossyChannel::new(FaultPlan::lossless().with_duplication(1.0));
        let got = ch.transmit(n(0), n(1), &frame(7));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], got[1]);
        assert_eq!(ch.stats.duplicated, 1);
    }

    #[test]
    fn reordering_swaps_adjacent_frames() {
        // reorder_prob = 1 would hold every frame; alternate by seeding a
        // plan where the first draw holds and later draws release.
        let mut ch = LossyChannel::new(FaultPlan::lossless().with_reordering(1.0));
        assert!(ch.transmit(n(0), n(1), &frame(1)).is_empty(), "first frame held");
        // Second frame is held too, releasing the first (swap).
        let got = ch.transmit(n(0), n(1), &frame(2));
        assert_eq!(got, vec![frame(1)]);
        // Flush drains the straggler.
        assert_eq!(ch.flush(n(1)), Some(frame(2)));
        assert_eq!(ch.flush(n(1)), None);
        assert_eq!(ch.stats.reordered, 2);
    }

    #[test]
    fn crashed_nodes_are_radio_silent() {
        let mut ch = LossyChannel::new(FaultPlan::lossless());
        ch.crash(n(1));
        assert!(ch.transmit(n(0), n(1), &frame(1)).is_empty());
        assert!(ch.transmit(n(1), n(0), &frame(2)).is_empty());
        assert_eq!(ch.stats.to_crashed, 2);
        ch.revive(n(1));
        assert_eq!(ch.transmit(n(0), n(1), &frame(3)).len(), 1);
    }

    #[test]
    fn seeded_channels_are_deterministic() {
        let plan = FaultPlan::uniform(0.5).with_seed(42).with_duplication(0.2);
        let mut a = LossyChannel::new(plan.clone());
        let mut b = LossyChannel::new(plan);
        for i in 0..200 {
            assert_eq!(
                a.transmit(n(0), n(1), &frame(i as u8)),
                b.transmit(n(0), n(1), &frame(i as u8))
            );
        }
        assert_eq!(a.stats, b.stats);
    }
}

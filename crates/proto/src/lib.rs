//! The Prüfer-code based distributed updating protocol (§VI).
//!
//! Every sensor holds the same `(P, D)` coded-tree state
//! ([`wsn_prufer::CodedTree`]); updates are decided from information a node
//! actually has in a deployment — its own neighbourhood's link qualities,
//! its energy, and the child counts readable off the Prüfer code (Eq. 23) —
//! then broadcast as a single *Parent-Changing* record that every receiver
//! splices identically.
//!
//! Two triggers (§VI-B):
//!
//! * **Link getting worse** ([`ProtocolState::handle_link_worse`]): the
//!   child of the degraded tree edge re-homes to the neighbour outside its
//!   own component with the best link quality that can still accept a child
//!   under the lifetime constraint.
//! * **Link getting better** ([`ProtocolState::handle_link_better`], the
//!   ILU of Algorithm 4): an improved non-tree link may replace the
//!   costlier of its endpoints' parent links; the displaced parent link is
//!   then re-examined as a fresh "link getting better", walking the cycle
//!   iteratively with only two-neighbour information. Each accepted swap
//!   strictly lowers the tree cost, so the walk terminates.
//!
//! [`broadcast`] accounts messages the way the paper's Fig. 13 does: one
//! forward per non-leaf node per update. [`runner`] drives the Fig. 11–13
//! experiment (random tree-edge degradations, distributed repair vs.
//! centralized re-runs of IRA).

//! The control plane is additionally hardened against the data plane's own
//! fault model: [`faults`] injects per-link frame loss (driven by the
//! network's PRRs), duplication, reordering, and node crashes; [`reliable`]
//! adds per-hop ack/retry with exponential backoff; and
//! [`network_sim::DistributedNetwork`] detects replica divergence via
//! heartbeat digests and repairs it by anti-entropy resync instead of
//! asserting.

pub mod broadcast;
pub mod faults;
pub mod messages;
pub mod network_sim;
pub mod reliable;
pub mod runner;
pub mod update;

pub use broadcast::broadcast_message_count;
pub use faults::{ChannelStats, FaultPlan, LossModel, LossyChannel};
pub use messages::{Message, WireError};
pub use network_sim::{
    serial_gt, DeliveryReport, DistributedNetwork, RepairReport, ResyncReport, SensorNode,
};
pub use reliable::{send_hop, HopReport, RetryPolicy};
pub use runner::{run_link_dynamics, DynamicsConfig, DynamicsRecord};
pub use update::{can_accept_child, ProtocolState, UpdateOutcome};

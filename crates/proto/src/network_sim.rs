//! A per-node message-passing simulation of the protocol.
//!
//! [`ProtocolState`](crate::update::ProtocolState) models the *replicated*
//! state; this module drops to one level of realism below: every sensor is
//! an independent [`SensorNode`] holding its own copy of the coded tree,
//! and all coordination happens through encoded [`Message`] frames flooded
//! hop-by-hop over the current tree. Replicas converge because every node
//! decodes the same byte frames and applies the same deterministic splice —
//! the property the paper's protocol rests on ("every node could get the
//! same P' and D'").

use crate::messages::{Message, WireError};
use bytes::Bytes;
use wsn_model::{AggregationTree, NodeId};
use wsn_prufer::{CodedTree, PruferCode, PruferError};

/// One sensor's private protocol state.
#[derive(Clone, Debug)]
pub struct SensorNode {
    id: NodeId,
    /// Installed coded tree; `None` until the first announce arrives.
    state: Option<CodedTree>,
    /// Epoch of the installed tree.
    epoch: u16,
    /// Next expected per-epoch sequence number.
    next_seq: u16,
    /// Frames this node transmitted.
    pub sent_frames: usize,
    /// Frames this node received and accepted.
    pub accepted_frames: usize,
    /// Frames rejected (corrupt, stale, out of order).
    pub rejected_frames: usize,
}

/// Errors surfaced by the node state machine.
#[derive(Debug, PartialEq)]
pub enum SimError {
    /// A frame failed wire validation.
    Wire(WireError),
    /// A splice was invalid against the local state.
    Splice(PruferError),
    /// An update arrived before any tree was installed.
    NoTree(NodeId),
    /// The update's sequence number was not the expected one.
    OutOfOrder {
        /// The receiving node.
        node: NodeId,
        /// Expected sequence number.
        expected: u16,
        /// Received sequence number.
        got: u16,
    },
}

impl SensorNode {
    fn new(id: NodeId) -> Self {
        SensorNode {
            id,
            state: None,
            epoch: 0,
            next_seq: 0,
            sent_frames: 0,
            accepted_frames: 0,
            rejected_frames: 0,
        }
    }

    /// Processes one received frame, updating local state.
    fn receive(&mut self, frame: &[u8]) -> Result<(), SimError> {
        let msg = match Message::decode(frame) {
            Ok(m) => m,
            Err(e) => {
                self.rejected_frames += 1;
                return Err(SimError::Wire(e));
            }
        };
        match msg {
            Message::TreeAnnounce { epoch, n, code } => {
                if self.state.is_some() && epoch <= self.epoch {
                    self.rejected_frames += 1;
                    return Ok(()); // stale rebroadcast; ignore silently
                }
                let code = PruferCode::from_labels(n as usize, code)
                    .map_err(SimError::Splice)?;
                let decoded = code.decode().map_err(SimError::Splice)?;
                self.state = Some(
                    CodedTree::from_tree(&decoded.tree).map_err(SimError::Splice)?,
                );
                self.epoch = epoch;
                self.next_seq = 0;
                self.accepted_frames += 1;
                Ok(())
            }
            Message::ParentChange { epoch, seq, child, new_parent } => {
                let Some(state) = self.state.as_mut() else {
                    self.rejected_frames += 1;
                    return Err(SimError::NoTree(self.id));
                };
                if epoch != self.epoch {
                    self.rejected_frames += 1;
                    return Ok(()); // belongs to a different tree generation
                }
                if seq != self.next_seq {
                    self.rejected_frames += 1;
                    return Err(SimError::OutOfOrder {
                        node: self.id,
                        expected: self.next_seq,
                        got: seq,
                    });
                }
                state.change_parent(child, new_parent).map_err(SimError::Splice)?;
                self.next_seq += 1;
                self.accepted_frames += 1;
                Ok(())
            }
        }
    }

    /// The locally installed tree, if any.
    pub fn tree(&self) -> Option<AggregationTree> {
        self.state.as_ref().map(CodedTree::to_tree)
    }
}

/// The whole deployment: `n` independent sensors plus a lossless control
/// channel flooded over the current tree (the paper assumes update frames
/// are delivered; loss-handling for data packets is the data plane's
/// business).
#[derive(Clone, Debug)]
pub struct DistributedNetwork {
    nodes: Vec<SensorNode>,
    epoch: u16,
    seq: u16,
    /// Total frames transmitted since construction.
    pub total_frames: usize,
}

impl DistributedNetwork {
    /// Creates `n` blank sensors.
    pub fn new(n: usize) -> Self {
        DistributedNetwork {
            nodes: (0..n).map(|i| SensorNode::new(NodeId::new(i))).collect(),
            epoch: 0,
            seq: 0,
            total_frames: 0,
        }
    }

    /// Number of sensors.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Access a sensor's state.
    pub fn node(&self, v: NodeId) -> &SensorNode {
        &self.nodes[v.index()]
    }

    /// Floods a frame from `origin` over `tree`: every node receives it
    /// once; every node that has tree-neighbours left to cover forwards it
    /// once. Returns the number of transmissions.
    fn flood(&mut self, tree: &AggregationTree, origin: NodeId, frame: &Bytes) -> usize {
        // BFS over the tree from the origin; a node transmits iff it has at
        // least one not-yet-covered neighbour (the origin always transmits).
        let n = tree.n();
        let mut order = vec![origin];
        let mut seen = vec![false; n];
        seen[origin.index()] = true;
        let mut head = 0;
        let mut transmissions = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let mut fresh = Vec::new();
            for v in tree
                .children(u)
                .iter()
                .copied()
                .chain(tree.parent(u))
            {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    fresh.push(v);
                }
            }
            if !fresh.is_empty() || u == origin {
                transmissions += 1;
                self.nodes[u.index()].sent_frames += 1;
            }
            for v in fresh {
                // Delivery: the receiver independently decodes the bytes.
                let _ = self.nodes[v.index()].receive(frame);
                order.push(v);
            }
        }
        self.total_frames += transmissions;
        transmissions
    }

    /// The sink builds `tree` centrally, encodes its Prüfer code and floods
    /// the announce. The origin (sink) installs its state directly. Returns
    /// transmissions spent.
    pub fn announce(&mut self, tree: &AggregationTree) -> Result<usize, SimError> {
        self.epoch = self.epoch.wrapping_add(1);
        self.seq = 0;
        let code = PruferCode::encode(tree).map_err(SimError::Splice)?;
        let msg = Message::TreeAnnounce {
            epoch: self.epoch,
            n: tree.n() as u16,
            code: code.labels().to_vec(),
        };
        let frame = msg.encode();
        // The sink processes its own frame first (installing state), then
        // floods — but flooding needs the *tree*, which all nodes are about
        // to install; the announce rides the tree being announced.
        let _ = self.nodes[0].receive(&frame);
        let sent = self.flood(tree, NodeId::SINK, &frame);
        Ok(sent)
    }

    /// `child` decides (locally) to re-home under `new_parent`; the update
    /// is applied at the origin and flooded. Returns transmissions spent.
    pub fn parent_change(
        &mut self,
        child: NodeId,
        new_parent: NodeId,
    ) -> Result<usize, SimError> {
        let origin = child;
        let Some(state) = self.nodes[origin.index()].state.as_ref() else {
            return Err(SimError::NoTree(origin));
        };
        // Flood over the *pre-update* tree: that is the structure the
        // forwarding nodes currently agree on.
        let old_tree = state.to_tree();
        let msg = Message::ParentChange {
            epoch: self.epoch,
            seq: self.seq,
            child,
            new_parent,
        };
        let frame = msg.encode();
        // The origin applies its own update by processing its own frame.
        self.nodes[origin.index()].receive(&frame)?;
        let mut sent = self.flood(&old_tree, origin, &frame);
        // The origin already counted itself inside flood; subtract the
        // double-processing of its own receive (no extra transmission).
        self.seq += 1;
        // Frames the origin sent are already in `sent`.
        if sent == 0 {
            sent = 1; // single-node network edge case
        }
        Ok(sent)
    }

    /// True if every sensor holds byte-identical coded state.
    pub fn is_consistent(&self) -> bool {
        let Some(first) = self.nodes.first().and_then(|s| s.state.as_ref()) else {
            return false;
        };
        self.nodes.iter().all(|s| s.state.as_ref() == Some(first))
    }

    /// The commonly agreed tree.
    ///
    /// # Panics
    /// Panics if the replicas have diverged (a protocol bug by definition).
    pub fn tree(&self) -> AggregationTree {
        assert!(self.is_consistent(), "replicas diverged");
        self.nodes[0].state.as_ref().unwrap().to_tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn fig5_tree() -> AggregationTree {
        AggregationTree::from_edges(
            n(0),
            9,
            &[
                (n(0), n(7)),
                (n(0), n(4)),
                (n(0), n(8)),
                (n(4), n(3)),
                (n(4), n(2)),
                (n(2), n(6)),
                (n(8), n(5)),
                (n(8), n(1)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn announce_installs_everywhere() {
        let mut net = DistributedNetwork::new(9);
        assert!(!net.is_consistent());
        let sent = net.announce(&fig5_tree()).unwrap();
        assert!(net.is_consistent());
        assert!(sent >= 4, "flood must traverse the tree: {sent}");
        let t = net.tree();
        for i in 0..9 {
            assert_eq!(t.parent(n(i)), fig5_tree().parent(n(i)));
        }
        // Every node accepted exactly one frame.
        for i in 0..9 {
            assert_eq!(net.node(n(i)).accepted_frames, 1, "node {i}");
        }
    }

    #[test]
    fn parent_change_converges_bytewise() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        let sent = net.parent_change(n(4), n(7)).unwrap();
        assert!(net.is_consistent());
        assert!(sent > 0);
        let t = net.tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        // The replicated result equals the paper's Fig. 5(b) splice.
        let labels: Vec<u32> = net
            .node(n(3))
            .tree()
            .unwrap()
            .edges()
            .map(|(c, _)| c.label())
            .collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn chained_updates_stay_consistent() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        net.parent_change(n(4), n(7)).unwrap();
        net.parent_change(n(6), n(3)).unwrap();
        net.parent_change(n(1), n(5)).unwrap();
        assert!(net.is_consistent());
        let t = net.tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        assert_eq!(t.parent(n(6)), Some(n(3)));
        assert_eq!(t.parent(n(1)), Some(n(5)));
    }

    #[test]
    fn update_before_announce_fails() {
        let mut net = DistributedNetwork::new(9);
        assert_eq!(
            net.parent_change(n(4), n(7)),
            Err(SimError::NoTree(n(4)))
        );
    }

    #[test]
    fn reannounce_bumps_epoch_and_resets() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        net.parent_change(n(4), n(7)).unwrap();
        // Centralized rebuild: back to the original tree.
        net.announce(&fig5_tree()).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(4)), Some(n(0)));
        // Updates continue from seq 0 in the new epoch.
        net.parent_change(n(4), n(7)).unwrap();
        assert_eq!(net.tree().parent(n(4)), Some(n(7)));
    }

    #[test]
    fn transmission_counts_match_tree_structure() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        // A flood from node 6 (a deep leaf) must traverse every internal
        // node; the count equals nodes with an uncovered neighbour.
        let sent = net.parent_change(n(6), n(3)).unwrap();
        // Fig. 5(a) has 4 internal nodes (0, 2, 4, 8) plus the origin 6.
        assert!(
            (4..=6).contains(&sent),
            "expected ≈5 transmissions, got {sent}"
        );
    }

    #[test]
    fn two_node_network() {
        let mut net = DistributedNetwork::new(2);
        let t = AggregationTree::from_edges(n(0), 2, &[(n(0), n(1))]).unwrap();
        net.announce(&t).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(1)), Some(n(0)));
    }
}

//! A per-node message-passing simulation of the protocol.
//!
//! [`ProtocolState`](crate::update::ProtocolState) models the *replicated*
//! state; this module drops to one level of realism below: every sensor is
//! an independent [`SensorNode`] holding its own copy of the coded tree,
//! and all coordination happens through encoded [`Message`] frames flooded
//! hop-by-hop over the current tree. Replicas converge because every node
//! decodes the same byte frames and applies the same deterministic splice —
//! the property the paper's protocol rests on ("every node could get the
//! same P' and D'").
//!
//! Two delivery regimes coexist:
//!
//! * the paper's **lossless** channel ([`DistributedNetwork::announce`],
//!   [`DistributedNetwork::parent_change`]) — every frame arrives exactly
//!   once, in order;
//! * a **fault-injected** channel ([`DistributedNetwork::announce_lossy`],
//!   [`DistributedNetwork::parent_change_lossy`]) — frames cross a
//!   [`LossyChannel`] with per-hop ack/retry/backoff ([`RetryPolicy`]),
//!   replicas can transiently diverge, and [`DistributedNetwork::resync`]
//!   detects divergence from heartbeat digests and repairs it with an
//!   epoch re-announce. [`DistributedNetwork::repair_crashed`] re-homes
//!   the orphaned children of a crashed node under the `LC` bound.

use crate::faults::LossyChannel;
use crate::messages::{Message, WireError};
use crate::reliable::{send_hop, RetryPolicy};
use crate::update::can_accept_child;
use bytes::Bytes;
use wsn_model::{AggregationTree, EnergyModel, Network, NodeId};
use wsn_prufer::{CodedTree, PruferCode, PruferError};

/// RFC 1982 serial-number comparison on `u16`: is `a` newer than `b`?
///
/// Epochs and sequence numbers wrap; plain `>` would treat epoch 0 after
/// 65535 as ancient. Serial arithmetic orders any two values less than
/// half the space apart, so the protocol survives the wrap.
pub fn serial_gt(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// One sensor's private protocol state.
#[derive(Clone, Debug)]
pub struct SensorNode {
    id: NodeId,
    /// Installed coded tree; `None` until the first announce arrives.
    state: Option<CodedTree>,
    /// Epoch of the installed tree.
    epoch: u16,
    /// Next expected per-epoch sequence number.
    next_seq: u16,
    /// Frames this node transmitted.
    pub sent_frames: usize,
    /// Frames this node received and accepted.
    pub accepted_frames: usize,
    /// Frames rejected (corrupt, stale, out of order).
    pub rejected_frames: usize,
}

/// Errors surfaced by the node state machine.
#[derive(Debug, PartialEq)]
pub enum SimError {
    /// A frame failed wire validation.
    Wire(WireError),
    /// A splice was invalid against the local state.
    Splice(PruferError),
    /// An update arrived before any tree was installed.
    NoTree(NodeId),
    /// The update's sequence number jumped ahead of the expected one —
    /// the replica missed an update and needs resync.
    OutOfOrder {
        /// The receiving node.
        node: NodeId,
        /// Expected sequence number.
        expected: u16,
        /// Received sequence number.
        got: u16,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl SensorNode {
    fn new(id: NodeId) -> Self {
        SensorNode {
            id,
            state: None,
            epoch: 0,
            next_seq: 0,
            sent_frames: 0,
            accepted_frames: 0,
            rejected_frames: 0,
        }
    }

    /// Processes one received frame, updating local state.
    fn receive(&mut self, frame: &[u8]) -> Result<(), SimError> {
        let msg = match Message::decode(frame) {
            Ok(m) => m,
            Err(e) => {
                self.rejected_frames += 1;
                return Err(SimError::Wire(e));
            }
        };
        match msg {
            Message::TreeAnnounce { epoch, n, code } => {
                if self.state.is_some() && !serial_gt(epoch, self.epoch) {
                    self.rejected_frames += 1;
                    return Ok(()); // stale or duplicate rebroadcast
                }
                let code = PruferCode::from_labels(n as usize, code).map_err(SimError::Splice)?;
                let decoded = code.decode().map_err(SimError::Splice)?;
                self.state = Some(CodedTree::from_tree(&decoded.tree).map_err(SimError::Splice)?);
                self.epoch = epoch;
                self.next_seq = 0;
                self.accepted_frames += 1;
                Ok(())
            }
            Message::ParentChange { epoch, seq, child, new_parent } => {
                let Some(state) = self.state.as_mut() else {
                    self.rejected_frames += 1;
                    return Err(SimError::NoTree(self.id));
                };
                if epoch != self.epoch {
                    self.rejected_frames += 1;
                    return Ok(()); // belongs to a different tree generation
                }
                if seq != self.next_seq {
                    self.rejected_frames += 1;
                    if serial_gt(seq, self.next_seq) {
                        // A gap: this replica missed an update.
                        return Err(SimError::OutOfOrder {
                            node: self.id,
                            expected: self.next_seq,
                            got: seq,
                        });
                    }
                    return Ok(()); // duplicate of an already-applied update
                }
                state.change_parent(child, new_parent).map_err(SimError::Splice)?;
                self.next_seq = self.next_seq.wrapping_add(1);
                self.accepted_frames += 1;
                Ok(())
            }
            // Acks are consumed by the reliable-delivery layer; heartbeats
            // are compared by the resync sweep. Either reaching the state
            // machine (e.g. a reordered straggler) is a harmless no-op.
            Message::Ack { .. } | Message::Heartbeat { .. } => Ok(()),
        }
    }

    /// The locally installed tree, if any.
    pub fn tree(&self) -> Option<AggregationTree> {
        self.state.as_ref().map(CodedTree::to_tree)
    }

    /// Epoch of the installed tree.
    pub fn epoch(&self) -> u16 {
        self.epoch
    }

    /// Next expected sequence number.
    pub fn next_seq(&self) -> u16 {
        self.next_seq
    }

    /// FNV-1a digest over `(epoch, next_seq, P, D)` — the cheap state
    /// fingerprint carried by [`Message::Heartbeat`]. Two replicas agree on
    /// the coded tree iff (modulo hash collisions) their digests agree;
    /// a node with no installed state digests to 0.
    pub fn digest(&self) -> u64 {
        let Some(state) = self.state.as_ref() else {
            return 0;
        };
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &self.epoch.to_be_bytes());
        fnv1a(&mut h, &self.next_seq.to_be_bytes());
        for &v in state.prufer_labels() {
            fnv1a(&mut h, &v.label().to_be_bytes());
        }
        for &v in state.sequence() {
            fnv1a(&mut h, &v.label().to_be_bytes());
        }
        h
    }
}

/// Delivery accounting for one reliable flood (or a whole resync).
#[derive(Clone, Debug, Default)]
pub struct DeliveryReport {
    /// Payload transmissions, retries and heartbeats included.
    pub frames: usize,
    /// Ack transmissions.
    pub acks: usize,
    /// Virtual-time slots spent (transmissions + backoff windows).
    pub slots: u64,
    /// Hops that exhausted their retry budget.
    pub failed_hops: usize,
    /// Nodes the flood never reached (crashed nodes included).
    pub unreachable: Vec<NodeId>,
}

impl DeliveryReport {
    /// Total over-the-air control frames.
    pub fn total_frames(&self) -> usize {
        self.frames + self.acks
    }

    fn absorb(&mut self, other: &DeliveryReport) {
        self.frames += other.frames;
        self.acks += other.acks;
        self.slots += other.slots;
        self.failed_hops += other.failed_hops;
        // `unreachable` is per-flood; keep the most recent set.
        self.unreachable = other.unreachable.clone();
    }
}

/// Outcome of an anti-entropy resync.
#[derive(Clone, Debug, Default)]
pub struct ResyncReport {
    /// Heartbeat/re-announce rounds run (≥ 1).
    pub rounds: usize,
    /// Epoch re-announces triggered by detected divergence.
    pub reannounces: usize,
    /// Aggregate message/slot accounting across all rounds.
    pub delivery: DeliveryReport,
    /// Did the final heartbeat sweep come back clean?
    pub converged: bool,
}

/// Outcome of crash repair.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// `(orphan, new_parent)` re-homings performed.
    pub rehomed: Vec<(NodeId, NodeId)>,
    /// Orphans with no feasible new parent (no live neighbour outside the
    /// crashed subtree that can accept a child under `LC`).
    pub stranded: Vec<NodeId>,
    /// Aggregate message/slot accounting.
    pub delivery: DeliveryReport,
}

/// The whole deployment: `n` independent sensors plus a control channel
/// flooded over the current tree. The paper assumes update frames are
/// always delivered; the `_lossy` entry points replace that assumption
/// with per-hop ack/retry over an injected fault plan.
#[derive(Clone, Debug)]
pub struct DistributedNetwork {
    nodes: Vec<SensorNode>,
    sink: NodeId,
    epoch: u16,
    seq: u16,
    /// Total frames transmitted since construction.
    pub total_frames: usize,
}

impl DistributedNetwork {
    /// Creates `n` blank sensors with the conventional sink (label 0).
    pub fn new(n: usize) -> Self {
        DistributedNetwork {
            nodes: (0..n).map(|i| SensorNode::new(NodeId::new(i))).collect(),
            sink: NodeId::SINK,
            epoch: 0,
            seq: 0,
            total_frames: 0,
        }
    }

    /// Designates a different sink. Every announce originates here, and
    /// `flood` starts here — one accessor, so the two cannot desync.
    pub fn with_sink(mut self, sink: NodeId) -> Self {
        assert!(sink.index() < self.nodes.len(), "sink out of range");
        self.sink = sink;
        self
    }

    /// The sink node — the single origin of announces and resyncs.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Number of sensors.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Access a sensor's state.
    pub fn node(&self, v: NodeId) -> &SensorNode {
        &self.nodes[v.index()]
    }

    /// Floods a frame from `origin` over `tree`: every node receives it
    /// once; every node that has tree-neighbours left to cover forwards it
    /// once (a node with nothing left to cover — including a singleton
    /// origin — transmits nothing). Returns the number of transmissions.
    fn flood(&mut self, tree: &AggregationTree, origin: NodeId, frame: &Bytes) -> usize {
        let n = tree.n();
        let mut order = vec![origin];
        let mut seen = vec![false; n];
        seen[origin.index()] = true;
        let mut head = 0;
        let mut transmissions = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let mut fresh = Vec::new();
            for v in tree.children(u).iter().copied().chain(tree.parent(u)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    fresh.push(v);
                }
            }
            if !fresh.is_empty() {
                transmissions += 1;
                self.nodes[u.index()].sent_frames += 1;
            }
            for v in fresh {
                // Delivery: the receiver independently decodes the bytes.
                let _ = self.nodes[v.index()].receive(frame);
                order.push(v);
            }
        }
        self.total_frames += transmissions;
        transmissions
    }

    /// Floods a frame hop-by-hop with per-hop ack/retry over a lossy
    /// channel. A hop that exhausts its retry budget strands the subtree
    /// behind it (recorded as `unreachable`); a receiver that got the
    /// frame keeps forwarding even if its ack was lost.
    fn flood_reliable(
        &mut self,
        tree: &AggregationTree,
        origin: NodeId,
        frame: &Bytes,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
    ) -> DeliveryReport {
        let n = tree.n();
        let mut report = DeliveryReport::default();
        let mut order = vec![origin];
        let mut seen = vec![false; n];
        let mut reached = vec![false; n];
        seen[origin.index()] = true;
        reached[origin.index()] = true;
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            if channel.is_crashed(u) {
                continue; // a dead node forwards nothing
            }
            for v in tree.children(u).iter().copied().chain(tree.parent(u)) {
                if seen[v.index()] {
                    continue;
                }
                seen[v.index()] = true;
                let hop = send_hop(channel, policy, u, v, frame);
                self.nodes[u.index()].sent_frames += hop.attempts;
                self.nodes[v.index()].sent_frames += hop.acks;
                self.total_frames += hop.attempts + hop.acks;
                report.frames += hop.attempts;
                report.acks += hop.acks;
                report.slots += hop.slots;
                if hop.received() {
                    for copy in &hop.delivered {
                        let _ = self.nodes[v.index()].receive(copy);
                    }
                    reached[v.index()] = true;
                    order.push(v);
                } else {
                    report.failed_hops += 1;
                }
            }
        }
        report.unreachable = (0..n).filter(|&i| !reached[i]).map(NodeId::new).collect();
        report
    }

    fn announce_frame(&mut self, tree: &AggregationTree) -> Result<Bytes, SimError> {
        self.epoch = self.epoch.wrapping_add(1);
        self.seq = 0;
        let code = PruferCode::encode(tree).map_err(SimError::Splice)?;
        let msg = Message::TreeAnnounce {
            epoch: self.epoch,
            n: tree.n() as u16,
            code: code.labels().to_vec(),
        };
        Ok(msg.encode())
    }

    /// The sink builds `tree` centrally, encodes its Prüfer code and floods
    /// the announce. The origin (sink) installs its state directly. Returns
    /// transmissions spent.
    pub fn announce(&mut self, tree: &AggregationTree) -> Result<usize, SimError> {
        let frame = self.announce_frame(tree)?;
        let _round = wsn_obs::span_with(
            "protocol-round",
            vec![
                wsn_obs::field("kind", "announce"),
                wsn_obs::field("epoch", u64::from(self.epoch)),
            ],
        );
        // The sink processes its own frame first (installing state), then
        // floods — but flooding needs the *tree*, which all nodes are about
        // to install; the announce rides the tree being announced.
        let sink = self.sink;
        let _ = self.nodes[sink.index()].receive(&frame);
        Ok(self.flood(tree, sink, &frame))
    }

    /// [`DistributedNetwork::announce`] over a lossy channel: each hop uses
    /// ack/retry/backoff, and stranded subtrees are reported rather than
    /// silently assumed delivered.
    pub fn announce_lossy(
        &mut self,
        tree: &AggregationTree,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
    ) -> Result<DeliveryReport, SimError> {
        let frame = self.announce_frame(tree)?;
        let _round = wsn_obs::span_with(
            "protocol-round",
            vec![
                wsn_obs::field("kind", "announce-lossy"),
                wsn_obs::field("epoch", u64::from(self.epoch)),
            ],
        );
        let sink = self.sink;
        let _ = self.nodes[sink.index()].receive(&frame);
        Ok(self.flood_reliable(tree, sink, &frame, channel, policy))
    }

    /// `child` decides (locally) to re-home under `new_parent`; the update
    /// is applied at the origin and flooded. Returns transmissions spent.
    pub fn parent_change(&mut self, child: NodeId, new_parent: NodeId) -> Result<usize, SimError> {
        let origin = child;
        let Some(state) = self.nodes[origin.index()].state.as_ref() else {
            return Err(SimError::NoTree(origin));
        };
        // Flood over the *pre-update* tree: that is the structure the
        // forwarding nodes currently agree on.
        let old_tree = state.to_tree();
        let _round = wsn_obs::span_with(
            "protocol-round",
            vec![
                wsn_obs::field("kind", "parent-change"),
                wsn_obs::field("child", child.index()),
                wsn_obs::field("new_parent", new_parent.index()),
            ],
        );
        let msg = Message::ParentChange { epoch: self.epoch, seq: self.seq, child, new_parent };
        let frame = msg.encode();
        // The origin applies its own update by processing its own frame;
        // its forwarding transmission (if any) is counted by `flood`.
        self.nodes[origin.index()].receive(&frame)?;
        let sent = self.flood(&old_tree, origin, &frame);
        self.seq = self.seq.wrapping_add(1);
        Ok(sent)
    }

    /// [`DistributedNetwork::parent_change`] over a lossy channel. The
    /// frame is stamped with the *origin's* local epoch and sequence
    /// number (all a deployed node has); replicas that already drifted
    /// reject it and are caught by the next [`DistributedNetwork::resync`].
    pub fn parent_change_lossy(
        &mut self,
        child: NodeId,
        new_parent: NodeId,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
    ) -> Result<DeliveryReport, SimError> {
        let origin = child;
        let Some(state) = self.nodes[origin.index()].state.as_ref() else {
            return Err(SimError::NoTree(origin));
        };
        let old_tree = state.to_tree();
        let _round = wsn_obs::span_with(
            "protocol-round",
            vec![
                wsn_obs::field("kind", "parent-change-lossy"),
                wsn_obs::field("child", child.index()),
                wsn_obs::field("new_parent", new_parent.index()),
            ],
        );
        let msg = Message::ParentChange {
            epoch: self.nodes[origin.index()].epoch,
            seq: self.nodes[origin.index()].next_seq,
            child,
            new_parent,
        };
        let frame = msg.encode();
        self.nodes[origin.index()].receive(&frame)?;
        self.seq = self.nodes[origin.index()].next_seq;
        Ok(self.flood_reliable(&old_tree, origin, &frame, channel, policy))
    }

    /// True if every sensor holds byte-identical coded state.
    pub fn is_consistent(&self) -> bool {
        let Some(first) = self.nodes.first().and_then(|s| s.state.as_ref()) else {
            return false;
        };
        self.nodes.iter().all(|s| s.state.as_ref() == Some(first))
    }

    /// True if every *live* sensor agrees byte-for-byte with the sink.
    /// Crashed nodes keep whatever state they held when they died.
    pub fn is_consistent_alive(&self, channel: &LossyChannel) -> bool {
        let Some(sink_state) = self.nodes[self.sink.index()].state.as_ref() else {
            return false;
        };
        self.nodes
            .iter()
            .filter(|s| !channel.is_crashed(s.id))
            .all(|s| s.state.as_ref() == Some(sink_state))
    }

    /// Nodes whose digest disagrees with the sink's (omniscient view, for
    /// tests and experiments; the protocol itself detects divergence from
    /// heartbeat digests hop-by-hop).
    pub fn divergent(&self) -> Vec<NodeId> {
        let sink_digest = self.nodes[self.sink.index()].digest();
        self.nodes.iter().filter(|s| s.digest() != sink_digest).map(|s| s.id).collect()
    }

    /// The sink's view of the agreed tree — the authoritative replica.
    ///
    /// Under faults, other replicas may lag transiently; divergence is
    /// detected and repaired by [`DistributedNetwork::resync`], never
    /// asserted.
    ///
    /// # Panics
    /// Panics if no tree was ever announced.
    pub fn tree(&self) -> AggregationTree {
        self.nodes[self.sink.index()].state.as_ref().expect("no tree announced yet").to_tree()
    }

    /// One heartbeat sweep: every live non-sink node sends its digest one
    /// hop up the sink's tree; a parent hearing a digest different from
    /// its own — or silence where it expected a heartbeat — flags
    /// divergence. Hops to or from crashed nodes are skipped.
    fn heartbeat_sweep(
        &mut self,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
        report: &mut DeliveryReport,
    ) -> bool {
        let tree = self.tree();
        let mut divergence = false;
        for (child, parent) in tree.edges() {
            if channel.is_crashed(child) || channel.is_crashed(parent) {
                continue;
            }
            let c = &self.nodes[child.index()];
            let frame =
                Message::Heartbeat { epoch: c.epoch, seq: c.next_seq, digest: c.digest() }.encode();
            let hop = send_hop(channel, policy, child, parent, &frame);
            self.nodes[child.index()].sent_frames += hop.attempts;
            self.nodes[parent.index()].sent_frames += hop.acks;
            self.total_frames += hop.attempts + hop.acks;
            report.frames += hop.attempts;
            report.acks += hop.acks;
            report.slots += hop.slots;
            if !hop.received() {
                report.failed_hops += 1;
                divergence = true; // silence is suspicious
                Self::note_divergence(child, parent, "silent");
                continue;
            }
            let parent_digest = self.nodes[parent.index()].digest();
            let heard_match = hop.delivered.iter().any(|f| {
                matches!(Message::decode(f), Ok(Message::Heartbeat { digest, .. })
                    if digest == parent_digest)
            });
            if !heard_match {
                divergence = true;
                Self::note_divergence(child, parent, "digest-mismatch");
            }
        }
        divergence
    }

    /// One divergent heartbeat hop: bump the counter and leave a trace
    /// event naming the edge and why it was flagged.
    fn note_divergence(child: NodeId, parent: NodeId, cause: &str) {
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("proto.heartbeat_divergences").inc();
            wsn_obs::event(
                "proto.heartbeat_divergence",
                vec![
                    wsn_obs::field("child", child.index()),
                    wsn_obs::field("parent", parent.index()),
                    wsn_obs::field("cause", cause),
                ],
            );
        }
    }

    /// Anti-entropy resync: heartbeat sweeps detect replica divergence;
    /// each detection triggers the sink to re-announce its current tree
    /// under a bumped epoch, resetting every replica the flood reaches.
    /// Stops after a clean sweep or `max_rounds` rounds.
    pub fn resync(
        &mut self,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
        max_rounds: usize,
    ) -> ResyncReport {
        let mut report = ResyncReport::default();
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("proto.resyncs").inc();
        }
        for round in 0..max_rounds {
            report.rounds += 1;
            let _span = wsn_obs::span_with(
                "protocol-round",
                vec![wsn_obs::field("kind", "resync"), wsn_obs::field("round", round)],
            );
            let mut sweep = DeliveryReport::default();
            let diverged = self.heartbeat_sweep(channel, policy, &mut sweep);
            report.delivery.frames += sweep.frames;
            report.delivery.acks += sweep.acks;
            report.delivery.slots += sweep.slots;
            report.delivery.failed_hops += sweep.failed_hops;
            if !diverged {
                report.converged = true;
                break;
            }
            report.reannounces += 1;
            if let Some(obs) = wsn_obs::current() {
                obs.registry().counter("proto.resync_reannounces").inc();
            }
            let tree = self.tree();
            if let Ok(d) = self.announce_lossy(&tree, channel, policy) {
                report.delivery.absorb(&d);
            }
        }
        wsn_obs::event(
            "proto.resync_done",
            vec![
                wsn_obs::field("rounds", report.rounds),
                wsn_obs::field("reannounces", report.reannounces),
                wsn_obs::field("converged", report.converged),
            ],
        );
        report
    }

    /// Sink-driven repair after `crashed` died mid-epoch: every orphaned
    /// child of `crashed` (in the sink's view) is re-homed to its
    /// best-PRR live neighbour outside the crashed subtree that can still
    /// accept a child under the `LC` bound (Eq. 23 child counts — exactly
    /// the information the protocol replicates). Each re-homing is
    /// disseminated as a normal ParentChange flood over the sink's current
    /// tree, which routes around the dead node as orphans re-home; run
    /// [`DistributedNetwork::resync`] afterwards to catch stragglers.
    pub fn repair_crashed(
        &mut self,
        net: &Network,
        lc: f64,
        model: &EnergyModel,
        crashed: NodeId,
        channel: &mut LossyChannel,
        policy: &RetryPolicy,
    ) -> Result<RepairReport, SimError> {
        assert!(crashed != self.sink, "the sink cannot be repaired away");
        let mut report = RepairReport::default();
        let sink = self.sink;
        if self.nodes[sink.index()].state.is_none() {
            return Err(SimError::NoTree(sink));
        }
        let _round = wsn_obs::span_with(
            "protocol-round",
            vec![
                wsn_obs::field("kind", "crash-repair"),
                wsn_obs::field("crashed", crashed.index()),
            ],
        );
        let orphans: Vec<NodeId> = self.tree().children(crashed).to_vec();
        for orphan in orphans {
            let (coded, tree) = {
                let s = self.nodes[sink.index()].state.as_ref().unwrap();
                (s.clone(), s.to_tree())
            };
            // Candidates: live physical neighbours outside the crashed
            // subtree (so the orphan's new route to the sink avoids the
            // dead node) that can accept one more child under LC.
            let mut best: Option<(f64, NodeId)> = None;
            for &(e, w) in net.neighbors(orphan) {
                if w == crashed
                    || channel.is_crashed(w)
                    || tree.in_subtree(w, crashed)
                    || !can_accept_child(&coded, net, w, lc, model)
                {
                    continue;
                }
                let q = net.link(e).prr().value();
                if best.is_none_or(|(bq, _)| q > bq) {
                    best = Some((q, w));
                }
            }
            let Some((_, new_parent)) = best else {
                report.stranded.push(orphan);
                continue;
            };
            // The sink stamps and applies the update, then floods it over
            // its own (post-update) tree so the flood routes around the
            // crashed node.
            let msg = Message::ParentChange {
                epoch: self.nodes[sink.index()].epoch,
                seq: self.nodes[sink.index()].next_seq,
                child: orphan,
                new_parent,
            };
            let frame = msg.encode();
            self.nodes[sink.index()].receive(&frame)?;
            self.seq = self.nodes[sink.index()].next_seq;
            let new_tree = self.tree();
            let d = self.flood_reliable(&new_tree, sink, &frame, channel, policy);
            report.delivery.absorb(&d);
            report.rehomed.push((orphan, new_parent));
        }
        if let Some(obs) = wsn_obs::current() {
            obs.registry().counter("proto.crash_repairs").inc();
            obs.registry().counter("proto.orphans_rehomed").add(report.rehomed.len() as u64);
            obs.registry().counter("proto.orphans_stranded").add(report.stranded.len() as u64);
        }
        wsn_obs::event(
            "proto.crash_repair",
            vec![
                wsn_obs::field("crashed", crashed.index()),
                wsn_obs::field("rehomed", report.rehomed.len()),
                wsn_obs::field("stranded", report.stranded.len()),
            ],
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn fig5_tree() -> AggregationTree {
        AggregationTree::from_edges(
            n(0),
            9,
            &[
                (n(0), n(7)),
                (n(0), n(4)),
                (n(0), n(8)),
                (n(4), n(3)),
                (n(4), n(2)),
                (n(2), n(6)),
                (n(8), n(5)),
                (n(8), n(1)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn announce_installs_everywhere() {
        let mut net = DistributedNetwork::new(9);
        assert!(!net.is_consistent());
        let sent = net.announce(&fig5_tree()).unwrap();
        assert!(net.is_consistent());
        assert!(sent >= 4, "flood must traverse the tree: {sent}");
        let t = net.tree();
        for i in 0..9 {
            assert_eq!(t.parent(n(i)), fig5_tree().parent(n(i)));
        }
        // Every node accepted exactly one frame.
        for i in 0..9 {
            assert_eq!(net.node(n(i)).accepted_frames, 1, "node {i}");
        }
    }

    #[test]
    fn parent_change_converges_bytewise() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        let sent = net.parent_change(n(4), n(7)).unwrap();
        assert!(net.is_consistent());
        assert!(sent > 0);
        let t = net.tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        // The replicated result equals the paper's Fig. 5(b) splice.
        let labels: Vec<u32> =
            net.node(n(3)).tree().unwrap().edges().map(|(c, _)| c.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn chained_updates_stay_consistent() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        net.parent_change(n(4), n(7)).unwrap();
        net.parent_change(n(6), n(3)).unwrap();
        net.parent_change(n(1), n(5)).unwrap();
        assert!(net.is_consistent());
        let t = net.tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        assert_eq!(t.parent(n(6)), Some(n(3)));
        assert_eq!(t.parent(n(1)), Some(n(5)));
    }

    #[test]
    fn update_before_announce_fails() {
        let mut net = DistributedNetwork::new(9);
        assert_eq!(net.parent_change(n(4), n(7)), Err(SimError::NoTree(n(4))));
    }

    #[test]
    fn reannounce_bumps_epoch_and_resets() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        net.parent_change(n(4), n(7)).unwrap();
        // Centralized rebuild: back to the original tree.
        net.announce(&fig5_tree()).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(4)), Some(n(0)));
        // Updates continue from seq 0 in the new epoch.
        net.parent_change(n(4), n(7)).unwrap();
        assert_eq!(net.tree().parent(n(4)), Some(n(7)));
    }

    #[test]
    fn transmission_counts_match_tree_structure() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        // A flood from node 6 (a deep leaf) must traverse every internal
        // node; the count equals nodes with an uncovered neighbour.
        let sent = net.parent_change(n(6), n(3)).unwrap();
        // Fig. 5(a) has 4 internal nodes (0, 2, 4, 8) plus the origin 6.
        assert!((4..=6).contains(&sent), "expected ≈5 transmissions, got {sent}");
    }

    #[test]
    fn two_node_network() {
        let mut net = DistributedNetwork::new(2);
        let t = AggregationTree::from_edges(n(0), 2, &[(n(0), n(1))]).unwrap();
        net.announce(&t).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(1)), Some(n(0)));
    }

    // ---- satellite regressions -------------------------------------------

    #[test]
    fn serial_comparison_crosses_the_wrap() {
        assert!(serial_gt(1, 0));
        assert!(!serial_gt(0, 1));
        assert!(!serial_gt(5, 5));
        // The wrap: 0 is newer than 65535, not 65534 positions older.
        assert!(serial_gt(0, u16::MAX));
        assert!(serial_gt(3, u16::MAX - 2));
        assert!(!serial_gt(u16::MAX, 0));
        // Half-space boundary.
        assert!(serial_gt(0x8000, 0x0001));
        assert!(!serial_gt(0x8001, 0x0001));
    }

    #[test]
    fn epoch_wraparound_accepts_the_new_generation() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        // Fast-forward every replica to the last epoch before the wrap.
        net.epoch = u16::MAX;
        for s in &mut net.nodes {
            s.epoch = u16::MAX;
        }
        // The next announce wraps to epoch 0 — and must NOT be treated as
        // stale forever.
        net.announce(&fig5_tree()).unwrap();
        assert_eq!(net.node(n(3)).epoch(), 0);
        assert!(net.is_consistent());
        // Updates keep working in the wrapped epoch.
        net.parent_change(n(4), n(7)).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(4)), Some(n(7)));
    }

    #[test]
    fn seq_wraparound_distinguishes_dups_from_gaps() {
        let mut net = DistributedNetwork::new(9);
        net.announce(&fig5_tree()).unwrap();
        // Fast-forward the per-epoch sequence to the edge of the wrap.
        net.seq = u16::MAX;
        for s in &mut net.nodes {
            s.next_seq = u16::MAX;
        }
        net.parent_change(n(4), n(7)).unwrap();
        assert!(net.is_consistent());
        assert_eq!(net.node(n(3)).next_seq(), 0, "seq wraps to 0");
        // A duplicate of the pre-wrap update (seq 65535) is silently
        // ignored, not flagged as a 65535-step gap.
        let dup = Message::ParentChange {
            epoch: net.node(n(3)).epoch(),
            seq: u16::MAX,
            child: n(4),
            new_parent: n(7),
        }
        .encode();
        assert_eq!(net.nodes[3].receive(&dup), Ok(()));
        // A genuine gap is still an error.
        let gap = Message::ParentChange {
            epoch: net.node(n(3)).epoch(),
            seq: 7,
            child: n(6),
            new_parent: n(3),
        }
        .encode();
        assert!(matches!(
            net.nodes[3].receive(&gap),
            Err(SimError::OutOfOrder { expected: 0, got: 7, .. })
        ));
    }

    #[test]
    fn non_zero_sink_resolves_through_one_accessor() {
        // A 3-node network whose sink is node 2: announce must originate
        // at node 2, not hard-coded node 0.
        let mut net = DistributedNetwork::new(3).with_sink(n(2));
        assert_eq!(net.sink(), n(2));
        // The Prüfer layer pins the *root label* to 0, so announce a tree
        // rooted at 0; what matters here is that the flood origin and the
        // self-install both use the accessor.
        let t = AggregationTree::from_edges(n(0), 3, &[(n(0), n(1)), (n(1), n(2))]).unwrap();
        net.announce(&t).unwrap();
        assert!(net.is_consistent());
        // The origin (node 2) installed state directly and transmitted the
        // first hop of the flood.
        assert!(net.node(n(2)).sent_frames > 0);
    }

    #[test]
    fn single_node_flood_transmits_nothing() {
        // A singleton origin has nobody to cover: zero transmissions, no
        // `sent = 1` fudge.
        let mut net = DistributedNetwork::new(1);
        let frame = Message::Heartbeat { epoch: 0, seq: 0, digest: 0 }.encode();
        let t = AggregationTree::from_parents(n(0), vec![None]).unwrap();
        let sent = net.flood(&t, n(0), &frame);
        assert_eq!(sent, 0);
        assert_eq!(net.total_frames, 0);
        assert_eq!(net.node(n(0)).sent_frames, 0);
    }

    #[test]
    fn two_node_parent_change_costs_exactly_one_transmission() {
        let mut net = DistributedNetwork::new(2);
        let t = AggregationTree::from_edges(n(0), 2, &[(n(0), n(1))]).unwrap();
        let announce_sent = net.announce(&t).unwrap();
        assert_eq!(announce_sent, 1, "sink → node 1 is one transmission");
        // Node 1 re-announces its (structurally unchanged) parent: node 1
        // transmits once to cover node 0; node 0 forwards nothing. The old
        // `sent == 0 → 1` fudge is gone — the origin's transmission is
        // counted by `flood` itself.
        let sent = net.parent_change(n(1), n(0)).unwrap();
        assert_eq!(sent, 1);
        assert!(net.is_consistent());
        assert_eq!(net.total_frames, 2);
    }

    // ---- fault-injected paths --------------------------------------------

    #[test]
    fn lossy_announce_converges_with_retries() {
        let mut net = DistributedNetwork::new(9);
        let mut ch = LossyChannel::new(FaultPlan::uniform(0.3).with_seed(21));
        let policy = RetryPolicy::default();
        let d = net.announce_lossy(&fig5_tree(), &mut ch, &policy).unwrap();
        // Retries push the frame count above the lossless 4–8.
        assert!(d.frames >= 8, "expected retransmissions, got {}", d.frames);
        if d.unreachable.is_empty() {
            assert!(net.is_consistent());
        } else {
            // Rare residual loss: resync must finish the job.
            let r = net.resync(&mut ch, &policy, 20);
            assert!(r.converged);
            assert!(net.is_consistent());
        }
    }

    #[test]
    fn divergence_is_detected_and_resynced_not_asserted() {
        let mut net = DistributedNetwork::new(9);
        // A brutal channel: half of all attempts die.
        let mut ch = LossyChannel::new(FaultPlan::uniform(0.5).with_seed(2));
        let weak = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        net.announce_lossy(&fig5_tree(), &mut ch, &weak).unwrap();
        // With 2 attempts per hop, some replicas are very likely stale;
        // either way, tree() must not panic and resync must converge.
        let _ = net.tree();
        let r = net.resync(&mut ch, &RetryPolicy::default(), 50);
        assert!(r.converged, "resync did not converge: {:?}", r);
        assert!(net.is_consistent());
        assert!(net.divergent().is_empty());
    }

    #[test]
    fn lossy_parent_change_then_resync_converges() {
        let mut net = DistributedNetwork::new(9);
        let mut ch = LossyChannel::new(
            FaultPlan::uniform(0.25).with_seed(7).with_duplication(0.1).with_reordering(0.05),
        );
        let policy = RetryPolicy::default();
        net.announce_lossy(&fig5_tree(), &mut ch, &policy).unwrap();
        net.resync(&mut ch, &policy, 20);
        for (c, p) in [(n(4), n(7)), (n(6), n(3)), (n(1), n(5))] {
            net.parent_change_lossy(c, p, &mut ch, &policy).unwrap();
        }
        let r = net.resync(&mut ch, &policy, 50);
        assert!(r.converged);
        assert!(net.is_consistent());
        assert_eq!(net.tree().parent(n(4)), Some(n(7)));
    }

    #[test]
    fn heartbeat_sweep_is_quiet_when_consistent() {
        let mut net = DistributedNetwork::new(9);
        let mut ch = LossyChannel::new(FaultPlan::lossless());
        let policy = RetryPolicy::default();
        net.announce_lossy(&fig5_tree(), &mut ch, &policy).unwrap();
        let r = net.resync(&mut ch, &policy, 5);
        assert!(r.converged);
        assert_eq!(r.rounds, 1, "one clean sweep suffices");
        assert_eq!(r.reannounces, 0);
        // 8 heartbeat hops, one per tree edge.
        assert_eq!(r.delivery.frames, 8);
    }

    mod fault_interleavings {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any interleaving of dropped, duplicated and reordered
            /// control frames either converges every replica to
            /// byte-identical coded state through ack/retry alone, or the
            /// divergence is flagged by the heartbeat sweep and repaired
            /// by anti-entropy resync — never an assert, never a panic.
            #[test]
            fn lossy_interleavings_always_converge(
                seed in any::<u32>(),
                loss_pct in 0u32..=30,
                dup_pct in 0u32..=40,
                reorder_pct in 0u32..=40,
                ops in proptest::collection::vec((1usize..9, 0usize..9), 0..6),
            ) {
                let mut net = DistributedNetwork::new(9);
                let mut ch = LossyChannel::new(
                    FaultPlan::uniform(f64::from(loss_pct) / 100.0)
                        .with_seed(u64::from(seed))
                        .with_duplication(f64::from(dup_pct) / 100.0)
                        .with_reordering(f64::from(reorder_pct) / 100.0),
                );
                let policy = RetryPolicy::default();
                net.announce_lossy(&fig5_tree(), &mut ch, &policy).unwrap();
                let r = net.resync(&mut ch, &policy, 50);
                prop_assert!(r.converged, "announce never converged");
                for &(child, parent) in &ops {
                    // Illegal splices (cycles, self-parenting) are rejected
                    // at the origin without mutating any replica.
                    let _ = net.parent_change_lossy(
                        n(child),
                        n(parent),
                        &mut ch,
                        &policy,
                    );
                }
                let r = net.resync(&mut ch, &policy, 50);
                prop_assert!(r.converged, "resync never converged");
                prop_assert!(net.is_consistent());
                prop_assert!(net.divergent().is_empty());
            }
        }
    }
}

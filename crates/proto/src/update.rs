//! Distributed update handlers over the shared coded-tree state.

use crate::broadcast::broadcast_message_count;
use wsn_model::{lifetime, AggregationTree, EnergyModel, Network, NodeId};
use wsn_prufer::{CodedTree, PruferError};

/// Result of processing one trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Parent changes performed (ILU may chain several).
    pub changes: usize,
    /// Broadcast messages spent disseminating them.
    pub messages: usize,
    /// Cycle-walk steps examined by ILU.
    pub steps: usize,
}

/// Can `v` accept one more child while keeping `L(v) ≥ LC`? Decided from
/// the Prüfer child count (Eq. 23) and `v`'s own energy — exactly the
/// information a deployed `v` has. Shared by [`ProtocolState`] and the
/// crash-repair path in `network_sim`.
pub fn can_accept_child(
    coded: &CodedTree,
    net: &Network,
    v: NodeId,
    lc: f64,
    model: &EnergyModel,
) -> bool {
    let ch = coded.child_count(v) + 1;
    lifetime::node_lifetime(net.initial_energy(v), model, ch) >= lc * (1.0 - 1e-12)
}

/// The network-wide protocol state: the coded tree every sensor replicates,
/// plus the lifetime bound each node enforces before accepting children.
#[derive(Clone, Debug)]
pub struct ProtocolState {
    coded: CodedTree,
    lc: f64,
    model: EnergyModel,
    /// Hysteresis: a candidate parent must beat the current link's PRR by
    /// this absolute margin before a switch fires. Zero reproduces the
    /// paper's eager behaviour; a small positive margin suppresses
    /// flip-flopping under noisy link estimates at a bounded cost penalty
    /// (the stability study quantifies the trade-off).
    switch_margin: f64,
}

impl ProtocolState {
    /// Initializes from a freshly constructed tree (the sink computes the
    /// Prüfer code and broadcasts it, §VI-B).
    pub fn new(tree: &AggregationTree, lc: f64, model: EnergyModel) -> Result<Self, PruferError> {
        Ok(ProtocolState { coded: CodedTree::from_tree(tree)?, lc, model, switch_margin: 0.0 })
    }

    /// Sets the hysteresis margin (see the field docs). Returns `self` for
    /// builder-style use.
    pub fn with_switch_margin(mut self, margin: f64) -> Self {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
        self.switch_margin = margin;
        self
    }

    /// The current tree, materialized.
    pub fn tree(&self) -> AggregationTree {
        self.coded.to_tree()
    }

    /// The replicated coded state (for inspection).
    pub fn coded(&self) -> &CodedTree {
        &self.coded
    }

    /// Can `v` accept one more child while keeping `L(v) ≥ LC`? See the
    /// free function [`can_accept_child`].
    pub fn can_accept_child(&self, net: &Network, v: NodeId) -> bool {
        can_accept_child(&self.coded, net, v, self.lc, &self.model)
    }

    /// §VI-B.1 — a tree link `(child, parent(child))` degraded. The child
    /// picks the best-quality neighbour outside its own component that can
    /// accept it; if that neighbour beats the current (degraded) parent
    /// link, it re-homes and broadcasts one Parent-Changing record.
    pub fn handle_link_worse(&mut self, net: &Network, child: NodeId) -> UpdateOutcome {
        let mut out = UpdateOutcome::default();
        let Some(current_parent) = self.coded.parent(child) else {
            return out; // the sink has no parent link
        };
        let current_q =
            net.find_edge(child, current_parent).map(|e| net.link(e).prr().value()).unwrap_or(0.0);

        let component = self.coded.component_of(child);
        let mut best: Option<(f64, NodeId)> = None;
        for &(e, w) in net.neighbors(child) {
            if w == current_parent || component.contains(&w) {
                continue;
            }
            if !self.can_accept_child(net, w) {
                continue;
            }
            let q = net.link(e).prr().value();
            if best.is_none_or(|(bq, _)| q > bq) {
                best = Some((q, w));
            }
        }
        if let Some((q, w)) = best {
            if q > current_q + self.switch_margin {
                self.coded
                    .change_parent(child, w)
                    .expect("candidate was validated against the component");
                out.changes = 1;
                out.messages = broadcast_message_count(&self.tree());
            }
        }
        out
    }

    /// §VI-B.2 — ILU (Algorithm 4): the non-tree link `(a, b)` improved.
    /// If it is cheaper than the costlier of the endpoints' parent links
    /// (and the gaining parent can accept a child), that endpoint re-homes;
    /// the displaced parent link is then re-examined as a fresh improved
    /// link, walking the cycle with local information only.
    pub fn handle_link_better(&mut self, net: &Network, a: NodeId, b: NodeId) -> UpdateOutcome {
        let mut out = UpdateOutcome::default();
        let n = self.coded.n();
        let mut queue: Vec<(NodeId, NodeId)> = vec![(a, b)];
        while let Some((x, y)) = queue.pop() {
            out.steps += 1;
            if out.steps > 2 * n {
                break; // safety valve; cost-decrease already bounds this
            }
            let Some(e) = net.find_edge(x, y) else { continue };
            let tree = self.tree();
            if tree.contains_edge(x, y) {
                continue;
            }
            let new_cost = net.link(e).cost();

            // Both orientations: move `child` under `parent`; prefer the
            // one that displaces the costlier parent link (Alg. 4's
            // without-loss-of-generality ordering).
            let mut candidates: Vec<(f64, NodeId, NodeId, NodeId)> = Vec::new();
            for (child, parent) in [(x, y), (y, x)] {
                if child == NodeId::SINK {
                    continue;
                }
                let Some(p_old) = self.coded.parent(child) else { continue };
                let old_cost = net
                    .find_edge(child, p_old)
                    .map(|pe| net.link(pe).cost())
                    .unwrap_or(f64::INFINITY);
                // The hysteresis margin applies in PRR space; translate it
                // conservatively into cost space via the smaller PRR.
                let margin_cost =
                    if self.switch_margin > 0.0 { -(1.0 - self.switch_margin).ln() } else { 0.0 };
                if new_cost < old_cost - margin_cost - 1e-12
                    && self.can_accept_child(net, parent)
                    && !tree.in_subtree(parent, child)
                {
                    candidates.push((old_cost, child, parent, p_old));
                }
            }
            candidates.sort_by(|p, q| q.0.partial_cmp(&p.0).unwrap());
            if let Some(&(_, child, parent, p_old)) = candidates.first() {
                self.coded
                    .change_parent(child, parent)
                    .expect("candidate was validated against the subtree");
                out.changes += 1;
                out.messages += broadcast_message_count(&self.tree());
                // The displaced link is now a non-tree link; re-examine it.
                queue.push((child, p_old));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::{NetworkBuilder, Prr};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A 6-node network with a clear hierarchy and spare links.
    fn setup() -> (Network, ProtocolState) {
        let mut b = NetworkBuilder::new(6);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(0, 2, 0.99).unwrap();
        b.add_edge(1, 3, 0.98).unwrap();
        b.add_edge(2, 4, 0.98).unwrap();
        b.add_edge(2, 5, 0.98).unwrap();
        b.add_edge(1, 4, 0.90).unwrap(); // spare
        b.add_edge(3, 5, 0.85).unwrap(); // spare
        b.add_edge(0, 4, 0.70).unwrap(); // weak spare
        let net = b.build().unwrap();
        let tree = AggregationTree::from_edges(
            n(0),
            6,
            &[(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(4)), (n(2), n(5))],
        )
        .unwrap();
        let state = ProtocolState::new(&tree, 1.0e6, EnergyModel::PAPER).unwrap();
        (net, state)
    }

    #[test]
    fn link_worse_rehomes_to_best_alternative() {
        let (mut net, mut state) = setup();
        // Degrade (2, 4) heavily.
        let e = net.find_edge(n(2), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.30).unwrap());
        let out = state.handle_link_worse(&net, n(4));
        assert_eq!(out.changes, 1);
        assert!(out.messages > 0);
        // Best alternative for node 4 is node 1 (0.90) over node 0 (0.70).
        assert_eq!(state.coded().parent(n(4)), Some(n(1)));
    }

    #[test]
    fn link_worse_stays_if_still_best() {
        let (mut net, mut state) = setup();
        // Mild degradation: 0.98 → 0.95 still beats the 0.90 / 0.70 spares.
        let e = net.find_edge(n(2), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.95).unwrap());
        let out = state.handle_link_worse(&net, n(4));
        assert_eq!(out.changes, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(state.coded().parent(n(4)), Some(n(2)));
    }

    #[test]
    fn link_worse_respects_lifetime_constraint() {
        let (mut net, _) = setup();
        // Rebuild the state with an LC so tight nobody can take a second
        // child: L(v) with 2 children < LC < L(v) with 1 child.
        let model = EnergyModel::PAPER;
        let lc = (lifetime::node_lifetime(3000.0, &model, 1)
            + lifetime::node_lifetime(3000.0, &model, 2))
            / 2.0;
        let tree = AggregationTree::from_edges(
            n(0),
            6,
            &[(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(4)), (n(2), n(5))],
        )
        .unwrap();
        let mut state = ProtocolState::new(&tree, lc, model).unwrap();
        // Node 1 already has one child (3); it cannot accept node 4.
        assert!(!state.can_accept_child(&net, n(1)));
        let e = net.find_edge(n(2), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.30).unwrap());
        let out = state.handle_link_worse(&net, n(4));
        // Node 0 has two children already — also full. No candidate.
        assert_eq!(out.changes, 0);
        assert_eq!(state.coded().parent(n(4)), Some(n(2)));
    }

    #[test]
    fn link_worse_on_sink_is_noop() {
        let (net, mut state) = setup();
        assert_eq!(state.handle_link_worse(&net, n(0)), UpdateOutcome::default());
    }

    #[test]
    fn link_better_adopts_cheaper_edge() {
        let (mut net, mut state) = setup();
        // The spare (1, 4) improves beyond node 4's parent link (2, 4).
        let e = net.find_edge(n(1), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.999).unwrap());
        let out = state.handle_link_better(&net, n(1), n(4));
        assert!(out.changes >= 1);
        assert_eq!(state.coded().parent(n(4)), Some(n(1)));
        // Cost must have strictly decreased.
        let before = AggregationTree::from_edges(
            n(0),
            6,
            &[(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(4)), (n(2), n(5))],
        )
        .unwrap();
        let c_before = wsn_model::tree_cost(&net, &before);
        let c_after = wsn_model::tree_cost(&net, &state.tree());
        assert!(c_after < c_before);
    }

    #[test]
    fn link_better_ignores_worse_links() {
        let (net, mut state) = setup();
        // (0, 4) at 0.70 is far worse than (2, 4) at 0.98: no change.
        let out = state.handle_link_better(&net, n(0), n(4));
        assert_eq!(out.changes, 0);
        assert_eq!(state.coded().parent(n(4)), Some(n(2)));
    }

    #[test]
    fn link_better_tree_edge_is_noop() {
        let (net, mut state) = setup();
        let out = state.handle_link_better(&net, n(0), n(1));
        assert_eq!(out.changes, 0);
    }

    #[test]
    fn ilu_chains_and_terminates() {
        // A cycle where one improvement displaces a link that then finds a
        // better home itself.
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(1, 2, 0.80).unwrap();
        b.add_edge(2, 3, 0.99).unwrap();
        b.add_edge(0, 3, 0.70).unwrap();
        let mut net = b.build().unwrap();
        let tree =
            AggregationTree::from_edges(n(0), 4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))])
                .unwrap();
        let mut state = ProtocolState::new(&tree, 1.0, EnergyModel::PAPER).unwrap();
        // (0, 3) improves to 0.999: node 3 should switch from 2 to 0…
        let e = net.find_edge(n(0), n(3)).unwrap();
        net.set_prr(e, Prr::new(0.999).unwrap());
        let out = state.handle_link_better(&net, n(0), n(3));
        assert!(out.changes >= 1);
        assert_eq!(state.coded().parent(n(3)), Some(n(0)));
        assert!(out.steps <= 8, "cycle walk must stay local: {} steps", out.steps);
        // The resulting structure is still a spanning tree.
        assert_eq!(state.tree().edges().count(), 3);
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let (mut net, state) = setup();
        let mut eager = state.clone();
        let mut damped = state.with_switch_margin(0.10);
        // Degrade (2, 4) to 0.88: the 0.90 spare is only marginally better.
        let e = net.find_edge(n(2), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.88).unwrap());
        assert_eq!(eager.handle_link_worse(&net, n(4)).changes, 1);
        assert_eq!(damped.handle_link_worse(&net, n(4)).changes, 0);
        // A collapse beats any margin.
        net.set_prr(e, Prr::new(0.30).unwrap());
        assert_eq!(damped.handle_link_worse(&net, n(4)).changes, 1);
    }

    #[test]
    fn all_sensors_decode_identically() {
        // The broadcast invariant: applying the same Parent-Changing record
        // to two replicas yields byte-identical coded state.
        let (mut net, state) = setup();
        let mut replica_a = state.clone();
        let mut replica_b = state;
        let e = net.find_edge(n(2), n(4)).unwrap();
        net.set_prr(e, Prr::new(0.2).unwrap());
        replica_a.handle_link_worse(&net, n(4));
        replica_b.handle_link_worse(&net, n(4));
        assert_eq!(replica_a.coded(), replica_b.coded());
    }
}

//! Flight recorder: a fixed-capacity ring of recent trace records.
//!
//! The ring is the "always on" counterpart to the unbounded trace buffer:
//! it keeps the last `capacity` spans/events/counter deltas at bounded
//! memory and near-zero cost, so that when a worker panics, a request is
//! quarantined, sheds storm, or a budget expires, the supervisor can
//! snapshot the telemetry leading up to the incident into a deterministic
//! JSONL "black box" dump (see [`FlightRecorder::dump_jsonl`]).
//!
//! Writers claim a slot with one atomic `fetch_add` and then lock only
//! that slot, so concurrent writers never contend on a shared lock; the
//! global sequence number doubles as the drop counter (everything older
//! than `head - capacity` has been overwritten).

use crate::trace::{record_json, TraceRecord, TRACE_SCHEMA_VERSION};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One entry in the flight ring: either a full trace record or a counter
/// delta (counters are not part of the span stream, but postmortems want
/// to see which ones moved right before an incident).
#[derive(Clone, Debug)]
pub enum RingRecord {
    /// A span start/end or event, identical to the trace stream.
    Trace(TraceRecord),
    /// A named counter bumped by `delta` at ring time `t`.
    CounterDelta {
        /// Registry counter name.
        name: String,
        /// Amount added.
        delta: u64,
        /// Clock reading when the bump was logged.
        t: u64,
    },
}

/// Fixed-capacity lossy ring buffer of [`RingRecord`]s.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, RingRecord)>>>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` records (capacity is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        let capacity = capacity.max(1);
        Arc::new(FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        })
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&self, rec: RingRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some((seq, rec));
    }

    /// The retained records in sequence order, plus how many older records
    /// were overwritten before the snapshot.
    pub fn snapshot(&self) -> (Vec<(u64, RingRecord)>, u64) {
        let mut out: Vec<(u64, RingRecord)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let g = slot.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((seq, rec)) = g.as_ref() {
                out.push((*seq, rec.clone()));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        let dropped = self.pushed().saturating_sub(out.len() as u64);
        (out, dropped)
    }

    /// Serializes the retained records as a black-box JSONL dump: a
    /// `blackbox_header` line followed by one record per line in sequence
    /// order, each carrying its global `seq`. With a virtual clock and a
    /// seeded workload the dump is byte-identical across runs.
    pub fn dump_jsonl(&self, clock_kind: &str, reason: &str, worker: Option<usize>) -> String {
        let (records, dropped) = self.snapshot();
        let mut out = format!(
            "{{\"type\":\"blackbox_header\",\"schema_version\":{},\"clock\":{},\"reason\":{}",
            TRACE_SCHEMA_VERSION,
            crate::trace::json_string(clock_kind),
            crate::trace::json_string(reason)
        );
        if let Some(w) = worker {
            out.push_str(&format!(",\"worker\":{w}"));
        }
        out.push_str(&format!(",\"records\":{},\"dropped\":{dropped}}}\n", records.len()));
        for (seq, rec) in &records {
            match rec {
                RingRecord::Trace(tr) => {
                    // Splice the seq into the record object: record_json
                    // always emits `{"type":...}`, so drop its `{`.
                    let body = record_json(tr);
                    out.push_str(&format!("{{\"seq\":{seq},{}", &body[1..]));
                }
                RingRecord::CounterDelta { name, delta, t } => {
                    out.push_str(&format!(
                        "{{\"seq\":{seq},\"type\":\"counter_delta\",\"t\":{t},\"name\":{},\"delta\":{delta}}}",
                        crate::trace::json_string(name)
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldValue, Level};

    fn ev(name: &str, t: u64) -> RingRecord {
        RingRecord::Trace(TraceRecord::Event {
            span: None,
            name: name.to_string(),
            t,
            level: Level::Info,
            fields: Vec::<(String, FieldValue)>::new(),
        })
    }

    #[test]
    fn ring_keeps_the_newest_records() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(ev(&format!("e{i}"), i));
        }
        let (records, dropped) = fr.snapshot();
        assert_eq!(dropped, 2);
        let seqs: Vec<u64> = records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn dump_has_header_and_seq_ordered_lines() {
        let fr = FlightRecorder::new(4);
        fr.push(ev("first", 1));
        fr.push(RingRecord::CounterDelta { name: "svc.shed".to_string(), delta: 2, t: 2 });
        let dump = fr.dump_jsonl("virtual", "worker-crash", Some(1));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3, "{dump}");
        assert!(lines[0].contains("\"type\":\"blackbox_header\""), "{}", lines[0]);
        assert!(lines[0].contains("\"reason\":\"worker-crash\""), "{}", lines[0]);
        assert!(lines[0].contains("\"worker\":1"), "{}", lines[0]);
        assert!(lines[0].contains("\"records\":2"), "{}", lines[0]);
        assert!(lines[0].contains("\"dropped\":0"), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"seq\":0,\"type\":\"event\""), "{}", lines[1]);
        assert!(lines[2].contains("\"type\":\"counter_delta\""), "{}", lines[2]);
        assert!(lines[2].contains("\"name\":\"svc.shed\""), "{}", lines[2]);
    }

    #[test]
    fn dump_is_deterministic_for_identical_pushes() {
        let mk = || {
            let fr = FlightRecorder::new(8);
            for i in 0..12u64 {
                fr.push(ev("tick", i));
            }
            fr.dump_jsonl("virtual", "shed-storm", None)
        };
        assert_eq!(mk(), mk());
        assert!(mk().lines().next().unwrap().contains("\"dropped\":4"));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.push(ev("only", 1));
        assert_eq!(fr.snapshot().0.len(), 1);
    }
}

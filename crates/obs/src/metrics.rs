//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Handles are `Arc`-wrapped atomics, so a hot loop — or a pool of
//! separation workers — clones a handle once and bumps it lock-free; the
//! registry lock is only taken at get-or-create and export time. Names are
//! kept in a `BTreeMap` so every export is deterministically ordered.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing `u64` metric.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed metric.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    /// An implicit overflow bucket catches everything above the last bound.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

/// Fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v <= bounds[i]` (and greater than the
/// previous bound); one extra overflow bucket counts `v > bounds.last()`.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < value);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named metric store. Get-or-create by name; clones of a handle all feed
/// the same atomic, so workers never touch the registry lock on the hot path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Counter handle for `name`, created on first use.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Gauge handle for `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Histogram handle for `name` with the given finite bucket bounds,
    /// created on first use. Later calls ignore `bounds` and return the
    /// existing histogram.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Snapshot of every counter as `(name, value)`, name-ordered.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Counter(c) => Some((name.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Serializes the whole registry as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_entry(&mut counters, name, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_entry(&mut gauges, name, &g.get().to_string());
                }
                Metric::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds().iter().map(u64::to_string).collect();
                    let counts: Vec<String> =
                        h.bucket_counts().iter().map(u64::to_string).collect();
                    let body = format!(
                        "{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
                        bounds.join(","),
                        counts.join(","),
                        h.sum(),
                        h.count()
                    );
                    push_entry(&mut histograms, name, &body);
                }
            }
        }
        format!(
            "{{\"schema_version\":1,\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{histograms}}}}}"
        )
    }
}

fn push_entry(buf: &mut String, name: &str, value: &str) {
    if !buf.is_empty() {
        buf.push(',');
    }
    buf.push_str(&crate::trace::json_string(name));
    buf.push(':');
    buf.push_str(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let reg = Registry::new();
        let h = reg.histogram("attempts", &[1, 2, 4, 8]);
        for v in [0, 1, 1, 2, 3, 4, 5, 8, 9, 100] {
            h.observe(v);
        }
        // Buckets: <=1, <=2, <=4, <=8, overflow.
        assert_eq!(h.bucket_counts(), vec![3, 1, 2, 2, 2]);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 133);
    }

    #[test]
    fn histogram_boundary_values_land_low() {
        let reg = Registry::new();
        let h = reg.histogram("b", &[10, 20]);
        h.observe(10);
        h.observe(11);
        h.observe(20);
        h.observe(21);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_export_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z.late").add(2);
        reg.counter("a.early").add(1);
        reg.gauge("mid").set(-5);
        reg.histogram("h", &[1, 2]).observe(3);
        let json = reg.to_json();
        assert!(json.contains("\"a.early\":1"));
        assert!(json.contains("\"z.late\":2"));
        assert!(json.contains("\"mid\":-5"));
        assert!(json.contains("\"bounds\":[1,2]"));
        assert!(json.contains("\"counts\":[0,0,1]"));
        let a = json.find("a.early").unwrap();
        let z = json.find("z.late").unwrap();
        assert!(a < z, "counters must be name-ordered");
    }
}

//! `wsn-obs` — zero-dependency tracing and metrics for the MRLC workspace.
//!
//! Three layers, one crate:
//!
//! * **Spans & events** ([`trace`]): nested spans with key-value fields,
//!   emitted to an ambient per-thread collector installed with
//!   [`install`]. A [`Clock::virtual_ticks`] clock makes traces byte-stable
//!   under a fixed seed; [`Clock::wall`] gives real timings.
//! * **Metrics** ([`metrics`]): a name-keyed registry of counters, gauges,
//!   and fixed-bucket histograms whose handles are plain `Arc`-atomics —
//!   cheap enough for the parallel separation workers, which must never
//!   emit ordered records but may bump schedule-independent sums.
//! * **Export & reporting** ([`trace::Obs::trace_jsonl`], [`report`]):
//!   JSONL traces, a strict validator, and the `obs-report` summary
//!   renderer (per-span self/total time, top-k hot spans).
//!
//! Two deep-observability planes ride on the span stream: a
//! fixed-capacity **flight recorder** ([`ring`]) that keeps the newest
//! records at bounded cost for black-box postmortem dumps, and a
//! **hotspot profiler** ([`profile`]) that aggregates self-time by span
//! path into top-K tables and flamegraph-compatible folded stacks.
//!
//! The crate is std-only so it works in the offline build environment,
//! mirroring `wsn-util`.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod ring;
pub mod trace;

pub use clock::{Clock, ManualClock, TimeSource};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use profile::{profile_trace, HotPath, Profile};
pub use report::{
    merge_traces, render_metrics, render_postmortem, render_summary, validate_trace,
    validate_trace_lenient, EventAgg, LenientSummary, SpanAgg, TraceSummary,
};
pub use ring::{FlightRecorder, RingRecord};
pub use trace::{
    counter, current, current_or_detached, event, field, install, span, span_with, warn,
    FieldValue, InstallGuard, Level, Obs, SpanGuard, TraceRecord, TRACE_SCHEMA_VERSION,
};
